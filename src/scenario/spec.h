// Campaign specifications: the declarative inputs of the scenario generator.
//
// The source paper's motivating setting is telecom-scale adaptive
// infrastructure: "users get connected to wireless multimedia telecom
// services during rush hours" (§2), services follow "user's mobility" (§1).
// A CampaignSpec describes such a workload as a composition of load phases
// (flash crowds, diurnal cycles, regional failover, cascading failures,
// handover churn) plus a fault schedule, in units of *concurrent users* —
// the axis the capacity bench (E19) searches.
//
// Load-phase text format, one phase per line ('#' starts a comment) — the
// same quoting convention the ADL `scenario` block uses for `fault` lines:
//
//   baseline users=1000 ramp=500ms
//   flash-crowd at=2s users=5000 ramp=200ms session=3s
//   diurnal base=200 peak=2000 period=30s
//   failover cell=1 at=3s for=1s
//   cascade cell=0 depth=3 at=4s gap=300ms for=2s
//   handover dwell=20s
//
// Durations accept `us`, `ms` and `s` suffixes (fault::parse_duration).
// `cell` is an abstract cell index in [0, cells); the driver maps indices
// onto the simulated hosts of whatever world it runs against, so one
// campaign drives both Runtime and ShardedRuntime topologies unchanged.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "fault/scenario.h"
#include "util/errors.h"
#include "util/time.h"

namespace aars::scenario {

using util::Duration;
using util::SimTime;

// --- QoS tiers -----------------------------------------------------------------

/// The service classes the capacity envelope is reported against.  A tier
/// fixes the per-session demand (frame rate, quality level) and the bound a
/// sustained population must hold (frame p99 latency, failure ratio).
struct QosTier {
  const char* name = "";
  double fps = 1.0;          // frame requests per second per session
  int quality = 0;           // telecom::QualityLadder level
  Duration p99_bound = 0;    // max acceptable frame p99 latency
  double max_failure = 0.0;  // max acceptable failed-frame ratio
};

enum class Tier : std::uint8_t { kPremium = 0, kStandard = 1, kBestEffort = 2 };
inline constexpr std::size_t kTierCount = 3;

/// The standard tier table: premium (HD, tight latency), standard (SD),
/// best-effort (audio-only, loose bound).
const std::array<QosTier, kTierCount>& standard_tiers();

// --- load phases ---------------------------------------------------------------

enum class LoadKind : std::uint8_t {
  kBaseline,    // steady population: fill over `ramp`, replenish departures
  kFlashCrowd,  // a burst of extra users arriving over `ramp` at `at`
  kDiurnal,     // population swinging base..peak over `period` (double-peak)
  kFailover,    // regional failover: evacuate cell (+ crash fault if mapped)
  kCascade,     // staggered failovers of `depth` cells starting at `cell`
  kHandover,    // mobility churn: users hand over at exponential `dwell`
};

const char* to_string(LoadKind kind);

/// One parsed load-phase line. Which fields are meaningful depends on
/// `kind`; see the text format above.
struct LoadPhase {
  LoadKind kind = LoadKind::kBaseline;
  double users = 0.0;       // kBaseline / kFlashCrowd: target population
  double base = 0.0;        // kDiurnal: trough population
  double peak = 0.0;        // kDiurnal: crest population
  SimTime at = 0;           // kFlashCrowd / kFailover / kCascade: start
  Duration ramp = 0;        // arrival window (default: see parse)
  Duration period = 0;      // kDiurnal: cycle length
  Duration session = 0;     // per-phase mean session length override (0=spec)
  Duration dwell = 0;       // kHandover: mean cell dwell time
  Duration gap = 0;         // kCascade: stagger between failing cells
  Duration down_for = 0;    // kFailover / kCascade: cell outage window
  std::uint32_t cell = 0;   // kFailover / kCascade: first failing cell index
  std::uint32_t depth = 0;  // kCascade: how many cells fail

  /// Parses one load-phase line; errors name the offending token.
  static util::Result<LoadPhase> parse(const std::string& line);
  /// Renders the phase back into the parseable text format.
  std::string to_text() const;
};

// --- campaign spec -------------------------------------------------------------

/// The full declarative campaign: phases + faults + tier mix.  Built
/// fluently, parsed from load lines, or lowered from a compiled ADL
/// `scenario` block (Campaign::from_compiled).
struct CampaignSpec {
  std::string name = "campaign";
  Duration duration = util::seconds(10);
  /// Mean session length (exponential) for phases without an override.
  Duration mean_session = util::seconds(60);
  /// Abstract cell count users are spread over (per driver instance).
  std::uint32_t cells = 4;
  /// Tier mix weights (premium, standard, best-effort); normalized.
  std::array<double, kTierCount> tier_weights{0.0, 0.0, 1.0};
  std::vector<LoadPhase> loads;
  /// Composed fault schedule (FaultScenario text lines compose verbatim).
  fault::FaultScenario faults;
  /// Goal names the scenario references (carried for reporting).
  std::vector<std::string> goals;

  // Fluent composition -------------------------------------------------------
  CampaignSpec& baseline(double users, Duration ramp = util::milliseconds(500));
  CampaignSpec& flash_crowd(SimTime at, double users, Duration ramp,
                            Duration session = 0);
  CampaignSpec& diurnal(double base, double peak, Duration period);
  CampaignSpec& regional_failover(std::uint32_t cell, SimTime at,
                                  Duration down_for);
  CampaignSpec& cascade(std::uint32_t first_cell, std::uint32_t depth,
                        SimTime at, Duration gap, Duration down_for);
  CampaignSpec& handover(Duration mean_dwell);
  CampaignSpec& with_faults(const fault::FaultScenario& scenario);
  CampaignSpec& tier_mix(double premium, double standard, double best_effort);
};

// --- per-user deterministic randomness ----------------------------------------

/// Counter-based per-user generator (splitmix64 core).  Every user's whole
/// lifetime derives from hash(seed, user_index), so the campaign timeline
/// is identical no matter how users are partitioned across shards — the
/// property the 1/2/4-shard determinism tests pin.  Cheap to construct
/// (three multiplies), no allocation, no global state.
class UserRng {
 public:
  UserRng(std::uint64_t seed, std::uint64_t user);

  std::uint64_t next();
  /// Uniform in [0, 1).
  double uniform();
  /// Exponential with the given mean (> 0).
  double exponential(double mean);
  /// Uniform integer in [0, n).
  std::uint64_t below(std::uint64_t n);

 private:
  std::uint64_t state_;
};

/// splitmix64 finalizer — exposed for digests.
std::uint64_t mix64(std::uint64_t z);

// --- bounded latency histogram -------------------------------------------------

/// Fixed-size logarithmic latency buckets: p99-style quantiles in O(1)
/// memory regardless of frame count.  util::Histogram keeps every sample
/// exactly (fine for bounded experiment outputs); at 10^6-user campaigns
/// that would cost 8 bytes per frame, so the driver records into this
/// instead — observability cost stays constant in user count.
class LatencyBuckets {
 public:
  static constexpr std::size_t kBuckets = 64;

  void record(Duration d);
  std::uint64_t count() const { return count_; }
  /// Upper edge of the bucket containing quantile `q` (conservative:
  /// reported value >= true quantile, never under-reports a violation).
  Duration quantile(double q) const;
  Duration max() const { return max_; }

 private:
  std::array<std::uint64_t, kBuckets> counts_{};
  std::uint64_t count_ = 0;
  Duration max_ = 0;
};

}  // namespace aars::scenario
