#include "scenario/campaign.h"

#include <algorithm>
#include <cmath>

#include "adl/ir.h"

namespace aars::scenario {

using util::Error;
using util::ErrorCode;
using util::Result;

namespace {

constexpr double kEps = 1e-9;

double to_sec(util::Duration d) {
  return static_cast<double>(d) / static_cast<double>(util::kSecond);
}

SimTime to_us(double sec) {
  return static_cast<SimTime>(std::llround(sec * 1e6));
}

// The diurnal double-peak waveform w(t/period) in [0, 1]: morning rush at
// 2/5 of the period, a smaller evening peak near 4/5 — the same shape as
// sim::rush_hour_trace, normalized.
struct WavePoint {
  double x;  // fraction of period
  double w;  // population weight in [0, 1]
};
constexpr WavePoint kWave[] = {
    {0.00, 0.00}, {0.25, 0.20}, {0.40, 1.00}, {0.55, 0.35},
    {0.80, 0.70}, {0.90, 0.15}, {1.00, 0.00},
};
constexpr std::size_t kWaveCount = sizeof(kWave) / sizeof(kWave[0]);

}  // namespace

Campaign::Campaign(CampaignSpec spec, std::uint64_t seed)
    : spec_(std::move(spec)), seed_(seed) {
  build_profile();
  build_evacuations();
  for (const LoadPhase& phase : spec_.loads) {
    if (phase.kind == LoadKind::kHandover) handover_dwell_ = phase.dwell;
  }
}

void Campaign::build_profile() {
  const double horizon = to_sec(spec_.duration);
  const double mean_session = std::max(kEps, to_sec(spec_.mean_session));

  // 1. Per-phase linear rate segments, clipped to [0, horizon].
  auto add_segment = [&](std::uint32_t phase, double t0, double t1, double r0,
                         double r1) {
    t0 = std::max(0.0, t0);
    if (t1 > horizon) {
      // Clip, interpolating the rate at the cut.
      if (t1 - t0 > kEps) {
        r1 = r0 + (r1 - r0) * (horizon - t0) / (t1 - t0);
      }
      t1 = horizon;
    }
    if (t1 - t0 <= kEps) return;
    if (r0 < 0) r0 = 0;
    if (r1 < 0) r1 = 0;
    if (r0 <= 0 && r1 <= 0) return;
    segments_.push_back(Segment{t0, t1, r0, r1, phase});
  };

  for (std::uint32_t k = 0; k < spec_.loads.size(); ++k) {
    const LoadPhase& phase = spec_.loads[k];
    const double session =
        std::max(kEps, to_sec(phase.session > 0 ? phase.session
                                                : spec_.mean_session));
    switch (phase.kind) {
      case LoadKind::kBaseline: {
        // Fill the target population over `ramp`, then replenish departures
        // (steady state of an M/G/inf population: arrivals = N / mean stay).
        const double ramp = std::max(kEps, to_sec(phase.ramp));
        add_segment(k, 0, ramp, phase.users / ramp, phase.users / ramp);
        add_segment(k, ramp, horizon, phase.users / session,
                    phase.users / session);
        break;
      }
      case LoadKind::kFlashCrowd: {
        const double at = to_sec(phase.at);
        const double ramp = std::max(kEps, to_sec(phase.ramp));
        add_segment(k, at, at + ramp, phase.users / ramp, phase.users / ramp);
        break;
      }
      case LoadKind::kDiurnal: {
        // Population target p(t) = base + (peak-base)·w(t); the arrival
        // rate that tracks it is λ(t) = max(0, p'(t) + p(t)/session).
        const double period = std::max(kEps, to_sec(phase.period));
        for (double start = 0; start < horizon; start += period) {
          for (std::size_t i = 0; i + 1 < kWaveCount; ++i) {
            const double t0 = start + kWave[i].x * period;
            const double t1 = start + kWave[i + 1].x * period;
            const double p0 =
                phase.base + (phase.peak - phase.base) * kWave[i].w;
            const double p1 =
                phase.base + (phase.peak - phase.base) * kWave[i + 1].w;
            const double dp = (p1 - p0) / std::max(kEps, t1 - t0);
            add_segment(k, t0, t1, dp + p0 / session, dp + p1 / session);
          }
        }
        break;
      }
      case LoadKind::kFailover:
      case LoadKind::kCascade:
      case LoadKind::kHandover:
        break;  // no arrival contribution
    }
  }

  // 2. Merge into one profile with one-sided limits at every breakpoint.
  std::vector<double> times{0.0, horizon};
  for (const Segment& seg : segments_) {
    times.push_back(seg.t0);
    times.push_back(seg.t1);
  }
  std::sort(times.begin(), times.end());
  times.erase(std::unique(times.begin(), times.end(),
                          [](double a, double b) { return b - a < kEps; }),
              times.end());

  auto seg_rate = [](const Segment& seg, double t) {
    if (seg.t1 - seg.t0 <= kEps) return seg.r0;
    return seg.r0 + (seg.r1 - seg.r0) * (t - seg.t0) / (seg.t1 - seg.t0);
  };
  profile_.clear();
  for (double t : times) {
    if (t < 0 || t > horizon + kEps) continue;
    Breakpoint bp;
    bp.t = t;
    for (const Segment& seg : segments_) {
      if (seg.t0 < t - kEps && t <= seg.t1 + kEps) {
        bp.left += seg_rate(seg, std::min(t, seg.t1));
      }
      if (seg.t0 <= t + kEps && t < seg.t1 - kEps) {
        bp.right += seg_rate(seg, std::max(t, seg.t0));
      }
    }
    profile_.push_back(bp);
  }

  // 3. Cumulative expected arrivals (trapezoid per interval: the rate is
  // linear from right-limit at k to left-limit at k+1).
  for (std::size_t k = 1; k < profile_.size(); ++k) {
    const double dt = profile_[k].t - profile_[k - 1].t;
    profile_[k].cum = profile_[k - 1].cum +
                      0.5 * (profile_[k - 1].right + profile_[k].left) * dt;
  }
  total_users_ = profile_.empty()
                     ? 0
                     : static_cast<std::uint64_t>(
                           std::floor(profile_.back().cum));
}

void Campaign::build_evacuations() {
  const std::uint32_t cells = std::max<std::uint32_t>(1, spec_.cells);
  for (const LoadPhase& phase : spec_.loads) {
    if (phase.kind == LoadKind::kFailover) {
      evacuations_.push_back(Evacuation{phase.cell % cells, phase.at,
                                        phase.at + phase.down_for});
    } else if (phase.kind == LoadKind::kCascade) {
      for (std::uint32_t j = 0; j < phase.depth; ++j) {
        const SimTime at = phase.at + static_cast<SimTime>(j) * phase.gap;
        evacuations_.push_back(
            Evacuation{(phase.cell + j) % cells, at, at + phase.down_for});
      }
    }
  }
  std::sort(evacuations_.begin(), evacuations_.end(),
            [](const Evacuation& a, const Evacuation& b) {
              return a.at != b.at ? a.at < b.at : a.cell < b.cell;
            });
}

double Campaign::phase_rate_at(std::uint32_t phase, double t) const {
  double rate = 0;
  for (const Segment& seg : segments_) {
    if (seg.phase != phase) continue;
    if (seg.t0 <= t + kEps && t < seg.t1 - kEps) {
      rate += seg.r0 + (seg.r1 - seg.r0) * (t - seg.t0) / (seg.t1 - seg.t0);
    }
  }
  return rate;
}

double Campaign::rate_at(SimTime t) const {
  const double sec = to_sec(t);
  double total = 0;
  for (std::uint32_t k = 0; k < spec_.loads.size(); ++k) {
    total += phase_rate_at(k, sec);
  }
  return total;
}

double Campaign::inverse(double x) const {
  if (profile_.size() < 2) return 0;
  if (x <= 0) return profile_.front().t;
  if (x >= profile_.back().cum) return profile_.back().t;
  // Binary search for the segment whose cumulative range contains x.
  std::size_t lo = 0, hi = profile_.size() - 1;
  while (lo + 1 < hi) {
    const std::size_t mid = (lo + hi) / 2;
    if (profile_[mid].cum <= x) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  const double dt = profile_[hi].t - profile_[lo].t;
  const double need = x - profile_[lo].cum;
  const double r0 = profile_[lo].right;
  const double r1 = profile_[hi].left;
  if (dt <= kEps) return profile_[lo].t;
  const double slope = (r1 - r0) / dt;
  double s;
  if (std::fabs(slope) < kEps) {
    s = r0 > kEps ? need / r0 : dt;
  } else {
    // Solve r0·s + slope·s²/2 = need for the root in [0, dt].
    const double disc = r0 * r0 + 2.0 * slope * need;
    s = disc > 0 ? (-r0 + std::sqrt(disc)) / slope : dt;
  }
  s = std::min(std::max(s, 0.0), dt);
  return profile_[lo].t + s;
}

UserLife Campaign::user(std::uint64_t index) const {
  UserRng rng(seed_, index);
  UserLife life;
  const double t = inverse(static_cast<double>(index) + rng.uniform());
  life.arrival = std::min(to_us(t), spec_.duration);

  // Attribute the user to an arrival phase, proportionally to each phase's
  // rate contribution at the arrival instant — pure function of (seed, i).
  double total = 0;
  for (std::uint32_t k = 0; k < spec_.loads.size(); ++k) {
    total += phase_rate_at(k, t);
  }
  Duration mean = spec_.mean_session;
  if (total > kEps) {
    double pick = rng.uniform() * total;
    for (std::uint32_t k = 0; k < spec_.loads.size(); ++k) {
      const double rate = phase_rate_at(k, t);
      if (rate <= 0) continue;
      pick -= rate;
      if (pick <= 0) {
        if (spec_.loads[k].session > 0) mean = spec_.loads[k].session;
        break;
      }
    }
  } else {
    rng.next();  // keep the draw count fixed regardless of profile shape
  }
  const double session_sec = rng.exponential(std::max(kEps, to_sec(mean)));
  life.session = std::max<Duration>(util::kMillisecond, to_us(session_sec));

  // Tier by normalized weights.
  double weight_sum = 0;
  for (double w : spec_.tier_weights) weight_sum += std::max(0.0, w);
  if (weight_sum <= 0) {
    life.tier = Tier::kBestEffort;
    rng.next();
  } else {
    double pick = rng.uniform() * weight_sum;
    life.tier = Tier::kBestEffort;
    for (std::size_t k = 0; k < kTierCount; ++k) {
      pick -= std::max(0.0, spec_.tier_weights[k]);
      if (pick <= 0) {
        life.tier = static_cast<Tier>(k);
        break;
      }
    }
  }

  life.cell = static_cast<std::uint32_t>(
      rng.below(std::max<std::uint32_t>(1, spec_.cells)));
  return life;
}

bool Campaign::evacuated(std::uint32_t cell, SimTime t) const {
  for (const Evacuation& evac : evacuations_) {
    if (evac.cell == cell && evac.at <= t && t < evac.until) return true;
  }
  return false;
}

std::vector<sim::TraceArrivals::Point> Campaign::trace_points() const {
  std::vector<sim::TraceArrivals::Point> points;
  points.reserve(profile_.size() * 2);
  for (const Breakpoint& bp : profile_) {
    const SimTime at = to_us(bp.t);
    if (std::fabs(bp.left - bp.right) > kEps && at > 0) {
      // Keep step discontinuities sharp: land the left limit 1us earlier.
      points.push_back({at - 1, bp.left});
    }
    points.push_back({at, bp.right});
  }
  return points;
}

std::unique_ptr<sim::ArrivalProcess> Campaign::arrivals() const {
  return std::make_unique<sim::TraceArrivals>(trace_points());
}

std::vector<Campaign::Event> Campaign::timeline(std::uint64_t max_users) const {
  const std::uint64_t n = std::min(max_users, total_users_);
  std::vector<Event> events;
  events.reserve(2 * n + 2 * evacuations_.size());
  for (std::uint64_t i = 0; i < n; ++i) {
    const UserLife life = user(i);
    events.push_back(
        Event{life.arrival, Event::kArrive, i, life.cell, life.tier});
    events.push_back(Event{std::min(life.arrival + life.session,
                                    spec_.duration),
                           Event::kDepart, i, life.cell, life.tier});
  }
  for (const Evacuation& evac : evacuations_) {
    events.push_back(Event{evac.at, Event::kEvacuate, 0, evac.cell,
                           Tier::kBestEffort});
    events.push_back(Event{evac.until, Event::kRestore, 0, evac.cell,
                           Tier::kBestEffort});
  }
  std::sort(events.begin(), events.end(), [](const Event& a, const Event& b) {
    if (a.at != b.at) return a.at < b.at;
    if (a.kind != b.kind) return a.kind < b.kind;
    if (a.user != b.user) return a.user < b.user;
    return a.cell < b.cell;
  });
  return events;
}

std::uint64_t Campaign::timeline_digest(std::uint64_t max_users) const {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const Event& ev : timeline(max_users)) {
    h = mix64(h ^ static_cast<std::uint64_t>(ev.at));
    h = mix64(h ^ static_cast<std::uint64_t>(ev.kind));
    h = mix64(h ^ ev.user);
    h = mix64(h ^ ev.cell);
    h = mix64(h ^ static_cast<std::uint64_t>(ev.tier));
  }
  return h;
}

Result<Campaign> Campaign::from_compiled(const adl::CompiledScenario& scenario,
                                         std::uint64_t seed) {
  CampaignSpec spec;
  spec.name = scenario.name.str();
  if (scenario.duration_us > 0) spec.duration = scenario.duration_us;
  for (const util::Symbol& goal : scenario.goals) {
    spec.goals.push_back(goal.str());
  }
  for (const std::string& line : scenario.loads) {
    auto phase = LoadPhase::parse(line);
    if (!phase.ok()) {
      return Error{ErrorCode::kInvalidArgument,
                   "scenario '" + spec.name + "': " + phase.error().message()};
    }
    spec.loads.push_back(phase.value());
  }
  if (!scenario.faults.empty()) {
    std::string text;
    for (const std::string& line : scenario.faults) {
      text += line;
      text += '\n';
    }
    auto parsed = fault::FaultScenario::parse(text);
    if (!parsed.ok()) {
      return Error{ErrorCode::kInvalidArgument,
                   "scenario '" + spec.name +
                       "': " + parsed.error().message()};
    }
    spec.faults = parsed.value();
    spec.faults.set_name(spec.name);
  }
  return Campaign(std::move(spec), seed);
}

}  // namespace aars::scenario
