#include "scenario/spec.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <sstream>
#include <utility>

namespace aars::scenario {

using util::Error;
using util::ErrorCode;
using util::Result;

const std::array<QosTier, kTierCount>& standard_tiers() {
  static const std::array<QosTier, kTierCount> kTiers{{
      {"premium", 10.0, 4, util::milliseconds(25), 0.01},
      {"standard", 2.0, 2, util::milliseconds(50), 0.02},
      {"best_effort", 0.5, 0, util::milliseconds(200), 0.05},
  }};
  return kTiers;
}

const char* to_string(LoadKind kind) {
  switch (kind) {
    case LoadKind::kBaseline: return "baseline";
    case LoadKind::kFlashCrowd: return "flash-crowd";
    case LoadKind::kDiurnal: return "diurnal";
    case LoadKind::kFailover: return "failover";
    case LoadKind::kCascade: return "cascade";
    case LoadKind::kHandover: return "handover";
  }
  return "?";
}

// --- load-phase parsing --------------------------------------------------------

namespace {

/// Splits "key=value" tokens after the leading kind word.
Result<std::vector<std::pair<std::string, std::string>>> split_pairs(
    std::istringstream& in, const std::string& line) {
  std::vector<std::pair<std::string, std::string>> pairs;
  std::string token;
  while (in >> token) {
    const auto eq = token.find('=');
    if (eq == std::string::npos || eq == 0 || eq + 1 >= token.size()) {
      return Error{ErrorCode::kInvalidArgument,
                   "load line '" + line + "': expected key=value, got '" +
                       token + "'"};
    }
    pairs.emplace_back(token.substr(0, eq), token.substr(eq + 1));
  }
  return pairs;
}

Result<double> parse_count(const std::string& text) {
  try {
    std::size_t used = 0;
    const double v = std::stod(text, &used);
    if (used != text.size() || v < 0 || !std::isfinite(v)) {
      return Error{ErrorCode::kInvalidArgument, "bad count '" + text + "'"};
    }
    return v;
  } catch (const std::exception&) {
    return Error{ErrorCode::kInvalidArgument, "bad count '" + text + "'"};
  }
}

Result<std::uint32_t> parse_index(const std::string& text) {
  const auto count = parse_count(text);
  if (!count.ok()) return count.error();
  return static_cast<std::uint32_t>(count.value());
}

}  // namespace

Result<LoadPhase> LoadPhase::parse(const std::string& line) {
  std::istringstream in(line);
  std::string head;
  if (!(in >> head)) {
    return Error{ErrorCode::kInvalidArgument, "empty load line"};
  }
  LoadPhase phase;
  if (head == "baseline") {
    phase.kind = LoadKind::kBaseline;
    phase.ramp = util::milliseconds(500);
  } else if (head == "flash-crowd") {
    phase.kind = LoadKind::kFlashCrowd;
    phase.ramp = util::milliseconds(200);
  } else if (head == "diurnal") {
    phase.kind = LoadKind::kDiurnal;
  } else if (head == "failover") {
    phase.kind = LoadKind::kFailover;
    phase.down_for = util::seconds(1);
  } else if (head == "cascade") {
    phase.kind = LoadKind::kCascade;
    phase.depth = 2;
    phase.gap = util::milliseconds(500);
    phase.down_for = util::seconds(1);
  } else if (head == "handover") {
    phase.kind = LoadKind::kHandover;
    phase.dwell = util::seconds(30);
  } else {
    return Error{ErrorCode::kInvalidArgument,
                 "unknown load kind '" + head + "'"};
  }

  auto pairs = split_pairs(in, line);
  if (!pairs.ok()) return pairs.error();
  for (const auto& [key, text] : pairs.value()) {
    const auto duration = [&]() { return fault::parse_duration(text); };
    if (key == "users") {
      auto v = parse_count(text);
      if (!v.ok()) return v.error();
      phase.users = v.value();
    } else if (key == "base") {
      auto v = parse_count(text);
      if (!v.ok()) return v.error();
      phase.base = v.value();
    } else if (key == "peak") {
      auto v = parse_count(text);
      if (!v.ok()) return v.error();
      phase.peak = v.value();
    } else if (key == "at") {
      auto v = duration();
      if (!v.ok()) return v.error();
      phase.at = v.value();
    } else if (key == "ramp") {
      auto v = duration();
      if (!v.ok()) return v.error();
      phase.ramp = v.value();
    } else if (key == "period") {
      auto v = duration();
      if (!v.ok()) return v.error();
      phase.period = v.value();
    } else if (key == "session") {
      auto v = duration();
      if (!v.ok()) return v.error();
      phase.session = v.value();
    } else if (key == "dwell") {
      auto v = duration();
      if (!v.ok()) return v.error();
      phase.dwell = v.value();
    } else if (key == "gap") {
      auto v = duration();
      if (!v.ok()) return v.error();
      phase.gap = v.value();
    } else if (key == "for") {
      auto v = duration();
      if (!v.ok()) return v.error();
      phase.down_for = v.value();
    } else if (key == "cell") {
      auto v = parse_index(text);
      if (!v.ok()) return v.error();
      phase.cell = v.value();
    } else if (key == "depth") {
      auto v = parse_index(text);
      if (!v.ok()) return v.error();
      phase.depth = v.value();
    } else {
      return Error{ErrorCode::kInvalidArgument,
                   "load line '" + line + "': unknown key '" + key + "'"};
    }
  }

  // Kind-specific validation.
  switch (phase.kind) {
    case LoadKind::kBaseline:
    case LoadKind::kFlashCrowd:
      if (phase.users <= 0) {
        return Error{ErrorCode::kInvalidArgument,
                     std::string(to_string(phase.kind)) + " needs users=N"};
      }
      if (phase.ramp <= 0) {
        return Error{ErrorCode::kInvalidArgument, "ramp must be > 0"};
      }
      break;
    case LoadKind::kDiurnal:
      if (phase.peak <= 0 || phase.period <= 0) {
        return Error{ErrorCode::kInvalidArgument,
                     "diurnal needs peak=N period=D"};
      }
      break;
    case LoadKind::kFailover:
      break;
    case LoadKind::kCascade:
      if (phase.depth == 0) {
        return Error{ErrorCode::kInvalidArgument, "cascade needs depth >= 1"};
      }
      break;
    case LoadKind::kHandover:
      if (phase.dwell <= 0) {
        return Error{ErrorCode::kInvalidArgument, "dwell must be > 0"};
      }
      break;
  }
  return phase;
}

namespace {

std::string render_duration(Duration d) {
  if (d % util::kSecond == 0) return std::to_string(d / util::kSecond) + "s";
  if (d % util::kMillisecond == 0) {
    return std::to_string(d / util::kMillisecond) + "ms";
  }
  return std::to_string(d) + "us";
}

std::string render_count(double v) {
  if (v == std::floor(v)) {
    return std::to_string(static_cast<std::int64_t>(v));
  }
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%g", v);
  return buffer;
}

}  // namespace

std::string LoadPhase::to_text() const {
  std::string out = to_string(kind);
  switch (kind) {
    case LoadKind::kBaseline:
      out += " users=" + render_count(users) + " ramp=" + render_duration(ramp);
      break;
    case LoadKind::kFlashCrowd:
      out += " at=" + render_duration(at) + " users=" + render_count(users) +
             " ramp=" + render_duration(ramp);
      if (session > 0) out += " session=" + render_duration(session);
      break;
    case LoadKind::kDiurnal:
      out += " base=" + render_count(base) + " peak=" + render_count(peak) +
             " period=" + render_duration(period);
      break;
    case LoadKind::kFailover:
      out += " cell=" + std::to_string(cell) + " at=" + render_duration(at) +
             " for=" + render_duration(down_for);
      break;
    case LoadKind::kCascade:
      out += " cell=" + std::to_string(cell) +
             " depth=" + std::to_string(depth) + " at=" + render_duration(at) +
             " gap=" + render_duration(gap) +
             " for=" + render_duration(down_for);
      break;
    case LoadKind::kHandover:
      out += " dwell=" + render_duration(dwell);
      break;
  }
  return out;
}

// --- fluent composition --------------------------------------------------------

CampaignSpec& CampaignSpec::baseline(double users, Duration ramp) {
  LoadPhase phase;
  phase.kind = LoadKind::kBaseline;
  phase.users = users;
  phase.ramp = ramp;
  loads.push_back(phase);
  return *this;
}

CampaignSpec& CampaignSpec::flash_crowd(SimTime at, double users,
                                        Duration ramp, Duration session) {
  LoadPhase phase;
  phase.kind = LoadKind::kFlashCrowd;
  phase.at = at;
  phase.users = users;
  phase.ramp = ramp;
  phase.session = session;
  loads.push_back(phase);
  return *this;
}

CampaignSpec& CampaignSpec::diurnal(double base, double peak,
                                    Duration period) {
  LoadPhase phase;
  phase.kind = LoadKind::kDiurnal;
  phase.base = base;
  phase.peak = peak;
  phase.period = period;
  loads.push_back(phase);
  return *this;
}

CampaignSpec& CampaignSpec::regional_failover(std::uint32_t cell, SimTime at,
                                              Duration down_for) {
  LoadPhase phase;
  phase.kind = LoadKind::kFailover;
  phase.cell = cell;
  phase.at = at;
  phase.down_for = down_for;
  loads.push_back(phase);
  return *this;
}

CampaignSpec& CampaignSpec::cascade(std::uint32_t first_cell,
                                    std::uint32_t depth, SimTime at,
                                    Duration gap, Duration down_for) {
  LoadPhase phase;
  phase.kind = LoadKind::kCascade;
  phase.cell = first_cell;
  phase.depth = depth;
  phase.at = at;
  phase.gap = gap;
  phase.down_for = down_for;
  loads.push_back(phase);
  return *this;
}

CampaignSpec& CampaignSpec::handover(Duration mean_dwell) {
  LoadPhase phase;
  phase.kind = LoadKind::kHandover;
  phase.dwell = mean_dwell;
  loads.push_back(phase);
  return *this;
}

CampaignSpec& CampaignSpec::with_faults(const fault::FaultScenario& scenario) {
  for (const fault::FaultSpec& spec : scenario.faults()) {
    switch (spec.kind) {
      case fault::FaultKind::kHostCrash:
        faults.crash(spec.host, spec.at, spec.duration);
        break;
      case fault::FaultKind::kLinkPartition:
        faults.partition(spec.link_a, spec.link_b, spec.at, spec.duration);
        break;
      case fault::FaultKind::kLinkDegrade:
        faults.degrade(spec.link_a, spec.link_b, spec.at, spec.duration,
                       spec.extra_latency, spec.extra_jitter);
        break;
      case fault::FaultKind::kLinkLoss:
        faults.loss(spec.link_a, spec.link_b, spec.at, spec.duration,
                    spec.loss_probability);
        break;
      case fault::FaultKind::kStepFault:
        faults.fail_step(spec.step, spec.at, spec.duration, spec.of);
        break;
    }
  }
  return *this;
}

CampaignSpec& CampaignSpec::tier_mix(double premium, double standard,
                                     double best_effort) {
  tier_weights = {premium, standard, best_effort};
  return *this;
}

// --- per-user rng --------------------------------------------------------------

std::uint64_t mix64(std::uint64_t z) {
  z += 0x9e3779b97f4a7c15ULL;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

UserRng::UserRng(std::uint64_t seed, std::uint64_t user)
    : state_(mix64(seed ^ mix64(user ^ 0x5851f42d4c957f2dULL))) {}

std::uint64_t UserRng::next() {
  state_ += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state_;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

double UserRng::uniform() {
  // 53 mantissa bits -> [0, 1).
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double UserRng::exponential(double mean) {
  double u = uniform();
  if (u >= 1.0) u = 0.9999999999999999;
  return -mean * std::log1p(-u);
}

std::uint64_t UserRng::below(std::uint64_t n) {
  return n == 0 ? 0 : next() % n;
}

// --- latency buckets -----------------------------------------------------------

void LatencyBuckets::record(Duration d) {
  if (d < 0) d = 0;
  // Bucket k holds [2^k, 2^(k+1)) microseconds; bucket 0 holds [0, 2).
  std::size_t bucket = 0;
  std::uint64_t v = static_cast<std::uint64_t>(d);
  while (v > 1 && bucket + 1 < kBuckets) {
    v >>= 1;
    ++bucket;
  }
  ++counts_[bucket];
  ++count_;
  if (d > max_) max_ = d;
}

Duration LatencyBuckets::quantile(double q) const {
  if (count_ == 0) return 0;
  const auto target = static_cast<std::uint64_t>(
      q * static_cast<double>(count_) + 0.5);
  std::uint64_t seen = 0;
  for (std::size_t k = 0; k < kBuckets; ++k) {
    seen += counts_[k];
    if (seen >= target) {
      const Duration upper = static_cast<Duration>(1) << (k + 1);
      return std::min(upper, max_);
    }
  }
  return max_;
}

}  // namespace aars::scenario
