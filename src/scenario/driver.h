// CampaignDriver: enacts a Campaign against one runtime::Application.
//
// The driver owns per-tier SessionManagers (each QoS tier has its own frame
// rate, so a tier is a manager — no per-session tier map needed), walks its
// slice of the campaign's user index space (stride/offset, so S sharded
// drivers split one campaign without coordination), homes users onto local
// cell nodes, evacuates cells on failover windows, and hands users over
// between cells on a coarse timing wheel when the campaign has mobility
// churn.  Per-user bookkeeping is a flat slot-indexed vector — no per-user
// heap nodes, no per-user pending events: one chained arrival event and one
// wheel tick drive everything.
#pragma once

#include <array>
#include <memory>
#include <vector>

#include "scenario/campaign.h"
#include "telecom/session.h"

namespace aars::scenario {

class CampaignDriver {
 public:
  struct Options {
    util::ConnectorId service;          // media connector frames target
    std::vector<util::NodeId> cells;    // local nodes abstract cells map onto
    std::uint64_t stride = 1;           // walk indices offset, offset+stride…
    std::uint64_t offset = 0;
    std::uint64_t max_users = UINT64_MAX;  // cap on the global index space
    /// Mobility/evacuation wheel coarseness. Handover instants are rounded
    /// up to the next tick; 0 disables mobility even if the campaign has a
    /// handover phase.
    Duration wheel_quantum = util::milliseconds(100);
    /// Frame-scheduling wheel coarseness for the per-tier session managers.
    /// 0 = exact per-session timers; > 0 batches frame deadlines into
    /// quantum-wide buckets (one pending event per bucket instead of one
    /// per session — the difference between 1e6 queued events and a few
    /// hundred).  Each tier uses min(frame_quantum, its frame gap) so fast
    /// tiers never skip frames.
    Duration frame_quantum = 0;
  };

  struct TierStats {
    std::uint64_t started = 0;
    std::uint64_t frames_ok = 0;
    std::uint64_t frames_failed = 0;
    LatencyBuckets latency;

    double fail_ratio() const {
      const std::uint64_t total = frames_ok + frames_failed;
      return total == 0 ? 0.0
                        : static_cast<double>(frames_failed) /
                              static_cast<double>(total);
    }
  };

  /// Per-user bookkeeping record (slot-indexed; exposed for tests and the
  /// capacity bench's cross-shard determinism checks).
  struct UserRec {
    util::SessionId sid{};   // last session id (may have expired)
    std::uint64_t index = 0; // global campaign index
    std::uint32_t cell = 0;  // abstract cell currently homed
    std::uint16_t moves = 0; // handover draw counter (rng stream position)
    std::uint8_t tier = 2;
    bool started = false;
  };

  CampaignDriver(runtime::Application& app, const Campaign& campaign,
                 Options options);

  /// Schedules the arrival chain, evacuation windows and the mobility
  /// wheel. Call once before running the loop to the campaign horizon.
  void start();

  const TierStats& tier_stats(Tier tier) const {
    return stats_[static_cast<std::size_t>(tier)];
  }
  telecom::SessionManager& sessions(Tier tier) {
    return *managers_[static_cast<std::size_t>(tier)];
  }

  std::uint64_t arrivals() const { return arrivals_; }
  std::uint64_t handovers() const { return handovers_; }
  std::uint64_t evacuated_sessions() const { return evacuated_; }
  /// Sessions still live across all tiers.
  std::size_t active_sessions() const;
  /// Admitted users in arrival order (this driver's stride slice).
  const std::vector<UserRec>& records() const { return users_; }

 private:
  void schedule_next_arrival();
  void drain_arrivals();
  void admit(std::uint64_t index, const UserLife& life);
  void schedule_tick();
  void tick();
  void enact_evacuation(const Evacuation& evac);
  void rehome(UserRec& rec, std::uint32_t to_cell, SimTime now);
  void schedule_move(std::uint32_t slot, SimTime at);
  util::NodeId node_for(std::uint32_t cell) const;
  std::uint32_t pick_cell(std::uint32_t preferred, SimTime t) const;
  std::uint64_t end_index() const;

  runtime::Application& app_;
  const Campaign& campaign_;
  Options options_;
  std::array<std::unique_ptr<telecom::SessionManager>, kTierCount> managers_;
  std::array<TierStats, kTierCount> stats_;

  std::vector<UserRec> users_;  // indexed by local slot = (index-offset)/stride
  std::uint64_t cursor_ = 0;    // next global index to admit
  bool cursor_primed_ = false;
  UserLife next_life_{};

  // Mobility wheel: bucket b holds local slots moving in
  // [b·quantum, (b+1)·quantum); one chained tick event services it.
  std::vector<std::vector<std::uint32_t>> wheel_;
  std::size_t next_bucket_ = 0;
  std::size_t next_evac_ = 0;

  std::uint64_t arrivals_ = 0;
  std::uint64_t handovers_ = 0;
  std::uint64_t evacuated_ = 0;
};

}  // namespace aars::scenario
