// The unified ADL compiler entrypoint — `adl::compile()`.
//
// Pipeline:   source ── lex ──> tokens ── parse ──> AST ── sema ──> typed IR
//                                                          │
//                                         emit <───────────┘
//                                          │
//             CompilationResult { CompiledConfiguration, RuleProgram,
//                                 Diagnostics (line + column) }
//
// The optional `screen` hook runs after emit on a clean result; the analysis
// layer uses it to pre-verify rule plan templates and goal feasibility at
// compile time (see analysis/adl_screen.h) without the adl library acquiring
// an upward dependency on the analyser.
#pragma once

#include <functional>
#include <string>
#include <string_view>

#include "adl/ir.h"
#include "util/errors.h"

namespace aars::adl {

struct CompileOptions {
  /// Extra compile-time screening installed by higher layers (e.g.
  /// analysis::make_compile_screen verifies each rule's plan template
  /// against the declared architecture). Runs only when the front-end
  /// produced no errors; appends its findings to `result.diagnostics`.
  using Screen = std::function<void(CompilationResult&)>;
  Screen screen;
};

/// Compiles an ADL source text. Never throws and always returns: check
/// `result.ok()` (equivalently `result.diagnostics.ok()`) before deploying
/// `result.config` or installing `result.program`.
CompilationResult compile(std::string_view source,
                          const CompileOptions& options = {});

/// Reads `path` and compiles its contents; an unreadable file becomes an
/// "unreadable-file" diagnostic.
CompilationResult compile_file(const std::string& path,
                               const CompileOptions& options = {});

}  // namespace aars::adl
