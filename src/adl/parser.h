// Recursive-descent parser for the configuration language — stage 2 of the
// compiler. Produces the AST; name resolution and typing happen in sema.
#pragma once

#include <string_view>

#include "adl/ast.h"
#include "adl/diagnostics.h"
#include "util/errors.h"

namespace aars::adl {

/// Parses a complete configuration unit, reporting problems (with line and
/// column) into `diags`. Returns the partial AST built so far; callers must
/// check `diags.ok()` before using it.
Configuration parse_ast(std::string_view source, Diagnostics& diags);

/// Legacy entrypoint (deprecated, prefer adl::compile): first diagnostic
/// flattened to a util::Error whose message carries "line N".
util::Result<Configuration> parse(std::string_view source);

}  // namespace aars::adl
