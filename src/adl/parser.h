// Recursive-descent parser for the configuration language.
#pragma once

#include <string_view>

#include "adl/ast.h"
#include "util/errors.h"

namespace aars::adl {

/// Parses a complete configuration unit. On failure the error message
/// carries the line number of the offending token.
util::Result<Configuration> parse(std::string_view source);

}  // namespace aars::adl
