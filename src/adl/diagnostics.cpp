#include "adl/diagnostics.h"

#include "util/strings.h"

namespace aars::adl {

void Diagnostics::error(SourceLoc loc, std::string code, std::string message,
                        util::ErrorCode legacy) {
  Diagnostic d;
  d.severity = DiagSeverity::kError;
  d.code = std::move(code);
  d.message = std::move(message);
  d.line = loc.line;
  d.column = loc.column;
  d.legacy_code = legacy;
  items_.push_back(std::move(d));
  ++error_count_;
}

void Diagnostics::warning(SourceLoc loc, std::string code,
                          std::string message) {
  Diagnostic d;
  d.severity = DiagSeverity::kWarning;
  d.code = std::move(code);
  d.message = std::move(message);
  d.line = loc.line;
  d.column = loc.column;
  items_.push_back(std::move(d));
}

void Diagnostics::merge(const Diagnostics& other) {
  for (const Diagnostic& d : other.items_) {
    items_.push_back(d);
    if (d.severity == DiagSeverity::kError) ++error_count_;
  }
}

util::Error Diagnostics::to_error() const {
  for (const Diagnostic& d : items_) {
    if (d.severity != DiagSeverity::kError) continue;
    std::string where = util::format("line %d", d.line);
    if (d.column > 0) where += util::format(" col %d", d.column);
    return util::Error{d.legacy_code, where + ": " + d.message};
  }
  return util::Error{util::ErrorCode::kInternal,
                     "to_error() on a clean Diagnostics"};
}

namespace {

/// Extracts (1-based) line `n` of `source`; empty when out of range.
std::string_view source_line(std::string_view source, int n) {
  if (n <= 0) return {};
  std::size_t start = 0;
  for (int i = 1; i < n; ++i) {
    const std::size_t nl = source.find('\n', start);
    if (nl == std::string_view::npos) return {};
    start = nl + 1;
  }
  const std::size_t end = source.find('\n', start);
  return source.substr(start,
                       end == std::string_view::npos ? end : end - start);
}

}  // namespace

std::string Diagnostics::render(std::string_view source) const {
  std::string out;
  for (const Diagnostic& d : items_) {
    std::string where = util::format("line %d", d.line);
    if (d.column > 0) where += util::format(" col %d", d.column);
    out += where + ": " + to_string(d.severity) + ": [" + d.code + "] " +
           d.message + "\n";
    if (!source.empty() && d.line > 0) {
      const std::string_view text = source_line(source, d.line);
      if (!text.empty()) {
        out += "  " + std::string(text) + "\n";
        if (d.column > 0) {
          out += "  ";
          // Tabs keep their width so the caret lands under the token.
          for (int i = 1; i < d.column && i <= static_cast<int>(text.size());
               ++i) {
            out += text[i - 1] == '\t' ? '\t' : ' ';
          }
          out += "^\n";
        }
      }
    }
  }
  return out;
}

}  // namespace aars::adl
