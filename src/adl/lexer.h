// Tokeniser for the configuration language — stage 1 of the compiler.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "adl/ast.h"
#include "adl/diagnostics.h"
#include "util/errors.h"

namespace aars::adl {

enum class TokenKind {
  kIdentifier,  // foo, foo.bar
  kInteger,     // 42 (after unit normalisation)
  kFloat,       // 3.14
  kString,      // "text"
  kPunct,       // { } ( ) [ ] : ; , = ? !
  kCompare,     // < <= > >= == !=
  kArrow,       // ->
  kDuplexArrow, // <->
  kEnd,
};

struct Token {
  TokenKind kind = TokenKind::kEnd;
  std::string text;        // identifier/punct/compare text or string contents
  std::int64_t int_value = 0;
  double float_value = 0.0;
  SourceLoc loc;
};

/// Tokenises `source`, reporting problems into `diags` (and recovering, so
/// later stages can surface several errors at once). Units on numbers are
/// normalised:
///   durations -> microseconds: us, ms, s
///   rates     -> bytes/second: bps, kbps, mbps, gbps (decimal, bits input)
/// Comments run from `//` to end of line.
std::vector<Token> lex(std::string_view source, Diagnostics& diags);

/// Legacy entrypoint: first lex error flattened to a util::Error.
util::Result<std::vector<Token>> tokenize(std::string_view source);

}  // namespace aars::adl
