// Tokeniser for the configuration language.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "adl/ast.h"
#include "util/errors.h"

namespace aars::adl {

enum class TokenKind {
  kIdentifier,  // foo, foo.bar
  kInteger,     // 42 (after unit normalisation)
  kFloat,       // 3.14
  kString,      // "text"
  kPunct,       // { } ( ) [ ] : ; , = ? !
  kArrow,       // ->
  kDuplexArrow, // <->
  kEnd,
};

struct Token {
  TokenKind kind = TokenKind::kEnd;
  std::string text;        // identifier/punct text or string contents
  std::int64_t int_value = 0;
  double float_value = 0.0;
  SourceLoc loc;
};

/// Tokenises `source`. Units on numbers are normalised:
///   durations -> microseconds: us, ms, s
///   rates     -> bytes/second: bps, kbps, mbps, gbps (decimal, bits input)
/// Comments run from `//` to end of line.
util::Result<std::vector<Token>> tokenize(std::string_view source);

}  // namespace aars::adl
