#include "adl/parser.h"

#include "adl/lexer.h"
#include "util/strings.h"

namespace aars::adl {

using util::Error;
using util::ErrorCode;
using util::Result;
using util::Value;

namespace {

AstCompare compare_from(const std::string& text) {
  if (text == "<") return AstCompare::kLt;
  if (text == "<=") return AstCompare::kLe;
  if (text == ">") return AstCompare::kGt;
  if (text == ">=") return AstCompare::kGe;
  if (text == "==") return AstCompare::kEq;
  return AstCompare::kNe;
}

/// The parser is fail-fast: the first syntax error is recorded (with line
/// and column) and the declaration loop stops, since recovery after a
/// structural error mostly produces cascades.
class Parser {
 public:
  Parser(std::vector<Token> tokens, Diagnostics& diags)
      : tokens_(std::move(tokens)), diags_(diags) {}

  Configuration run() {
    Configuration config;
    while (!at_end() && !failed_) {
      const Token& head = peek();
      if (head.kind != TokenKind::kIdentifier) {
        fail("expected a declaration keyword");
        break;
      }
      if (head.text == "interface") {
        parse_interface(config);
      } else if (head.text == "component") {
        parse_component(config);
      } else if (head.text == "node") {
        parse_node(config);
      } else if (head.text == "link") {
        parse_link(config);
      } else if (head.text == "instance") {
        parse_instance(config);
      } else if (head.text == "connector") {
        parse_connector(config);
      } else if (head.text == "bind") {
        parse_binding(config);
      } else if (head.text == "when") {
        parse_rule(config);
      } else if (head.text == "goal") {
        parse_goal(config);
      } else if (head.text == "scenario") {
        parse_scenario(config);
      } else if (head.text == "property" || head.text == "invariant") {
        parse_property(config);
      } else {
        fail("unknown declaration '" + head.text + "'");
      }
    }
    return config;
  }

 private:
  const Token& peek(std::size_t ahead = 0) const {
    const std::size_t i = std::min(pos_ + ahead, tokens_.size() - 1);
    return tokens_[i];
  }
  const Token& advance() {
    return tokens_[std::min(pos_++, tokens_.size() - 1)];
  }
  bool at_end() const { return peek().kind == TokenKind::kEnd; }

  bool check_punct(const char* p) const {
    return peek().kind == TokenKind::kPunct && peek().text == p;
  }
  bool match_punct(const char* p) {
    if (!check_punct(p)) return false;
    advance();
    return true;
  }
  bool check_keyword(const char* kw) const {
    return peek().kind == TokenKind::kIdentifier && peek().text == kw;
  }
  bool match_keyword(const char* kw) {
    if (!check_keyword(kw)) return false;
    advance();
    return true;
  }

  /// Records the error and halts the parse. Returns false so call sites can
  /// `return fail(...)` from bool helpers.
  bool fail(const std::string& what, const char* code = nullptr) {
    if (failed_) return false;
    failed_ = true;
    const Token& t = peek();
    const bool eof = t.kind == TokenKind::kEnd;
    // An explicit code (e.g. "unterminated-rule") wins even at EOF — tests
    // and lint match on it; the generic fallback distinguishes plain parse
    // errors from running off the end of the file.
    if (code == nullptr) code = eof ? "unexpected-eof" : "parse-error";
    diags_.error(t.loc, code,
                 what + " (near '" + (eof ? "end of input" : t.text) + "')",
                 ErrorCode::kParseError);
    return false;
  }

  bool expect_punct(const char* p) {
    if (!match_punct(p)) {
      if (failed_) return false;
      // A missing token at the end of line N is an error on line N, not
      // wherever line N+1 happens to start — anchor the diagnostic to the
      // end of the previous token when the next one sits on a later line
      // (the multi-line `protocol`/`component` block off-by-one).
      if (pos_ > 0) {
        const Token& prev = tokens_[pos_ - 1];
        const Token& next = peek();
        const bool eof = next.kind == TokenKind::kEnd;
        if (eof || next.loc.line > prev.loc.line) {
          failed_ = true;
          SourceLoc loc = prev.loc;
          loc.column += static_cast<int>(
              prev.text.empty() ? 1 : prev.text.size());
          diags_.error(loc, eof ? "unexpected-eof" : "parse-error",
                       std::string("expected '") + p + "' (after '" +
                           prev.text + "')",
                       ErrorCode::kParseError);
          return false;
        }
      }
      return fail(std::string("expected '") + p + "'");
    }
    return true;
  }

  bool expect_identifier(const char* what, std::string& out) {
    if (peek().kind != TokenKind::kIdentifier) {
      return fail(std::string("expected ") + what);
    }
    out = advance().text;
    return true;
  }

  bool expect_integer(const char* what, std::int64_t& out) {
    if (peek().kind != TokenKind::kInteger) {
      return fail(std::string("expected ") + what);
    }
    out = advance().int_value;
    return true;
  }

  bool parse_literal(Value& out) {
    const Token& t = peek();
    switch (t.kind) {
      case TokenKind::kInteger:
        advance();
        out = Value{t.int_value};
        return true;
      case TokenKind::kFloat:
        advance();
        out = Value{t.float_value};
        return true;
      case TokenKind::kString:
        advance();
        out = Value{t.text};
        return true;
      case TokenKind::kIdentifier:
        if (t.text == "true") {
          advance();
          out = Value{true};
          return true;
        }
        if (t.text == "false") {
          advance();
          out = Value{false};
          return true;
        }
        if (t.text == "null") {
          advance();
          out = Value{};
          return true;
        }
        return fail("expected a literal");
      default:
        return fail("expected a literal");
    }
  }

  // interface Name [version N] { service name(p: type, ...) -> type; ... }
  void parse_interface(Configuration& config) {
    AstInterface iface;
    iface.loc = peek().loc;
    advance();  // interface
    if (!expect_identifier("interface name", iface.name)) return;
    if (match_keyword("version")) {
      if (peek().kind != TokenKind::kInteger) {
        fail("expected version");
        return;
      }
      iface.version = static_cast<int>(advance().int_value);
    }
    if (!expect_punct("{")) return;
    while (!check_punct("}")) {
      if (!match_keyword("service")) {
        fail("expected 'service'");
        return;
      }
      AstService service;
      service.loc = peek().loc;
      if (!expect_identifier("service name", service.name)) return;
      if (!expect_punct("(")) return;
      while (!check_punct(")")) {
        AstParam param;
        if (match_keyword("optional")) param.optional = true;
        if (!expect_identifier("parameter name", param.name)) return;
        if (!expect_punct(":")) return;
        if (!expect_identifier("parameter type", param.type)) return;
        service.params.push_back(std::move(param));
        if (!match_punct(",")) break;
      }
      if (!expect_punct(")")) return;
      if (peek().kind == TokenKind::kArrow) {
        advance();
        if (!expect_identifier("result type", service.result_type)) return;
      }
      if (!expect_punct(";")) return;
      iface.services.push_back(std::move(service));
    }
    advance();  // }
    config.interfaces.push_back(std::move(iface));
  }

  // component Name [provides Iface] { requires port: Iface; attribute n: t = lit; }
  void parse_component(Configuration& config) {
    AstComponent comp;
    comp.loc = peek().loc;
    advance();  // component
    if (!expect_identifier("component name", comp.name)) return;
    if (match_keyword("provides")) {
      if (!expect_identifier("provided interface", comp.provides)) return;
    }
    if (match_punct(";")) {
      config.components.push_back(std::move(comp));
      return;
    }
    if (!expect_punct("{")) return;
    while (!check_punct("}")) {
      if (match_keyword("requires")) {
        AstRequire req;
        req.loc = peek().loc;
        if (!expect_identifier("port name", req.port)) return;
        if (!expect_punct(":")) return;
        if (!expect_identifier("required interface", req.interface)) return;
        if (!expect_punct(";")) return;
        comp.requires_.push_back(std::move(req));
      } else if (match_keyword("attribute")) {
        AstAttribute attr;
        attr.loc = peek().loc;
        if (!expect_identifier("attribute name", attr.name)) return;
        if (!expect_punct(":")) return;
        if (!expect_identifier("attribute type", attr.type)) return;
        if (match_punct("=")) {
          if (!parse_literal(attr.default_value)) return;
        }
        if (!expect_punct(";")) return;
        comp.attributes.push_back(std::move(attr));
      } else if (check_keyword("protocol")) {
        if (comp.protocol.has_value()) {
          fail("component already declares a protocol");
          return;
        }
        AstProtocol protocol;
        if (!parse_protocol(protocol)) return;
        comp.protocol = std::move(protocol);
      } else {
        fail("expected 'requires', 'attribute' or 'protocol'");
        return;
      }
    }
    advance();  // }
    config.components.push_back(std::move(comp));
  }

  // protocol { state s [final]; ...  from -> to on action?|action!|tau; ... }
  bool parse_protocol(AstProtocol& protocol) {
    protocol.loc = peek().loc;
    advance();  // protocol
    if (!expect_punct("{")) return false;
    while (!check_punct("}")) {
      if (at_end()) return fail("unterminated protocol block");
      if (match_keyword("state")) {
        AstProtocolState state;
        state.loc = peek().loc;
        if (!expect_identifier("state name", state.name)) return false;
        if (match_keyword("final")) state.final_state = true;
        if (!expect_punct(";")) return false;
        protocol.states.push_back(std::move(state));
        continue;
      }
      AstProtocolTransition transition;
      transition.loc = peek().loc;
      if (!expect_identifier("state name or 'state'", transition.from)) {
        return false;
      }
      if (peek().kind != TokenKind::kArrow) return fail("expected '->'");
      advance();
      if (!expect_identifier("target state", transition.to)) return false;
      if (!match_keyword("on")) return fail("expected 'on <action>'");
      std::string action;
      if (!expect_identifier("action name", action)) return false;
      if (action == "tau") {
        transition.direction = 't';
      } else {
        transition.action = std::move(action);
        if (match_punct("?")) {
          transition.direction = '?';
        } else if (match_punct("!")) {
          transition.direction = '!';
        } else {
          return fail("expected '?' or '!' after action name");
        }
      }
      if (!expect_punct(";")) return false;
      protocol.transitions.push_back(std::move(transition));
    }
    advance();  // }
    return true;
  }

  // node Name { capacity N; }
  void parse_node(Configuration& config) {
    AstNode node;
    node.loc = peek().loc;
    advance();  // node
    if (!expect_identifier("node name", node.name)) return;
    if (!expect_punct("{")) return;
    while (!check_punct("}")) {
      if (match_keyword("capacity")) {
        if (peek().kind != TokenKind::kInteger &&
            peek().kind != TokenKind::kFloat) {
          fail("expected capacity value");
          return;
        }
        node.capacity = advance().float_value;
        if (node.capacity <= 0) {
          fail("capacity must be positive");
          return;
        }
        if (!expect_punct(";")) return;
      } else {
        fail("expected 'capacity'");
        return;
      }
    }
    advance();  // }
    config.nodes.push_back(std::move(node));
  }

  // link A -> B { latency 5ms; bandwidth 100mbps; jitter 1ms; loss 0.01; }
  void parse_link(Configuration& config) {
    AstLink link;
    link.loc = peek().loc;
    advance();  // link
    if (!expect_identifier("link source node", link.from)) return;
    if (peek().kind == TokenKind::kArrow) {
      advance();
    } else if (peek().kind == TokenKind::kDuplexArrow) {
      link.duplex = true;
      advance();
    } else {
      fail("expected '->' or '<->'");
      return;
    }
    if (!expect_identifier("link target node", link.to)) return;
    if (!expect_punct("{")) return;
    while (!check_punct("}")) {
      std::string prop;
      if (!expect_identifier("link property", prop)) return;
      if (peek().kind != TokenKind::kInteger &&
          peek().kind != TokenKind::kFloat) {
        fail("expected a numeric value");
        return;
      }
      const Token value = advance();
      if (prop == "latency") {
        link.latency_us = value.kind == TokenKind::kInteger
                              ? value.int_value
                              : static_cast<std::int64_t>(value.float_value);
      } else if (prop == "bandwidth") {
        link.bandwidth_bytes_per_sec = value.float_value;
      } else if (prop == "jitter") {
        link.jitter_us = value.kind == TokenKind::kInteger
                             ? value.int_value
                             : static_cast<std::int64_t>(value.float_value);
      } else if (prop == "loss") {
        link.loss = value.float_value;
        if (link.loss < 0.0 || link.loss > 1.0) {
          fail("loss must be in [0,1]");
          return;
        }
      } else {
        fail("unknown link property '" + prop + "'");
        return;
      }
      if (!expect_punct(";")) return;
    }
    advance();  // }
    config.links.push_back(std::move(link));
  }

  // instance name: Type on node [{ attr = lit; ... }] ;
  void parse_instance(Configuration& config) {
    AstInstance inst;
    inst.loc = peek().loc;
    advance();  // instance
    if (!expect_identifier("instance name", inst.name)) return;
    if (!expect_punct(":")) return;
    if (!expect_identifier("component type", inst.type)) return;
    if (!match_keyword("on")) {
      fail("expected 'on <node>'");
      return;
    }
    if (!expect_identifier("node name", inst.node)) return;
    if (match_punct("{")) {
      while (!check_punct("}")) {
        std::string aname;
        if (!expect_identifier("attribute name", aname)) return;
        if (!expect_punct("=")) return;
        Value lit;
        if (!parse_literal(lit)) return;
        inst.attribute_overrides.emplace_back(std::move(aname),
                                              std::move(lit));
        if (!expect_punct(";")) return;
      }
      advance();  // }
    } else if (!match_punct(";")) {
      fail("expected '{' or ';'");
      return;
    }
    config.instances.push_back(std::move(inst));
  }

  // connector name { routing X; delivery Y; capacity N; aspects [a, b]; }
  void parse_connector(Configuration& config) {
    AstConnector conn;
    conn.loc = peek().loc;
    advance();  // connector
    if (!expect_identifier("connector name", conn.name)) return;
    if (!expect_punct("{")) return;
    while (!check_punct("}")) {
      std::string prop;
      if (!expect_identifier("connector property", prop)) return;
      if (prop == "routing") {
        if (!expect_identifier("routing policy", conn.routing)) return;
      } else if (prop == "delivery") {
        if (!expect_identifier("delivery mode", conn.delivery)) return;
      } else if (prop == "capacity") {
        if (!expect_integer("integer capacity", conn.capacity)) return;
      } else if (prop == "budget") {
        if (peek().kind != TokenKind::kInteger) {
          fail("expected a duration budget (e.g. 5ms)");
          return;
        }
        conn.budget_us = advance().int_value;
      } else if (prop == "aspects") {
        if (!expect_punct("[")) return;
        while (!check_punct("]")) {
          std::string aspect;
          if (!expect_identifier("aspect name", aspect)) return;
          conn.aspects.push_back(std::move(aspect));
          if (!match_punct(",")) break;
        }
        if (!expect_punct("]")) return;
      } else {
        fail("unknown connector property '" + prop + "'");
        return;
      }
      if (!expect_punct(";")) return;
    }
    advance();  // }
    config.connectors.push_back(std::move(conn));
  }

  // bind inst.port -> provider[, provider2] [via connector] ;
  void parse_binding(Configuration& config) {
    AstBinding bind;
    bind.loc = peek().loc;
    advance();  // bind
    std::string source;
    if (!expect_identifier("binding source (instance.port)", source)) return;
    const auto parts = util::split(source, '.');
    if (parts.size() != 2 || parts[0].empty() || parts[1].empty()) {
      fail("binding source must be 'instance.port'");
      return;
    }
    bind.from_instance = parts[0];
    bind.from_port = parts[1];
    if (peek().kind != TokenKind::kArrow) {
      fail("expected '->'");
      return;
    }
    advance();
    while (true) {
      std::string target;
      if (!expect_identifier("provider instance", target)) return;
      bind.to_instances.push_back(std::move(target));
      if (!match_punct(",")) break;
    }
    if (match_keyword("via")) {
      if (!expect_identifier("connector name", bind.via_connector)) return;
    }
    if (!expect_punct(";")) return;
    config.bindings.push_back(std::move(bind));
  }

  // --- reconfiguration rules ---------------------------------------------

  // when <condition> [for N ticks] reconfigure [name]
  //   { [cooldown D;] [deadline D;] action* }
  void parse_rule(Configuration& config) {
    AstRule rule;
    rule.loc = peek().loc;
    advance();  // when
    if (!parse_condition(rule.condition)) return;
    if (match_keyword("for")) {
      std::int64_t ticks = 0;
      if (!expect_integer("tick count after 'for'", ticks)) return;
      if (ticks < 1) {
        fail("sustain tick count must be >= 1");
        return;
      }
      rule.condition.sustain_ticks = static_cast<int>(ticks);
      if (!match_keyword("ticks") && !match_keyword("tick")) {
        fail("expected 'ticks'");
        return;
      }
    }
    if (!match_keyword("reconfigure")) {
      fail("expected 'reconfigure'");
      return;
    }
    if (peek().kind == TokenKind::kIdentifier) rule.name = advance().text;
    if (!expect_punct("{")) return;
    while (!check_punct("}")) {
      if (at_end()) {
        fail("unterminated rule block", "unterminated-rule");
        return;
      }
      if (match_keyword("cooldown")) {
        if (!expect_integer("duration after 'cooldown'", rule.cooldown_us)) {
          return;
        }
        if (!expect_punct(";")) return;
        continue;
      }
      if (match_keyword("deadline")) {
        if (!expect_integer("duration after 'deadline'", rule.deadline_us)) {
          return;
        }
        if (!expect_punct(";")) return;
        continue;
      }
      AstRuleAction action;
      if (!parse_rule_action(action)) return;
      rule.actions.push_back(std::move(action));
    }
    advance();  // }
    if (rule.actions.empty()) {
      fail("rule block declares no actions");
      return;
    }
    config.rules.push_back(std::move(rule));
  }

  // event <name>  |  metric[(subject)] CMP number
  bool parse_condition(AstCondition& cond) {
    cond.loc = peek().loc;
    if (match_keyword("event")) {
      cond.is_event = true;
      return expect_identifier("event name", cond.event);
    }
    if (!expect_identifier("metric name", cond.metric)) return false;
    if (match_punct("(")) {
      if (!expect_identifier("metric argument", cond.metric_subject)) {
        return false;
      }
      if (!expect_punct(")")) return false;
    }
    if (peek().kind != TokenKind::kCompare) {
      return fail("expected a comparison operator (<, <=, >, >=, ==, !=)");
    }
    cond.compare = compare_from(advance().text);
    const Token& t = peek();
    if (t.kind == TokenKind::kInteger) {
      cond.threshold = static_cast<double>(advance().int_value);
    } else if (t.kind == TokenKind::kFloat) {
      cond.threshold = advance().float_value;
    } else {
      return fail("expected a numeric threshold");
    }
    return true;
  }

  //   add name: Type on node;
  //   remove inst;
  //   replace inst with Type [as name];
  //   migrate inst to node;
  //   rebind inst.port -> connector;
  //   reroute inst to replica;
  bool parse_rule_action(AstRuleAction& action) {
    action.loc = peek().loc;
    if (match_keyword("add")) {
      action.kind = AstRuleAction::Kind::kAdd;
      if (!expect_identifier("new instance name", action.name)) return false;
      if (!expect_punct(":")) return false;
      if (!expect_identifier("component type", action.type)) return false;
      if (!match_keyword("on")) return fail("expected 'on <node>'");
      if (!expect_identifier("node name", action.node)) return false;
    } else if (match_keyword("remove")) {
      action.kind = AstRuleAction::Kind::kRemove;
      if (!expect_identifier("instance name", action.instance)) return false;
    } else if (match_keyword("replace")) {
      action.kind = AstRuleAction::Kind::kReplace;
      if (!expect_identifier("instance name", action.instance)) return false;
      if (!match_keyword("with")) return fail("expected 'with <Type>'");
      if (!expect_identifier("component type", action.type)) return false;
      if (match_keyword("as")) {
        if (!expect_identifier("new instance name", action.name)) return false;
      }
    } else if (match_keyword("migrate")) {
      action.kind = AstRuleAction::Kind::kMigrate;
      if (!expect_identifier("instance name", action.instance)) return false;
      if (!match_keyword("to")) return fail("expected 'to <node>'");
      if (!expect_identifier("node name", action.node)) return false;
    } else if (match_keyword("rebind")) {
      action.kind = AstRuleAction::Kind::kRebind;
      std::string source;
      if (!expect_identifier("rebind source (instance.port)", source)) {
        return false;
      }
      const auto parts = util::split(source, '.');
      if (parts.size() != 2 || parts[0].empty() || parts[1].empty()) {
        return fail("rebind source must be 'instance.port'");
      }
      action.instance = parts[0];
      action.port = parts[1];
      if (peek().kind != TokenKind::kArrow) return fail("expected '->'");
      advance();
      if (!expect_identifier("connector name", action.connector)) return false;
    } else if (match_keyword("reroute")) {
      action.kind = AstRuleAction::Kind::kReroute;
      if (!expect_identifier("instance name", action.instance)) return false;
      if (!match_keyword("to")) return fail("expected 'to <replica>'");
      if (!expect_identifier("replica instance", action.replica)) return false;
    } else {
      return fail(
          "expected a reconfiguration action "
          "(add/remove/replace/migrate/rebind/reroute), 'cooldown' or "
          "'deadline'");
    }
    return expect_punct(";");
  }

  // --- goals & scenarios --------------------------------------------------

  // goal name { latency conn <= 5ms; replicas Type >= 2; place inst on node; }
  void parse_goal(Configuration& config) {
    AstGoal goal;
    goal.loc = peek().loc;
    advance();  // goal
    if (!expect_identifier("goal name", goal.name)) return;
    if (!expect_punct("{")) return;
    while (!check_punct("}")) {
      if (at_end()) {
        fail("unterminated goal block", "unterminated-goal");
        return;
      }
      if (match_keyword("latency")) {
        AstQosBound bound;
        bound.loc = peek().loc;
        if (!expect_identifier("connector name", bound.connector)) return;
        if (peek().kind != TokenKind::kCompare ||
            (peek().text != "<=" && peek().text != ">=")) {
          fail("expected '<=' or '>=' latency bound");
          return;
        }
        bound.upper = advance().text == "<=";
        if (!expect_integer("duration bound (e.g. 5ms)", bound.latency_us)) {
          return;
        }
        if (!expect_punct(";")) return;
        goal.qos.push_back(std::move(bound));
      } else if (match_keyword("replicas")) {
        AstReplicaBound bound;
        bound.loc = peek().loc;
        if (!expect_identifier("component type", bound.type)) return;
        if (peek().kind != TokenKind::kCompare) {
          fail("expected a comparison operator");
          return;
        }
        bound.compare = compare_from(advance().text);
        std::int64_t count = 0;
        if (!expect_integer("replica count", count)) return;
        bound.count = static_cast<int>(count);
        if (!expect_punct(";")) return;
        goal.replicas.push_back(std::move(bound));
      } else if (match_keyword("place")) {
        AstPlacement placement;
        placement.loc = peek().loc;
        if (!expect_identifier("instance name", placement.instance)) return;
        if (!match_keyword("on")) {
          fail("expected 'on <node>'");
          return;
        }
        if (!expect_identifier("node name", placement.node)) return;
        if (!expect_punct(";")) return;
        goal.placements.push_back(std::move(placement));
      } else {
        fail("expected 'latency', 'replicas' or 'place'");
        return;
      }
    }
    advance();  // }
    config.goals.push_back(std::move(goal));
  }

  // scenario name { description "..."; goal g; fault "..."; load "...";
  //                 duration D; }
  void parse_scenario(Configuration& config) {
    AstScenario scenario;
    scenario.loc = peek().loc;
    advance();  // scenario
    if (!expect_identifier("scenario name", scenario.name)) return;
    if (!expect_punct("{")) return;
    while (!check_punct("}")) {
      if (at_end()) {
        fail("unterminated scenario block", "unterminated-scenario");
        return;
      }
      if (match_keyword("description")) {
        if (peek().kind != TokenKind::kString) {
          fail("expected a string description");
          return;
        }
        scenario.description = advance().text;
        if (!expect_punct(";")) return;
      } else if (match_keyword("goal")) {
        std::string goal;
        if (!expect_identifier("goal name", goal)) return;
        scenario.goals.push_back(std::move(goal));
        if (!expect_punct(";")) return;
      } else if (match_keyword("fault")) {
        const SourceLoc loc = peek().loc;
        if (peek().kind != TokenKind::kString) {
          fail("expected a quoted fault line");
          return;
        }
        scenario.faults.emplace_back(advance().text, loc);
        if (!expect_punct(";")) return;
      } else if (match_keyword("load")) {
        const SourceLoc loc = peek().loc;
        if (peek().kind != TokenKind::kString) {
          fail("expected a quoted load-phase line");
          return;
        }
        scenario.loads.emplace_back(advance().text, loc);
        if (!expect_punct(";")) return;
      } else if (match_keyword("duration")) {
        if (!expect_integer("duration (e.g. 10s)", scenario.duration_us)) {
          return;
        }
        if (!expect_punct(";")) return;
      } else {
        fail("expected 'description', 'goal', 'fault', 'load' or 'duration'");
        return;
      }
    }
    advance();  // }
    config.scenarios.push_back(std::move(scenario));
  }

  // --- path properties ----------------------------------------------------

  // property name { always <pred>; eventually <pred>; reverts rule; }
  // (`invariant` is an accepted synonym for `property`.)
  void parse_property(Configuration& config) {
    AstProperty prop;
    prop.loc = peek().loc;
    advance();  // property | invariant
    if (!expect_identifier("property name", prop.name)) return;
    if (!expect_punct("{")) return;
    while (!check_punct("}")) {
      if (at_end()) {
        fail("unterminated property block", "unterminated-property");
        return;
      }
      AstPropertyClause clause;
      clause.loc = peek().loc;
      if (match_keyword("always")) {
        clause.kind = AstPropertyClause::Kind::kAlways;
        if (!parse_predicate(clause.pred)) return;
      } else if (match_keyword("eventually")) {
        clause.kind = AstPropertyClause::Kind::kEventually;
        if (!parse_predicate(clause.pred)) return;
      } else if (match_keyword("reverts")) {
        clause.kind = AstPropertyClause::Kind::kReverts;
        if (!expect_identifier("rule name after 'reverts'", clause.rule)) {
          return;
        }
      } else {
        fail("expected 'always', 'eventually' or 'reverts'");
        return;
      }
      if (!expect_punct(";")) return;
      prop.clauses.push_back(std::move(clause));
    }
    advance();  // }
    if (prop.clauses.empty()) {
      fail("property block declares no clauses");
      return;
    }
    config.properties.push_back(std::move(prop));
  }

  //   [not] exists(inst) | routed(conn) | running(inst, Type)
  //   replicas(Type) CMP N      (negation not allowed — use the dual CMP)
  bool parse_predicate(AstPredicate& pred) {
    pred.loc = peek().loc;
    if (match_keyword("not")) pred.negated = true;
    std::string head;
    if (!expect_identifier("a predicate (exists/routed/running/replicas)",
                          head)) {
      return false;
    }
    if (head == "exists") {
      pred.kind = AstPredicate::Kind::kExists;
    } else if (head == "routed") {
      pred.kind = AstPredicate::Kind::kRouted;
    } else if (head == "running") {
      pred.kind = AstPredicate::Kind::kRunning;
    } else if (head == "replicas") {
      pred.kind = AstPredicate::Kind::kReplicas;
    } else {
      return fail("unknown predicate '" + head +
                  "' (expected exists/routed/running/replicas)");
    }
    if (!expect_punct("(")) return false;
    const char* subject_what =
        pred.kind == AstPredicate::Kind::kRouted     ? "connector name"
        : pred.kind == AstPredicate::Kind::kReplicas ? "component type"
                                                     : "instance name";
    if (!expect_identifier(subject_what, pred.subject)) return false;
    if (pred.kind == AstPredicate::Kind::kRunning) {
      if (!expect_punct(",")) return false;
      if (!expect_identifier("implementation type", pred.type)) return false;
    }
    if (!expect_punct(")")) return false;
    if (pred.kind == AstPredicate::Kind::kReplicas) {
      if (pred.negated) {
        return fail("'not replicas(...)' is not supported; "
                    "negate the comparison instead");
      }
      if (peek().kind != TokenKind::kCompare) {
        return fail("expected a comparison operator after replicas(...)");
      }
      pred.compare = compare_from(advance().text);
      std::int64_t count = 0;
      if (!expect_integer("replica count", count)) return false;
      if (count < 0) return fail("replica count must be >= 0");
      pred.count = static_cast<int>(count);
    }
    return true;
  }

  std::vector<Token> tokens_;
  Diagnostics& diags_;
  std::size_t pos_ = 0;
  bool failed_ = false;
};

}  // namespace

Configuration parse_ast(std::string_view source, Diagnostics& diags) {
  std::vector<Token> tokens = lex(source, diags);
  if (!diags.ok()) return {};
  Parser parser(std::move(tokens), diags);
  return parser.run();
}

Result<Configuration> parse(std::string_view source) {
  Diagnostics diags;
  Configuration config = parse_ast(source, diags);
  if (!diags.ok()) return diags.to_error();
  return config;
}

}  // namespace aars::adl
