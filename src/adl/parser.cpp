#include "adl/parser.h"

#include "adl/lexer.h"
#include "util/strings.h"

namespace aars::adl {

using util::Error;
using util::ErrorCode;
using util::Result;
using util::Value;

namespace {

class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  Result<Configuration> run() {
    Configuration config;
    while (!at_end()) {
      const Token& head = peek();
      if (head.kind != TokenKind::kIdentifier) {
        return fail("expected a declaration keyword");
      }
      util::Status status = Error{ErrorCode::kInternal, "unset"};
      if (head.text == "interface") {
        status = parse_interface(config);
      } else if (head.text == "component") {
        status = parse_component(config);
      } else if (head.text == "node") {
        status = parse_node(config);
      } else if (head.text == "link") {
        status = parse_link(config);
      } else if (head.text == "instance") {
        status = parse_instance(config);
      } else if (head.text == "connector") {
        status = parse_connector(config);
      } else if (head.text == "bind") {
        status = parse_binding(config);
      } else {
        return fail("unknown declaration '" + head.text + "'");
      }
      if (!status.ok()) return status.error();
    }
    return config;
  }

 private:
  const Token& peek(std::size_t ahead = 0) const {
    const std::size_t i = std::min(pos_ + ahead, tokens_.size() - 1);
    return tokens_[i];
  }
  const Token& advance() { return tokens_[std::min(pos_++, tokens_.size() - 1)]; }
  bool at_end() const { return peek().kind == TokenKind::kEnd; }

  bool check_punct(const char* p) const {
    return peek().kind == TokenKind::kPunct && peek().text == p;
  }
  bool match_punct(const char* p) {
    if (!check_punct(p)) return false;
    advance();
    return true;
  }
  bool check_keyword(const char* kw) const {
    return peek().kind == TokenKind::kIdentifier && peek().text == kw;
  }
  bool match_keyword(const char* kw) {
    if (!check_keyword(kw)) return false;
    advance();
    return true;
  }

  Error fail(const std::string& what) const {
    return Error{ErrorCode::kParseError,
                 util::format("line %d: %s (near '%s')", peek().loc.line,
                              what.c_str(), peek().text.c_str())};
  }

  util::Status expect_punct(const char* p) {
    if (!match_punct(p)) return fail(std::string("expected '") + p + "'");
    return util::Status::success();
  }

  Result<std::string> expect_identifier(const char* what) {
    if (peek().kind != TokenKind::kIdentifier) {
      return fail(std::string("expected ") + what);
    }
    return advance().text;
  }

  Result<Value> parse_literal() {
    const Token& t = peek();
    switch (t.kind) {
      case TokenKind::kInteger:
        advance();
        return Value{t.int_value};
      case TokenKind::kFloat:
        advance();
        return Value{t.float_value};
      case TokenKind::kString:
        advance();
        return Value{t.text};
      case TokenKind::kIdentifier:
        if (t.text == "true") {
          advance();
          return Value{true};
        }
        if (t.text == "false") {
          advance();
          return Value{false};
        }
        if (t.text == "null") {
          advance();
          return Value{};
        }
        return fail("expected a literal");
      default:
        return fail("expected a literal");
    }
  }

  // interface Name [version N] { service name(p: type, ...) -> type; ... }
  util::Status parse_interface(Configuration& config) {
    AstInterface iface;
    iface.loc = peek().loc;
    advance();  // interface
    auto name = expect_identifier("interface name");
    if (!name.ok()) return name.error();
    iface.name = name.value();
    if (match_keyword("version")) {
      if (peek().kind != TokenKind::kInteger) return fail("expected version");
      iface.version = static_cast<int>(advance().int_value);
    }
    if (auto s = expect_punct("{"); !s.ok()) return s;
    while (!check_punct("}")) {
      if (!match_keyword("service")) return fail("expected 'service'");
      AstService service;
      service.loc = peek().loc;
      auto sname = expect_identifier("service name");
      if (!sname.ok()) return sname.error();
      service.name = sname.value();
      if (auto s = expect_punct("("); !s.ok()) return s;
      while (!check_punct(")")) {
        AstParam param;
        if (match_keyword("optional")) param.optional = true;
        auto pname = expect_identifier("parameter name");
        if (!pname.ok()) return pname.error();
        param.name = pname.value();
        if (auto s = expect_punct(":"); !s.ok()) return s;
        auto ptype = expect_identifier("parameter type");
        if (!ptype.ok()) return ptype.error();
        param.type = ptype.value();
        service.params.push_back(std::move(param));
        if (!match_punct(",")) break;
      }
      if (auto s = expect_punct(")"); !s.ok()) return s;
      if (peek().kind == TokenKind::kArrow) {
        advance();
        auto rtype = expect_identifier("result type");
        if (!rtype.ok()) return rtype.error();
        service.result_type = rtype.value();
      }
      if (auto s = expect_punct(";"); !s.ok()) return s;
      iface.services.push_back(std::move(service));
    }
    advance();  // }
    config.interfaces.push_back(std::move(iface));
    return util::Status::success();
  }

  // component Name [provides Iface] { requires port: Iface; attribute n: t = lit; }
  util::Status parse_component(Configuration& config) {
    AstComponent comp;
    comp.loc = peek().loc;
    advance();  // component
    auto name = expect_identifier("component name");
    if (!name.ok()) return name.error();
    comp.name = name.value();
    if (match_keyword("provides")) {
      auto iface = expect_identifier("provided interface");
      if (!iface.ok()) return iface.error();
      comp.provides = iface.value();
    }
    if (match_punct(";")) {
      config.components.push_back(std::move(comp));
      return util::Status::success();
    }
    if (auto s = expect_punct("{"); !s.ok()) return s;
    while (!check_punct("}")) {
      if (match_keyword("requires")) {
        AstRequire req;
        req.loc = peek().loc;
        auto port = expect_identifier("port name");
        if (!port.ok()) return port.error();
        req.port = port.value();
        if (auto s = expect_punct(":"); !s.ok()) return s;
        auto iface = expect_identifier("required interface");
        if (!iface.ok()) return iface.error();
        req.interface = iface.value();
        if (auto s = expect_punct(";"); !s.ok()) return s;
        comp.requires_.push_back(std::move(req));
      } else if (match_keyword("attribute")) {
        AstAttribute attr;
        attr.loc = peek().loc;
        auto aname = expect_identifier("attribute name");
        if (!aname.ok()) return aname.error();
        attr.name = aname.value();
        if (auto s = expect_punct(":"); !s.ok()) return s;
        auto atype = expect_identifier("attribute type");
        if (!atype.ok()) return atype.error();
        attr.type = atype.value();
        if (match_punct("=")) {
          auto lit = parse_literal();
          if (!lit.ok()) return lit.error();
          attr.default_value = lit.value();
        }
        if (auto s = expect_punct(";"); !s.ok()) return s;
        comp.attributes.push_back(std::move(attr));
      } else if (check_keyword("protocol")) {
        if (comp.protocol.has_value()) {
          return fail("component already declares a protocol");
        }
        auto protocol = parse_protocol();
        if (!protocol.ok()) return protocol.error();
        comp.protocol = std::move(protocol).value();
      } else {
        return fail("expected 'requires', 'attribute' or 'protocol'");
      }
    }
    advance();  // }
    config.components.push_back(std::move(comp));
    return util::Status::success();
  }

  // protocol { state s [final]; ...  from -> to on action?|action!|tau; ... }
  Result<AstProtocol> parse_protocol() {
    AstProtocol protocol;
    protocol.loc = peek().loc;
    advance();  // protocol
    if (auto s = expect_punct("{"); !s.ok()) return s.error();
    while (!check_punct("}")) {
      if (match_keyword("state")) {
        AstProtocolState state;
        state.loc = peek().loc;
        auto name = expect_identifier("state name");
        if (!name.ok()) return name.error();
        state.name = name.value();
        if (match_keyword("final")) state.final_state = true;
        if (auto s = expect_punct(";"); !s.ok()) return s.error();
        protocol.states.push_back(std::move(state));
        continue;
      }
      AstProtocolTransition transition;
      transition.loc = peek().loc;
      auto from = expect_identifier("state name or 'state'");
      if (!from.ok()) return from.error();
      transition.from = from.value();
      if (peek().kind != TokenKind::kArrow) return fail("expected '->'");
      advance();
      auto to = expect_identifier("target state");
      if (!to.ok()) return to.error();
      transition.to = to.value();
      if (!match_keyword("on")) return fail("expected 'on <action>'");
      auto action = expect_identifier("action name");
      if (!action.ok()) return action.error();
      if (action.value() == "tau") {
        transition.direction = 't';
      } else {
        transition.action = action.value();
        if (match_punct("?")) {
          transition.direction = '?';
        } else if (match_punct("!")) {
          transition.direction = '!';
        } else {
          return fail("expected '?' or '!' after action name");
        }
      }
      if (auto s = expect_punct(";"); !s.ok()) return s.error();
      protocol.transitions.push_back(std::move(transition));
    }
    advance();  // }
    return protocol;
  }

  // node Name { capacity N; }
  util::Status parse_node(Configuration& config) {
    AstNode node;
    node.loc = peek().loc;
    advance();  // node
    auto name = expect_identifier("node name");
    if (!name.ok()) return name.error();
    node.name = name.value();
    if (auto s = expect_punct("{"); !s.ok()) return s;
    while (!check_punct("}")) {
      if (match_keyword("capacity")) {
        if (peek().kind != TokenKind::kInteger &&
            peek().kind != TokenKind::kFloat) {
          return fail("expected capacity value");
        }
        node.capacity = advance().float_value;
        if (node.capacity <= 0) return fail("capacity must be positive");
        if (auto s = expect_punct(";"); !s.ok()) return s;
      } else {
        return fail("expected 'capacity'");
      }
    }
    advance();  // }
    config.nodes.push_back(std::move(node));
    return util::Status::success();
  }

  // link A -> B { latency 5ms; bandwidth 100mbps; jitter 1ms; loss 0.01; }
  util::Status parse_link(Configuration& config) {
    AstLink link;
    link.loc = peek().loc;
    advance();  // link
    auto from = expect_identifier("link source node");
    if (!from.ok()) return from.error();
    link.from = from.value();
    if (peek().kind == TokenKind::kArrow) {
      advance();
    } else if (peek().kind == TokenKind::kDuplexArrow) {
      link.duplex = true;
      advance();
    } else {
      return fail("expected '->' or '<->'");
    }
    auto to = expect_identifier("link target node");
    if (!to.ok()) return to.error();
    link.to = to.value();
    if (auto s = expect_punct("{"); !s.ok()) return s;
    while (!check_punct("}")) {
      auto prop = expect_identifier("link property");
      if (!prop.ok()) return prop.error();
      if (peek().kind != TokenKind::kInteger &&
          peek().kind != TokenKind::kFloat) {
        return fail("expected a numeric value");
      }
      const Token value = advance();
      if (prop.value() == "latency") {
        link.latency_us = value.kind == TokenKind::kInteger
                              ? value.int_value
                              : static_cast<std::int64_t>(value.float_value);
      } else if (prop.value() == "bandwidth") {
        link.bandwidth_bytes_per_sec = value.float_value;
      } else if (prop.value() == "jitter") {
        link.jitter_us = value.kind == TokenKind::kInteger
                             ? value.int_value
                             : static_cast<std::int64_t>(value.float_value);
      } else if (prop.value() == "loss") {
        link.loss = value.float_value;
        if (link.loss < 0.0 || link.loss > 1.0) {
          return fail("loss must be in [0,1]");
        }
      } else {
        return fail("unknown link property '" + prop.value() + "'");
      }
      if (auto s = expect_punct(";"); !s.ok()) return s;
    }
    advance();  // }
    config.links.push_back(std::move(link));
    return util::Status::success();
  }

  // instance name: Type on node [{ attr = lit; ... }] ;
  util::Status parse_instance(Configuration& config) {
    AstInstance inst;
    inst.loc = peek().loc;
    advance();  // instance
    auto name = expect_identifier("instance name");
    if (!name.ok()) return name.error();
    inst.name = name.value();
    if (auto s = expect_punct(":"); !s.ok()) return s;
    auto type = expect_identifier("component type");
    if (!type.ok()) return type.error();
    inst.type = type.value();
    if (!match_keyword("on")) return fail("expected 'on <node>'");
    auto node = expect_identifier("node name");
    if (!node.ok()) return node.error();
    inst.node = node.value();
    if (match_punct("{")) {
      while (!check_punct("}")) {
        auto aname = expect_identifier("attribute name");
        if (!aname.ok()) return aname.error();
        if (auto s = expect_punct("="); !s.ok()) return s;
        auto lit = parse_literal();
        if (!lit.ok()) return lit.error();
        inst.attribute_overrides.emplace_back(aname.value(), lit.value());
        if (auto s = expect_punct(";"); !s.ok()) return s;
      }
      advance();  // }
    } else if (!match_punct(";")) {
      return fail("expected '{' or ';'");
    }
    config.instances.push_back(std::move(inst));
    return util::Status::success();
  }

  // connector name { routing X; delivery Y; capacity N; aspects [a, b]; }
  util::Status parse_connector(Configuration& config) {
    AstConnector conn;
    conn.loc = peek().loc;
    advance();  // connector
    auto name = expect_identifier("connector name");
    if (!name.ok()) return name.error();
    conn.name = name.value();
    if (auto s = expect_punct("{"); !s.ok()) return s;
    while (!check_punct("}")) {
      auto prop = expect_identifier("connector property");
      if (!prop.ok()) return prop.error();
      if (prop.value() == "routing") {
        auto v = expect_identifier("routing policy");
        if (!v.ok()) return v.error();
        conn.routing = v.value();
      } else if (prop.value() == "delivery") {
        auto v = expect_identifier("delivery mode");
        if (!v.ok()) return v.error();
        conn.delivery = v.value();
      } else if (prop.value() == "capacity") {
        if (peek().kind != TokenKind::kInteger) {
          return fail("expected integer capacity");
        }
        conn.capacity = advance().int_value;
      } else if (prop.value() == "budget") {
        if (peek().kind != TokenKind::kInteger) {
          return fail("expected a duration budget (e.g. 5ms)");
        }
        conn.budget_us = advance().int_value;
      } else if (prop.value() == "aspects") {
        if (auto s = expect_punct("["); !s.ok()) return s;
        while (!check_punct("]")) {
          auto aspect = expect_identifier("aspect name");
          if (!aspect.ok()) return aspect.error();
          conn.aspects.push_back(aspect.value());
          if (!match_punct(",")) break;
        }
        if (auto s = expect_punct("]"); !s.ok()) return s;
      } else {
        return fail("unknown connector property '" + prop.value() + "'");
      }
      if (auto s = expect_punct(";"); !s.ok()) return s;
    }
    advance();  // }
    config.connectors.push_back(std::move(conn));
    return util::Status::success();
  }

  // bind inst.port -> provider[, provider2] [via connector] ;
  util::Status parse_binding(Configuration& config) {
    AstBinding bind;
    bind.loc = peek().loc;
    advance();  // bind
    auto source = expect_identifier("binding source (instance.port)");
    if (!source.ok()) return source.error();
    const auto parts = util::split(source.value(), '.');
    if (parts.size() != 2 || parts[0].empty() || parts[1].empty()) {
      return fail("binding source must be 'instance.port'");
    }
    bind.from_instance = parts[0];
    bind.from_port = parts[1];
    if (peek().kind != TokenKind::kArrow) return fail("expected '->'");
    advance();
    while (true) {
      auto target = expect_identifier("provider instance");
      if (!target.ok()) return target.error();
      bind.to_instances.push_back(target.value());
      if (!match_punct(",")) break;
    }
    if (match_keyword("via")) {
      auto conn = expect_identifier("connector name");
      if (!conn.ok()) return conn.error();
      bind.via_connector = conn.value();
    }
    if (auto s = expect_punct(";"); !s.ok()) return s;
    config.bindings.push_back(std::move(bind));
    return util::Status::success();
  }

  std::vector<Token> tokens_;
  std::size_t pos_ = 0;
};

}  // namespace

Result<Configuration> parse(std::string_view source) {
  Result<std::vector<Token>> tokens = tokenize(source);
  if (!tokens.ok()) return tokens.error();
  Parser parser(std::move(tokens).value());
  return parser.run();
}

}  // namespace aars::adl
