// DEPRECATED shim — prefer `adl::compile()` (compiler.h).
//
// The PR-4 era entrypoint pair (`parse()` + `validate()`) survives as a thin
// wrapper over the multi-stage compiler so existing callers keep their
// util::Result flow and legacy ErrorCodes. New code should call
// `adl::compile()` and consume the structured diagnostics instead.
#pragma once

#include <string>

#include "adl/ir.h"
#include "util/errors.h"

namespace aars::adl {

/// Maps an ADL type name to a runtime ValueType. kNull encodes "any".
/// (Re-exported from sema for legacy includes.)
util::Result<util::ValueType> value_type_from_name(const std::string& name);

/// Validates the configuration: first diagnostic flattened to a util::Error
/// carrying "line N" (and now "col C") in its message.
/// Deprecated: use adl::compile() for multi-error structured diagnostics.
util::Result<CompiledConfiguration> validate(Configuration config);

}  // namespace aars::adl
