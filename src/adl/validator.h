// Semantic validation of parsed configurations.
//
// ADLs "create, validate and update architectures" (§1); this pass performs
// the validation step: name resolution, attribute type checking, and —
// following Wright — binding compatibility at the interface level.  The
// output is a CompiledConfiguration the deployer consumes.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "adl/ast.h"
#include "component/interface.h"
#include "lts/lts.h"
#include "util/errors.h"

namespace aars::adl {

/// Validation result: the AST plus resolved interface descriptions.
struct CompiledConfiguration {
  Configuration ast;
  std::map<std::string, component::InterfaceDescription> interfaces;
  /// instance name -> index in ast.instances
  std::map<std::string, std::size_t> instance_index;
  /// connector name -> index in ast.connectors
  std::map<std::string, std::size_t> connector_index;
  /// component type name -> compiled behavioural protocol, for components
  /// that declare a `protocol { ... }` block. Consumed by the static
  /// analyser (n-way composition deadlock checking).
  std::map<std::string, lts::Lts> protocols;
};

/// Maps an ADL type name to a runtime ValueType. kNull encodes "any".
util::Result<util::ValueType> value_type_from_name(const std::string& name);

/// Validates the configuration. All diagnostics carry source line numbers.
util::Result<CompiledConfiguration> validate(Configuration config);

}  // namespace aars::adl
