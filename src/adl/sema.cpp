#include "adl/sema.h"

#include <algorithm>
#include <limits>
#include <map>
#include <set>

#include "util/strings.h"

namespace aars::adl {

using component::InterfaceDescription;
using component::ParamSpec;
using component::ServiceSignature;
using util::Error;
using util::ErrorCode;
using util::Result;
using util::Value;
using util::ValueType;

Result<ValueType> value_type_from_name(const std::string& name) {
  if (name == "int") return ValueType::kInt;
  if (name == "double") return ValueType::kDouble;
  if (name == "string") return ValueType::kString;
  if (name == "bool") return ValueType::kBool;
  if (name == "list") return ValueType::kList;
  if (name == "map") return ValueType::kMap;
  if (name == "any" || name == "null") return ValueType::kNull;
  return Error{ErrorCode::kInvalidArgument, "unknown type '" + name + "'"};
}

namespace {

bool literal_matches(ValueType declared, const Value& v) {
  if (declared == ValueType::kNull || v.is_null()) return true;
  if (declared == ValueType::kDouble && v.is_int()) return true;
  return v.type() == declared;
}

/// Rule-engine event names the runtime layers emit; conditions naming
/// anything else still compile (user code may emit custom events) but get a
/// warning so typos surface in `aars-lint --strict`.
const std::set<std::string>& known_events() {
  static const std::set<std::string> kEvents{
      "fault.host_down",     "fault.host_up",   "fault.link_down",
      "fault.link_up",       "fault.degrade_start", "fault.degrade_end",
      "fault.loss_start",    "fault.loss_end",  "fault.step_armed",
      "fault.step_cleared",  "overload.enter",  "overload.exit",
  };
  return kEvents;
}

/// Tracks the names visible to a rule's actions: the declared instances
/// plus instances introduced by earlier actions in the same rule block.
class RuleScope {
 public:
  explicit RuleScope(const std::map<std::string, std::size_t>& declared)
      : declared_(declared) {}

  bool resolves(const std::string& instance) const {
    return declared_.count(instance) != 0 || added_.count(instance) != 0;
  }
  void add(const std::string& instance) { added_.insert(instance); }
  void remove(const std::string& instance) { added_.erase(instance); }

 private:
  const std::map<std::string, std::size_t>& declared_;
  std::set<std::string> added_;
};

class Sema {
 public:
  Sema(Configuration config, Diagnostics& diags)
      : config_(std::move(config)), diags_(diags) {}

  CompiledConfiguration run() {
    analyze_interfaces();
    analyze_components();
    analyze_topology();
    analyze_instances();
    analyze_connectors();
    analyze_bindings();
    analyze_rules();
    analyze_goals();
    analyze_scenarios();
    analyze_properties();
    out_.ast = std::move(config_);
    return std::move(out_);
  }

 private:
  void error(const SourceLoc& loc, const char* code, const std::string& what,
             ErrorCode legacy = ErrorCode::kInvalidArgument) {
    diags_.error(loc, code, what, legacy);
  }

  /// Uniqueness check preserving the legacy kAlreadyExists code.
  template <typename T>
  void check_unique(const std::vector<T>& decls, const char* kind) {
    std::set<std::string> seen;
    for (const T& d : decls) {
      if (!seen.insert(d.name).second) {
        error(d.loc, "duplicate-name",
              util::format("duplicate %s '%s'", kind, d.name.c_str()),
              ErrorCode::kAlreadyExists);
      }
    }
  }

  // --- interfaces ----------------------------------------------------------
  void analyze_interfaces() {
    check_unique(config_.interfaces, "interface");
    for (const AstInterface& iface : config_.interfaces) {
      InterfaceDescription desc(iface.name, iface.version);
      std::set<std::string> service_names;
      for (const AstService& svc : iface.services) {
        if (!service_names.insert(svc.name).second) {
          error(svc.loc, "duplicate-service",
                "duplicate service '" + svc.name + "' in " + iface.name);
          continue;
        }
        ServiceSignature sig;
        sig.name = svc.name;
        auto result_type = value_type_from_name(svc.result_type);
        if (!result_type.ok()) {
          error(svc.loc, "unknown-type", result_type.error().message());
          continue;
        }
        sig.result = result_type.value();
        std::set<std::string> param_names;
        bool params_ok = true;
        for (const AstParam& p : svc.params) {
          if (!param_names.insert(p.name).second) {
            error(svc.loc, "duplicate-parameter",
                  "duplicate parameter '" + p.name + "' in " + svc.name);
            params_ok = false;
            break;
          }
          auto ptype = value_type_from_name(p.type);
          if (!ptype.ok()) {
            error(svc.loc, "unknown-type", ptype.error().message());
            params_ok = false;
            break;
          }
          sig.params.push_back(ParamSpec{p.name, ptype.value(), p.optional});
        }
        if (params_ok) desc.add_service(std::move(sig));
      }
      out_.interfaces.emplace(iface.name, std::move(desc));
    }
  }

  // --- components ----------------------------------------------------------
  void analyze_components() {
    check_unique(config_.components, "component");
    for (const AstComponent& comp : config_.components) {
      if (!comp.provides.empty() && !out_.interfaces.count(comp.provides)) {
        error(comp.loc, "unknown-interface",
              comp.name + " provides unknown interface '" + comp.provides +
                  "'");
      }
      std::set<std::string> port_names;
      for (const AstRequire& req : comp.requires_) {
        if (!port_names.insert(req.port).second) {
          error(req.loc, "duplicate-port",
                "duplicate port '" + req.port + "' on " + comp.name);
          continue;
        }
        if (!out_.interfaces.count(req.interface)) {
          error(req.loc, "unknown-interface",
                comp.name + "." + req.port + " requires unknown interface '" +
                    req.interface + "'");
        }
      }
      std::set<std::string> attr_names;
      for (const AstAttribute& attr : comp.attributes) {
        if (!attr_names.insert(attr.name).second) {
          error(attr.loc, "duplicate-attribute",
                "duplicate attribute '" + attr.name + "' on " + comp.name);
          continue;
        }
        auto atype = value_type_from_name(attr.type);
        if (!atype.ok()) {
          error(attr.loc, "unknown-type", atype.error().message());
          continue;
        }
        if (!literal_matches(atype.value(), attr.default_value)) {
          error(attr.loc, "type-mismatch",
                "default for '" + attr.name +
                    "' does not match declared type " + attr.type);
        }
      }
      if (comp.protocol.has_value()) compile_protocol(comp);
      components_.emplace(comp.name, &comp);
    }
  }

  /// Compiles a `protocol { ... }` block into an Lts. The first declared
  /// state is the initial state (Lts state 0).
  void compile_protocol(const AstComponent& comp) {
    const AstProtocol& protocol = *comp.protocol;
    if (protocol.states.empty()) {
      error(protocol.loc, "empty-protocol",
            "protocol on " + comp.name + " declares no states");
      return;
    }
    lts::Lts lts(comp.name);
    std::map<std::string, lts::StateId> states;
    for (std::size_t i = 0; i < protocol.states.size(); ++i) {
      const AstProtocolState& state = protocol.states[i];
      if (states.count(state.name)) {
        error(state.loc, "duplicate-state",
              "duplicate protocol state '" + state.name + "' on " + comp.name);
        return;
      }
      const lts::StateId id = i == 0 ? lts.initial() : lts.add_state();
      lts.set_final(id, state.final_state);
      states.emplace(state.name, id);
    }
    for (const AstProtocolTransition& t : protocol.transitions) {
      auto from = states.find(t.from);
      if (from == states.end()) {
        error(t.loc, "unknown-state",
              "protocol transition from unknown state '" + t.from + "' on " +
                  comp.name);
        return;
      }
      auto to = states.find(t.to);
      if (to == states.end()) {
        error(t.loc, "unknown-state",
              "protocol transition to unknown state '" + t.to + "' on " +
                  comp.name);
        return;
      }
      lts::Label label = t.direction == '?'   ? lts::in(t.action)
                         : t.direction == '!' ? lts::out(t.action)
                                              : lts::tau();
      lts.add_transition(from->second, std::move(label), to->second);
    }
    out_.protocols.emplace(comp.name, std::move(lts));
  }

  // --- nodes & links -------------------------------------------------------
  void analyze_topology() {
    check_unique(config_.nodes, "node");
    for (const AstNode& n : config_.nodes) node_names_.insert(n.name);
    for (const AstLink& link : config_.links) {
      if (!node_names_.count(link.from)) {
        error(link.loc, "unknown-node",
              "link references unknown node '" + link.from + "'");
        continue;
      }
      if (!node_names_.count(link.to)) {
        error(link.loc, "unknown-node",
              "link references unknown node '" + link.to + "'");
        continue;
      }
      if (link.from == link.to) {
        error(link.loc, "self-link", "self links are not allowed");
        continue;
      }
      if (link.bandwidth_bytes_per_sec <= 0) {
        error(link.loc, "invalid-value", "bandwidth must be positive");
      }
      if (link.latency_us < 0) {
        error(link.loc, "invalid-value", "latency must be >= 0");
      }
    }
  }

  // --- instances -----------------------------------------------------------
  void analyze_instances() {
    check_unique(config_.instances, "instance");
    for (std::size_t i = 0; i < config_.instances.size(); ++i) {
      const AstInstance& inst = config_.instances[i];
      auto comp_it = components_.find(inst.type);
      if (comp_it == components_.end()) {
        error(inst.loc, "unknown-type",
              inst.name + ": unknown component type '" + inst.type + "'");
        continue;
      }
      if (!node_names_.count(inst.node)) {
        error(inst.loc, "unknown-node",
              inst.name + ": unknown node '" + inst.node + "'");
        continue;
      }
      const AstComponent& type = *comp_it->second;
      for (const auto& [attr_name, literal] : inst.attribute_overrides) {
        const AstAttribute* declared = nullptr;
        for (const AstAttribute& a : type.attributes) {
          if (a.name == attr_name) {
            declared = &a;
            break;
          }
        }
        if (declared == nullptr) {
          error(inst.loc, "unknown-attribute",
                inst.name + ": component " + inst.type +
                    " has no attribute '" + attr_name + "'");
          continue;
        }
        auto atype = value_type_from_name(declared->type);
        if (atype.ok() && !literal_matches(atype.value(), literal)) {
          error(inst.loc, "type-mismatch",
                inst.name + ": value for '" + attr_name +
                    "' does not match declared type " + declared->type);
        }
      }
      out_.instance_index.emplace(inst.name, i);
    }
  }

  // --- connectors ----------------------------------------------------------
  void analyze_connectors() {
    check_unique(config_.connectors, "connector");
    static const std::set<std::string> kRoutings{"direct", "round_robin",
                                                "broadcast", "least_backlog"};
    static const std::set<std::string> kDeliveries{"sync", "queued"};
    for (std::size_t i = 0; i < config_.connectors.size(); ++i) {
      const AstConnector& conn = config_.connectors[i];
      if (!kRoutings.count(conn.routing)) {
        error(conn.loc, "unknown-routing",
              conn.name + ": unknown routing '" + conn.routing + "'");
        continue;
      }
      if (!kDeliveries.count(conn.delivery)) {
        error(conn.loc, "unknown-delivery",
              conn.name + ": unknown delivery '" + conn.delivery + "'");
        continue;
      }
      if (conn.capacity <= 0) {
        error(conn.loc, "invalid-value",
              conn.name + ": capacity must be positive");
        continue;
      }
      if (conn.budget_us < 0) {
        error(conn.loc, "invalid-value", conn.name + ": budget must be >= 0");
        continue;
      }
      out_.connector_index.emplace(conn.name, i);
    }
  }

  // --- bindings ------------------------------------------------------------
  void analyze_bindings() {
    for (const AstBinding& bind : config_.bindings) {
      auto from_it = out_.instance_index.find(bind.from_instance);
      if (from_it == out_.instance_index.end()) {
        error(bind.loc, "unknown-instance",
              "binding from unknown instance '" + bind.from_instance + "'");
        continue;
      }
      const AstInstance& from_inst = config_.instances[from_it->second];
      auto from_comp = components_.find(from_inst.type);
      if (from_comp == components_.end()) continue;  // reported above
      const AstComponent& from_type = *from_comp->second;
      const AstRequire* port = nullptr;
      for (const AstRequire& req : from_type.requires_) {
        if (req.port == bind.from_port) {
          port = &req;
          break;
        }
      }
      if (port == nullptr) {
        error(bind.loc, "unknown-port",
              from_inst.type + " has no required port '" + bind.from_port +
                  "'");
        continue;
      }
      auto required_it = out_.interfaces.find(port->interface);
      if (required_it == out_.interfaces.end()) continue;  // reported above
      const InterfaceDescription& required = required_it->second;
      bool providers_ok = true;
      for (const std::string& provider_name : bind.to_instances) {
        auto to_it = out_.instance_index.find(provider_name);
        if (to_it == out_.instance_index.end()) {
          error(bind.loc, "unknown-instance",
                "binding to unknown instance '" + provider_name + "'");
          providers_ok = false;
          break;
        }
        const AstInstance& to_inst = config_.instances[to_it->second];
        auto to_comp = components_.find(to_inst.type);
        if (to_comp == components_.end()) {
          providers_ok = false;
          break;
        }
        const AstComponent& to_type = *to_comp->second;
        if (to_type.provides.empty()) {
          error(bind.loc, "no-provided-interface",
                provider_name + " (type " + to_type.name +
                    ") provides no interface");
          providers_ok = false;
          break;
        }
        auto provided_it = out_.interfaces.find(to_type.provides);
        if (provided_it == out_.interfaces.end()) {
          providers_ok = false;
          break;
        }
        if (util::Status s = provided_it->second.satisfies(required);
            !s.ok()) {
          error(bind.loc, "interface-mismatch",
                "binding " + bind.from_instance + "." + bind.from_port +
                    " -> " + provider_name + ": " + s.error().message());
          providers_ok = false;
          break;
        }
      }
      if (!providers_ok) continue;
      if (!bind.via_connector.empty() &&
          !out_.connector_index.count(bind.via_connector)) {
        error(bind.loc, "unknown-connector",
              "binding via unknown connector '" + bind.via_connector + "'");
        continue;
      }
      if (bind.to_instances.size() > 1) {
        if (bind.via_connector.empty()) {
          error(bind.loc, "missing-connector",
                "multi-provider binding requires an explicit connector");
          continue;
        }
        const AstConnector& conn =
            config_.connectors[out_.connector_index.at(bind.via_connector)];
        if (conn.routing == "direct") {
          error(bind.loc, "invalid-routing",
                "direct connector cannot serve multiple providers");
        }
      }
    }
  }

  // --- reconfiguration rules ----------------------------------------------
  void analyze_rules() {
    std::set<std::string> rule_names;
    for (const AstRule& rule : config_.rules) {
      if (!rule.name.empty() && !rule_names.insert(rule.name).second) {
        error(rule.loc, "duplicate-name",
              util::format("duplicate rule '%s'", rule.name.c_str()),
              ErrorCode::kAlreadyExists);
      }
      analyze_condition(rule.condition);
      if (rule.cooldown_us < 0) {
        error(rule.loc, "invalid-value", "rule cooldown must be >= 0");
      }
      if (rule.deadline_us < 0) {
        error(rule.loc, "invalid-value", "rule deadline must be >= 0");
      }
      RuleScope scope(out_.instance_index);
      for (const AstRuleAction& action : rule.actions) {
        analyze_action(rule, action, scope);
      }
    }
  }

  void analyze_condition(const AstCondition& cond) {
    if (cond.is_event) {
      if (!known_events().count(cond.event)) {
        diags_.warning(cond.loc, "unknown-event",
                       "event '" + cond.event +
                           "' is not emitted by any built-in watcher");
      }
      return;
    }
    if (cond.metric == "queue_depth") {
      if (cond.metric_subject.empty()) {
        error(cond.loc, "missing-metric-argument",
              "queue_depth needs a connector argument");
      } else if (!out_.connector_index.count(cond.metric_subject)) {
        error(cond.loc, "unknown-connector",
              "queue_depth references unknown connector '" +
                  cond.metric_subject + "'");
      }
    } else if (cond.metric == "backlog") {
      if (cond.metric_subject.empty()) {
        error(cond.loc, "missing-metric-argument",
              "backlog needs a node argument");
      } else if (!node_names_.count(cond.metric_subject)) {
        error(cond.loc, "unknown-node",
              "backlog references unknown node '" + cond.metric_subject +
                  "'");
      }
    } else if (cond.metric == "fault.active") {
      if (!cond.metric_subject.empty()) {
        error(cond.loc, "invalid-metric-argument",
              "fault.active takes no argument");
      }
    } else {
      error(cond.loc, "unknown-metric",
            "unknown condition metric '" + cond.metric +
                "' (expected queue_depth, backlog or fault.active)");
    }
  }

  void analyze_action(const AstRule& rule, const AstRuleAction& action,
                      RuleScope& scope) {
    using Kind = AstRuleAction::Kind;
    const auto require_instance = [&](const std::string& name) {
      if (!scope.resolves(name)) {
        error(action.loc, "unknown-instance",
              "rule" + (rule.name.empty() ? "" : " '" + rule.name + "'") +
                  " references unknown instance '" + name + "'");
        return false;
      }
      return true;
    };
    const auto require_type = [&](const std::string& name) {
      if (!components_.count(name)) {
        error(action.loc, "unknown-type",
              "rule action uses unknown component type '" + name + "'");
      }
    };
    const auto require_node = [&](const std::string& name) {
      if (!node_names_.count(name)) {
        error(action.loc, "unknown-node",
              "rule action uses unknown node '" + name + "'");
      }
    };
    switch (action.kind) {
      case Kind::kAdd:
        require_type(action.type);
        require_node(action.node);
        if (scope.resolves(action.name)) {
          error(action.loc, "duplicate-name",
                "added instance '" + action.name + "' already exists",
                ErrorCode::kAlreadyExists);
        }
        scope.add(action.name);
        break;
      case Kind::kRemove:
        if (require_instance(action.instance)) scope.remove(action.instance);
        break;
      case Kind::kReplace:
        require_instance(action.instance);
        require_type(action.type);
        if (!action.name.empty()) {
          scope.remove(action.instance);
          scope.add(action.name);
        }
        break;
      case Kind::kMigrate:
        require_instance(action.instance);
        require_node(action.node);
        break;
      case Kind::kRebind:
        require_instance(action.instance);
        if (!out_.connector_index.count(action.connector)) {
          error(action.loc, "unknown-connector",
                "rebind targets unknown connector '" + action.connector +
                    "'");
        }
        break;
      case Kind::kReroute:
        require_instance(action.instance);
        require_instance(action.replica);
        break;
    }
  }

  // --- goals ---------------------------------------------------------------
  void analyze_goals() {
    check_unique(config_.goals, "goal");
    for (const AstGoal& goal : config_.goals) {
      // Contradiction check: for each connector, the tightest upper latency
      // bound must not fall below the tightest lower bound.
      std::map<std::string, std::int64_t> upper, lower;
      for (const AstQosBound& bound : goal.qos) {
        if (!out_.connector_index.count(bound.connector)) {
          error(bound.loc, "unknown-connector",
                "goal '" + goal.name + "' bounds unknown connector '" +
                    bound.connector + "'");
          continue;
        }
        if (bound.latency_us < 0) {
          error(bound.loc, "invalid-value", "latency bound must be >= 0");
          continue;
        }
        auto& side = bound.upper ? upper : lower;
        auto it = side.find(bound.connector);
        if (it == side.end()) {
          side.emplace(bound.connector, bound.latency_us);
        } else if (bound.upper) {
          it->second = std::min(it->second, bound.latency_us);
        } else {
          it->second = std::max(it->second, bound.latency_us);
        }
        auto up = upper.find(bound.connector);
        auto lo = lower.find(bound.connector);
        if (up != upper.end() && lo != lower.end() &&
            up->second < lo->second) {
          error(bound.loc, "contradictory-qos",
                util::format("goal '%s': contradictory latency bounds on "
                             "'%s' (<= %lldus but >= %lldus)",
                             goal.name.c_str(), bound.connector.c_str(),
                             static_cast<long long>(up->second),
                             static_cast<long long>(lo->second)));
        }
      }
      std::map<std::string, std::pair<int, int>> replica_range;  // [lo, hi]
      for (const AstReplicaBound& bound : goal.replicas) {
        if (!components_.count(bound.type)) {
          error(bound.loc, "unknown-type",
                "goal '" + goal.name + "' bounds unknown component type '" +
                    bound.type + "'");
          continue;
        }
        if (bound.count < 0) {
          error(bound.loc, "invalid-value", "replica count must be >= 0");
          continue;
        }
        int lo = 0, hi = std::numeric_limits<int>::max();
        switch (bound.compare) {
          case AstCompare::kGe: lo = bound.count; break;
          case AstCompare::kGt: lo = bound.count + 1; break;
          case AstCompare::kLe: hi = bound.count; break;
          case AstCompare::kLt: hi = bound.count - 1; break;
          case AstCompare::kEq: lo = hi = bound.count; break;
          case AstCompare::kNe: break;  // no range constraint
        }
        auto [it, inserted] =
            replica_range.emplace(bound.type, std::make_pair(lo, hi));
        if (!inserted) {
          it->second.first = std::max(it->second.first, lo);
          it->second.second = std::min(it->second.second, hi);
        }
        if (it->second.first > it->second.second) {
          error(bound.loc, "contradictory-replicas",
                util::format("goal '%s': contradictory replica bounds on "
                             "'%s'",
                             goal.name.c_str(), bound.type.c_str()));
        }
      }
      for (const AstPlacement& placement : goal.placements) {
        if (!out_.instance_index.count(placement.instance)) {
          error(placement.loc, "unknown-instance",
                "goal '" + goal.name + "' places unknown instance '" +
                    placement.instance + "'");
        }
        if (!node_names_.count(placement.node)) {
          error(placement.loc, "unknown-node",
                "goal '" + goal.name + "' places on unknown node '" +
                    placement.node + "'");
        }
      }
    }
  }

  // --- scenarios -----------------------------------------------------------
  void analyze_scenarios() {
    check_unique(config_.scenarios, "scenario");
    std::set<std::string> goal_names;
    for (const AstGoal& g : config_.goals) goal_names.insert(g.name);
    for (const AstScenario& scenario : config_.scenarios) {
      for (const std::string& goal : scenario.goals) {
        if (!goal_names.count(goal)) {
          error(scenario.loc, "unknown-goal",
                "scenario '" + scenario.name + "' references unknown goal '" +
                    goal + "'");
        }
      }
      if (scenario.duration_us < 0) {
        error(scenario.loc, "invalid-value",
              "scenario duration must be >= 0");
      }
      // Full fault/load line syntax is validated by the consumers
      // (fault::FaultScenario::parse, scenario::LoadPhase::parse), which
      // live above this layer; sema only rejects obviously-dead lines.
      for (const auto& [fault, loc] : scenario.faults) {
        if (fault.find_first_not_of(" \t") == std::string::npos) {
          error(loc, "empty-line",
                "scenario '" + scenario.name + "' has an empty fault line");
        }
      }
      for (const auto& [load, loc] : scenario.loads) {
        if (load.find_first_not_of(" \t") == std::string::npos) {
          error(loc, "empty-line",
                "scenario '" + scenario.name + "' has an empty load line");
        }
      }
    }
  }

  // --- path properties -----------------------------------------------------
  void analyze_properties() {
    check_unique(config_.properties, "property");
    // Predicates range over every instance name a reconfiguration path can
    // produce: the declared instances plus names rule actions introduce
    // (add, replace-as). An unknown name would be vacuously false forever.
    std::set<std::string> instance_universe;
    for (const auto& [name, idx] : out_.instance_index) {
      instance_universe.insert(name);
    }
    std::set<std::string> rule_names;
    for (std::size_t i = 0; i < config_.rules.size(); ++i) {
      const AstRule& rule = config_.rules[i];
      rule_names.insert(rule.name.empty() ? util::format("rule_%zu", i)
                                          : rule.name);
      for (const AstRuleAction& action : rule.actions) {
        if (!action.name.empty()) instance_universe.insert(action.name);
      }
    }
    for (const AstProperty& prop : config_.properties) {
      for (const AstPropertyClause& clause : prop.clauses) {
        if (clause.kind == AstPropertyClause::Kind::kReverts) {
          if (!rule_names.count(clause.rule)) {
            error(clause.loc, "unknown-rule",
                  "property '" + prop.name + "' reverts unknown rule '" +
                      clause.rule + "'");
          }
          continue;
        }
        const AstPredicate& pred = clause.pred;
        switch (pred.kind) {
          case AstPredicate::Kind::kExists:
          case AstPredicate::Kind::kRunning:
            if (!instance_universe.count(pred.subject)) {
              error(pred.loc, "unknown-instance",
                    "property '" + prop.name +
                        "' references unknown instance '" + pred.subject +
                        "'");
            }
            if (pred.kind == AstPredicate::Kind::kRunning &&
                !components_.count(pred.type)) {
              error(pred.loc, "unknown-type",
                    "property '" + prop.name +
                        "' references unknown component type '" + pred.type +
                        "'");
            }
            break;
          case AstPredicate::Kind::kRouted:
            if (!out_.connector_index.count(pred.subject)) {
              error(pred.loc, "unknown-connector",
                    "property '" + prop.name +
                        "' references unknown connector '" + pred.subject +
                        "'");
            }
            break;
          case AstPredicate::Kind::kReplicas:
            if (!components_.count(pred.subject)) {
              error(pred.loc, "unknown-type",
                    "property '" + prop.name +
                        "' references unknown component type '" +
                        pred.subject + "'");
            }
            break;
        }
      }
    }
  }

  Configuration config_;
  Diagnostics& diags_;
  CompiledConfiguration out_;
  std::map<std::string, const AstComponent*> components_;
  std::set<std::string> node_names_;
};

}  // namespace

CompiledConfiguration analyze(Configuration config, Diagnostics& diags) {
  Sema sema(std::move(config), diags);
  return sema.run();
}

std::vector<CompiledPathProperty> lower_properties(const Configuration& ast) {
  std::vector<CompiledPathProperty> out;
  for (const AstProperty& prop : ast.properties) {
    for (const AstPropertyClause& clause : prop.clauses) {
      CompiledPathProperty lowered;
      lowered.property = util::Symbol(prop.name);
      lowered.line = clause.loc.line;
      lowered.column = clause.loc.column;
      switch (clause.kind) {
        case AstPropertyClause::Kind::kAlways:
          lowered.kind = PathPropertyKind::kAlways;
          break;
        case AstPropertyClause::Kind::kEventually:
          lowered.kind = PathPropertyKind::kEventually;
          break;
        case AstPropertyClause::Kind::kReverts:
          lowered.kind = PathPropertyKind::kReverts;
          lowered.rule = util::Symbol(clause.rule);
          break;
      }
      if (clause.kind != AstPropertyClause::Kind::kReverts) {
        const AstPredicate& pred = clause.pred;
        CompiledPredicate& p = lowered.pred;
        switch (pred.kind) {
          case AstPredicate::Kind::kExists:
            p.kind = PredicateKind::kExists;
            break;
          case AstPredicate::Kind::kRouted:
            p.kind = PredicateKind::kRouted;
            break;
          case AstPredicate::Kind::kRunning:
            p.kind = PredicateKind::kRunning;
            break;
          case AstPredicate::Kind::kReplicas:
            p.kind = PredicateKind::kReplicas;
            break;
        }
        p.negated = pred.negated;
        p.subject = util::Symbol(pred.subject);
        p.type = util::Symbol(pred.type);
        p.compare = pred.compare;
        p.count = pred.count;
      }
      out.push_back(std::move(lowered));
    }
  }
  return out;
}

}  // namespace aars::adl
