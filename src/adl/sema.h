// Semantic analysis — stage 3 of the compiler.
//
// ADLs "create, validate and update architectures" (§1); this pass performs
// the validation step: name resolution, attribute type checking, Wright-style
// binding compatibility at the interface level, and — new with the
// reconfiguration-native grammar — resolution of `when … reconfigure` rules,
// `goal` and `scenario` blocks against the declared topology.
#pragma once

#include <string>

#include "adl/ast.h"
#include "adl/diagnostics.h"
#include "adl/ir.h"
#include "util/errors.h"

namespace aars::adl {

/// Maps an ADL type name to a runtime ValueType. kNull encodes "any".
util::Result<util::ValueType> value_type_from_name(const std::string& name);

/// Resolves and type-checks the AST, reporting problems into `diags`.
/// Diagnostics carry line and column. Returns the topology IR; callers must
/// check `diags.ok()` before deploying it.
CompiledConfiguration analyze(Configuration config, Diagnostics& diags);

/// Lowers `property { ... }` blocks into the flat interned-Symbol clause
/// table the configuration-space explorer consumes. Names must already have
/// been resolved by `analyze`.
std::vector<CompiledPathProperty> lower_properties(const Configuration& ast);

}  // namespace aars::adl
