#include "adl/compiler.h"

#include <fstream>
#include <sstream>

#include "adl/parser.h"
#include "adl/sema.h"

namespace aars::adl {

namespace {

/// Emit stage: lowers the validated rule/goal/scenario AST into the
/// pre-resolved RuleProgram. Every name is interned to a util::Symbol here,
/// once, so nothing downstream ever hashes or parses it again.
RuleProgram emit_program(const Configuration& ast) {
  RuleProgram program;
  program.rules.reserve(ast.rules.size());
  for (std::size_t i = 0; i < ast.rules.size(); ++i) {
    const AstRule& rule = ast.rules[i];
    CompiledRule out;
    out.name = rule.name.empty()
                   ? util::Symbol("rule_" + std::to_string(i))
                   : util::Symbol(rule.name);
    out.cooldown_us = rule.cooldown_us;
    out.deadline_us = rule.deadline_us;
    out.line = rule.loc.line;
    out.column = rule.loc.column;
    const AstCondition& cond = rule.condition;
    out.condition.is_event = cond.is_event;
    out.condition.compare = cond.compare;
    out.condition.threshold = cond.threshold;
    out.condition.sustain_ticks = cond.sustain_ticks;
    if (cond.is_event) {
      out.condition.event = util::Symbol(cond.event);
    } else {
      out.condition.subject = util::Symbol(cond.metric_subject);
      out.condition.source = cond.metric == "queue_depth"
                                 ? MetricSource::kQueueDepth
                             : cond.metric == "backlog"
                                 ? MetricSource::kNodeBacklog
                                 : MetricSource::kFaultActive;
    }
    out.actions.reserve(rule.actions.size());
    for (const AstRuleAction& action : rule.actions) {
      CompiledAction lowered;
      switch (action.kind) {
        case AstRuleAction::Kind::kAdd: lowered.op = RuleOp::kAdd; break;
        case AstRuleAction::Kind::kRemove: lowered.op = RuleOp::kRemove; break;
        case AstRuleAction::Kind::kReplace:
          lowered.op = RuleOp::kReplace;
          break;
        case AstRuleAction::Kind::kMigrate:
          lowered.op = RuleOp::kMigrate;
          break;
        case AstRuleAction::Kind::kRebind: lowered.op = RuleOp::kRebind; break;
        case AstRuleAction::Kind::kReroute:
          lowered.op = RuleOp::kReroute;
          break;
      }
      lowered.instance = util::Symbol(action.instance);
      lowered.type = util::Symbol(action.type);
      lowered.name = util::Symbol(action.name);
      lowered.node = util::Symbol(action.node);
      lowered.port = util::Symbol(action.port);
      lowered.connector = util::Symbol(action.connector);
      lowered.replica = util::Symbol(action.replica);
      out.actions.push_back(std::move(lowered));
    }
    program.rules.push_back(std::move(out));
  }

  program.goals.reserve(ast.goals.size());
  for (const AstGoal& goal : ast.goals) {
    CompiledGoal out;
    out.name = util::Symbol(goal.name);
    for (const AstQosBound& bound : goal.qos) {
      out.qos.push_back(CompiledGoal::Qos{util::Symbol(bound.connector),
                                          bound.upper, bound.latency_us});
    }
    for (const AstReplicaBound& bound : goal.replicas) {
      out.replicas.push_back(CompiledGoal::Replicas{
          util::Symbol(bound.type), bound.compare, bound.count});
    }
    for (const AstPlacement& placement : goal.placements) {
      out.placements.push_back(CompiledGoal::Placement{
          util::Symbol(placement.instance), util::Symbol(placement.node)});
    }
    program.goals.push_back(std::move(out));
  }

  program.scenarios.reserve(ast.scenarios.size());
  for (const AstScenario& scenario : ast.scenarios) {
    CompiledScenario out;
    out.name = util::Symbol(scenario.name);
    out.description = scenario.description;
    for (const std::string& goal : scenario.goals) {
      out.goals.push_back(util::Symbol(goal));
    }
    for (const auto& [fault, loc] : scenario.faults) {
      out.faults.push_back(fault);
    }
    for (const auto& [load, loc] : scenario.loads) {
      out.loads.push_back(load);
    }
    out.duration_us = scenario.duration_us;
    program.scenarios.push_back(std::move(out));
  }

  program.properties = lower_properties(ast);
  return program;
}

}  // namespace

CompilationResult compile(std::string_view source,
                          const CompileOptions& options) {
  CompilationResult result;
  result.source.assign(source);

  // Stage 1+2: lex + parse.
  Configuration ast = parse_ast(source, result.diagnostics);
  if (!result.diagnostics.ok()) return result;

  // Stage 3: sema — name resolution, typing, rule/goal/scenario checks.
  result.config = analyze(std::move(ast), result.diagnostics);
  if (!result.diagnostics.ok()) return result;

  // Stage 4: emit — lower rules into pre-resolved Symbol/table artifacts.
  result.program = emit_program(result.config.ast);

  // Stage 5 (optional): compile-time screening installed by higher layers.
  if (options.screen) options.screen(result);
  return result;
}

CompilationResult compile_file(const std::string& path,
                               const CompileOptions& options) {
  std::ifstream in(path);
  if (!in) {
    CompilationResult result;
    result.diagnostics.error(SourceLoc{}, "unreadable-file",
                             "cannot read '" + path + "'",
                             util::ErrorCode::kNotFound);
    return result;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return compile(buffer.str(), options);
}

}  // namespace aars::adl
