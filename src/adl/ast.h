// Abstract syntax of the AARS configuration language.
//
// The language follows the shape the paper attributes to Polylith and the
// ADL family (§1): interface definitions, component types with provided and
// required services, node/link topology, instances with placement, connector
// declarations, and bindings between required ports and serving instances.
//
// Example:
//
//   interface Storage version 1 {
//     service put(key: string, value: string) -> bool;
//     service get(key: string) -> string;
//   }
//   component CacheServer provides Storage {
//     requires backing: Storage;
//     attribute capacity: int = 1024;
//   }
//   node edge { capacity 2000; }
//   node core { capacity 8000; }
//   link edge <-> core { latency 5ms; bandwidth 100mbps; }
//   instance cache: CacheServer on edge { capacity = 4096; }
//   instance store: DiskStore on core;
//   connector c0 { routing direct; delivery sync; }
//   bind cache.backing -> store via c0;
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "util/value.h"

namespace aars::adl {

/// Location of a construct in the source text (for diagnostics).
struct SourceLoc {
  int line = 0;
  int column = 0;
};

struct AstParam {
  std::string name;
  std::string type;  // int|double|string|bool|list|map|any
  bool optional = false;
};

struct AstService {
  std::string name;
  std::vector<AstParam> params;
  std::string result_type = "any";
  SourceLoc loc;
};

struct AstInterface {
  std::string name;
  int version = 1;
  std::vector<AstService> services;
  SourceLoc loc;
};

struct AstRequire {
  std::string port;
  std::string interface;
  SourceLoc loc;
};

struct AstAttribute {
  std::string name;
  std::string type;
  util::Value default_value;
  SourceLoc loc;
};

/// One state declaration inside a `protocol { ... }` block. The first
/// declared state is the protocol's initial state.
struct AstProtocolState {
  std::string name;
  bool final_state = false;
  SourceLoc loc;
};

/// One transition inside a `protocol { ... }` block:
///   from -> to on action?;   (input)
///   from -> to on action!;   (output)
///   from -> to on tau;       (internal move)
struct AstProtocolTransition {
  std::string from;
  std::string to;
  std::string action;    // empty for tau
  char direction = 't';  // '?' input, '!' output, 't' tau
  SourceLoc loc;
};

/// A behavioural protocol (finite LTS) attached to a component type. The
/// static analyser composes the protocols of bound instances and checks the
/// n-way composition for deadlock-freedom (Wright-style, §3).
struct AstProtocol {
  std::vector<AstProtocolState> states;
  std::vector<AstProtocolTransition> transitions;
  SourceLoc loc;
};

struct AstComponent {
  std::string name;
  std::string provides;  // interface name; may be empty for pure clients
  std::vector<AstRequire> requires_;
  std::vector<AstAttribute> attributes;
  std::optional<AstProtocol> protocol;
  SourceLoc loc;
};

struct AstNode {
  std::string name;
  double capacity = 1000.0;  // work units / second
  SourceLoc loc;
};

struct AstLink {
  std::string from;
  std::string to;
  bool duplex = false;
  std::int64_t latency_us = 1000;
  double bandwidth_bytes_per_sec = 12.5e6;
  std::int64_t jitter_us = 0;
  double loss = 0.0;
  SourceLoc loc;
};

struct AstInstance {
  std::string name;
  std::string type;
  std::string node;
  std::vector<std::pair<std::string, util::Value>> attribute_overrides;
  SourceLoc loc;
};

struct AstConnector {
  std::string name;
  std::string routing = "direct";   // direct|round_robin|broadcast|least_backlog
  std::string delivery = "sync";    // sync|queued
  std::int64_t capacity = 1024;
  /// Declared round-trip latency budget (QoS contract) in microseconds;
  /// 0 = unconstrained. The static analyser checks feasibility against the
  /// topology's path-latency lower bound.
  std::int64_t budget_us = 0;
  std::vector<std::string> aspects;
  SourceLoc loc;
};

struct AstBinding {
  std::string from_instance;
  std::string from_port;
  std::vector<std::string> to_instances;  // one or more providers
  std::string via_connector;              // empty => implicit direct
  SourceLoc loc;
};

// --- reconfiguration rules -----------------------------------------------------
//
// Dynamic reconfiguration is a first-class construct of the language
// (Minora/Buisson): a rule binds a runtime condition to a block of
// reconfiguration actions, compiled ahead of time into pre-resolved
// dispatch tables so firing never parses or hashes a name.
//
//   when queue_depth(jobs) > 48 for 2 ticks reconfigure shed_load {
//     cooldown 2s;
//     deadline 200ms;
//     replace worker with CheapWorker;
//   }
//   when event fault.host_down reconfigure {
//     reroute primary to standby;
//   }

/// Comparison operator in a metric condition.
enum class AstCompare { kLt, kLe, kGt, kGe, kEq, kNe };

constexpr const char* to_string(AstCompare c) {
  switch (c) {
    case AstCompare::kLt: return "<";
    case AstCompare::kLe: return "<=";
    case AstCompare::kGt: return ">";
    case AstCompare::kGe: return ">=";
    case AstCompare::kEq: return "==";
    case AstCompare::kNe: return "!=";
  }
  return "?";
}

/// Trigger of a `when ... reconfigure` rule: either a named rule-engine
/// event or a metric threshold, optionally sustained over several ticks.
struct AstCondition {
  bool is_event = false;
  std::string event;            // is_event
  std::string metric;           // !is_event: queue_depth|backlog|fault.active
  std::string metric_subject;   // connector/node argument; may be empty
  AstCompare compare = AstCompare::kGt;
  double threshold = 0.0;
  int sustain_ticks = 1;        // "for N ticks"
  SourceLoc loc;
};

/// One reconfiguration action inside a rule block, mirroring the engine's
/// change classes (add/remove/replace/migrate/rebind/reroute).
struct AstRuleAction {
  enum class Kind { kAdd, kRemove, kReplace, kMigrate, kRebind, kReroute };
  Kind kind = Kind::kRemove;
  std::string instance;   // target of every action
  std::string type;       // kAdd / kReplace: component type
  std::string name;       // kAdd: new instance name; kReplace: optional "as"
  std::string node;       // kAdd / kMigrate: destination node
  std::string port;       // kRebind
  std::string connector;  // kRebind
  std::string replica;    // kReroute
  SourceLoc loc;
};

struct AstRule {
  std::string name;  // optional; auto-named "rule_<n>" when empty
  AstCondition condition;
  std::vector<AstRuleAction> actions;
  std::int64_t cooldown_us = 0;  // `cooldown 2s;` property
  /// `deadline 200ms;` property: whole-firing budget for the transactional
  /// enactment of this rule — when it expires mid-plan, the steps applied so
  /// far are rolled back in reverse order. 0 = no rule-level deadline (the
  /// runtime default applies).
  std::int64_t deadline_us = 0;
  SourceLoc loc;
};

// --- goals & scenarios ---------------------------------------------------------
//
//   goal premium {
//     latency jobs <= 5ms;
//     replicas Worker >= 2;
//     place frontend on edge;
//   }
//   scenario rush_hour {
//     description "x1.7 capacity flash crowd";
//     goal premium;
//     fault "crash host core at 2s for 1s";
//   }

struct AstQosBound {
  std::string connector;
  bool upper = true;  // <= (upper) vs >= (lower)
  std::int64_t latency_us = 0;
  SourceLoc loc;
};

struct AstReplicaBound {
  std::string type;
  AstCompare compare = AstCompare::kGe;
  int count = 0;
  SourceLoc loc;
};

struct AstPlacement {
  std::string instance;
  std::string node;
  SourceLoc loc;
};

/// Declarative management goal (MORPH-style): QoS bounds, replica counts
/// and placement constraints the strategy layer must maintain.
struct AstGoal {
  std::string name;
  std::vector<AstQosBound> qos;
  std::vector<AstReplicaBound> replicas;
  std::vector<AstPlacement> placements;
  SourceLoc loc;
};

/// A named operating scenario: a description, the goals that must hold
/// during it, optional fault-scenario lines (FaultScenario text format) and
/// optional load-phase lines (scenario::LoadPhase text format) that the
/// campaign generator lowers into an arrival model.
struct AstScenario {
  std::string name;
  std::string description;
  std::vector<std::string> goals;
  std::vector<std::pair<std::string, SourceLoc>> faults;
  std::vector<std::pair<std::string, SourceLoc>> loads;
  std::int64_t duration_us = 0;
  SourceLoc loc;
};

// --- path properties -----------------------------------------------------------
//
// Temporal properties checked along reconfiguration paths (Hufflen-style):
// the explorer enumerates the configurations reachable by firing rules and
// checks each clause over that graph instead of over a single snapshot.
//
//   property resilience {
//     always replicas(Worker) >= 1;
//     always routed(jobs);
//     eventually running(worker, Worker);
//     reverts degrade;
//   }

/// Atomic predicate over one configuration:
///   [not] exists(inst)          — the instance is deployed
///   [not] routed(conn)          — every binding through the connector keeps
///                                 a provider with a feasible (budget-
///                                 respecting) route
///   [not] running(inst, Type)   — the instance exists and currently runs
///                                 implementation Type (degraded-mode flag)
///   replicas(Type) CMP N        — deployed instance count of the type
struct AstPredicate {
  enum class Kind { kExists, kRouted, kRunning, kReplicas };
  Kind kind = Kind::kExists;
  bool negated = false;  // `not <pred>`
  /// kExists/kRunning: instance; kRouted: connector; kReplicas: type.
  std::string subject;
  std::string type;  // kRunning: expected implementation type
  AstCompare compare = AstCompare::kGe;  // kReplicas
  int count = 0;                         // kReplicas
  SourceLoc loc;
};

/// One clause of a property block. `always` must hold in every reachable
/// configuration (including mid-firing intermediate states); `eventually`
/// requires a satisfying configuration to stay reliably reachable;
/// `reverts` requires every firing of the named rule to be reliably
/// undoable (the pre-firing configuration stays reachable).
struct AstPropertyClause {
  enum class Kind { kAlways, kEventually, kReverts };
  Kind kind = Kind::kAlways;
  AstPredicate pred;  // kAlways / kEventually
  std::string rule;   // kReverts: the rule whose effect must be revertible
  SourceLoc loc;
};

struct AstProperty {
  std::string name;
  std::vector<AstPropertyClause> clauses;
  SourceLoc loc;
};

/// A whole configuration unit.
struct Configuration {
  std::vector<AstInterface> interfaces;
  std::vector<AstComponent> components;
  std::vector<AstNode> nodes;
  std::vector<AstLink> links;
  std::vector<AstInstance> instances;
  std::vector<AstConnector> connectors;
  std::vector<AstBinding> bindings;
  std::vector<AstRule> rules;
  std::vector<AstGoal> goals;
  std::vector<AstScenario> scenarios;
  std::vector<AstProperty> properties;
};

}  // namespace aars::adl
