#include "adl/validator.h"

#include <set>

#include "util/strings.h"

namespace aars::adl {

using component::InterfaceDescription;
using component::ParamSpec;
using component::ServiceSignature;
using util::Error;
using util::ErrorCode;
using util::Result;
using util::Status;
using util::Value;
using util::ValueType;

Result<ValueType> value_type_from_name(const std::string& name) {
  if (name == "int") return ValueType::kInt;
  if (name == "double") return ValueType::kDouble;
  if (name == "string") return ValueType::kString;
  if (name == "bool") return ValueType::kBool;
  if (name == "list") return ValueType::kList;
  if (name == "map") return ValueType::kMap;
  if (name == "any" || name == "null") return ValueType::kNull;
  return Error{ErrorCode::kInvalidArgument, "unknown type '" + name + "'"};
}

namespace {

Error at(const SourceLoc& loc, const std::string& what) {
  return Error{ErrorCode::kInvalidArgument,
               util::format("line %d: %s", loc.line, what.c_str())};
}

bool literal_matches(ValueType declared, const Value& v) {
  if (declared == ValueType::kNull || v.is_null()) return true;
  if (declared == ValueType::kDouble && v.is_int()) return true;
  return v.type() == declared;
}

Status check_unique(const std::vector<std::string>& names, const char* kind) {
  std::set<std::string> seen;
  for (const std::string& n : names) {
    if (!seen.insert(n).second) {
      return Error{ErrorCode::kAlreadyExists,
                   util::format("duplicate %s '%s'", kind, n.c_str())};
    }
  }
  return Status::success();
}

/// Compiles a `protocol { ... }` block into an Lts. The first declared
/// state is the initial state (Lts state 0).
util::Result<lts::Lts> compile_protocol(const std::string& component,
                                        const AstProtocol& protocol) {
  if (protocol.states.empty()) {
    return at(protocol.loc,
              "protocol on " + component + " declares no states");
  }
  lts::Lts lts(component);
  std::map<std::string, lts::StateId> states;
  for (std::size_t i = 0; i < protocol.states.size(); ++i) {
    const AstProtocolState& state = protocol.states[i];
    if (states.count(state.name)) {
      return at(state.loc, "duplicate protocol state '" + state.name +
                               "' on " + component);
    }
    const lts::StateId id = i == 0 ? lts.initial() : lts.add_state();
    lts.set_final(id, state.final_state);
    states.emplace(state.name, id);
  }
  for (const AstProtocolTransition& t : protocol.transitions) {
    auto from = states.find(t.from);
    if (from == states.end()) {
      return at(t.loc, "protocol transition from unknown state '" + t.from +
                           "' on " + component);
    }
    auto to = states.find(t.to);
    if (to == states.end()) {
      return at(t.loc, "protocol transition to unknown state '" + t.to +
                           "' on " + component);
    }
    lts::Label label = t.direction == '?'   ? lts::in(t.action)
                       : t.direction == '!' ? lts::out(t.action)
                                            : lts::tau();
    lts.add_transition(from->second, std::move(label), to->second);
  }
  return lts;
}

}  // namespace

Result<CompiledConfiguration> validate(Configuration config) {
  CompiledConfiguration out;

  // --- interfaces -----------------------------------------------------------
  {
    std::vector<std::string> names;
    for (const AstInterface& i : config.interfaces) names.push_back(i.name);
    if (Status s = check_unique(names, "interface"); !s.ok()) return s.error();
  }
  for (const AstInterface& iface : config.interfaces) {
    InterfaceDescription desc(iface.name, iface.version);
    std::set<std::string> service_names;
    for (const AstService& svc : iface.services) {
      if (!service_names.insert(svc.name).second) {
        return at(svc.loc, "duplicate service '" + svc.name + "' in " +
                               iface.name);
      }
      ServiceSignature sig;
      sig.name = svc.name;
      auto result_type = value_type_from_name(svc.result_type);
      if (!result_type.ok()) return at(svc.loc, result_type.error().message());
      sig.result = result_type.value();
      std::set<std::string> param_names;
      for (const AstParam& p : svc.params) {
        if (!param_names.insert(p.name).second) {
          return at(svc.loc,
                    "duplicate parameter '" + p.name + "' in " + svc.name);
        }
        auto ptype = value_type_from_name(p.type);
        if (!ptype.ok()) return at(svc.loc, ptype.error().message());
        sig.params.push_back(ParamSpec{p.name, ptype.value(), p.optional});
      }
      desc.add_service(std::move(sig));
    }
    out.interfaces.emplace(iface.name, std::move(desc));
  }

  // --- components -----------------------------------------------------------
  {
    std::vector<std::string> names;
    for (const AstComponent& c : config.components) names.push_back(c.name);
    if (Status s = check_unique(names, "component"); !s.ok()) return s.error();
  }
  std::map<std::string, const AstComponent*> components;
  for (const AstComponent& comp : config.components) {
    if (!comp.provides.empty() && !out.interfaces.count(comp.provides)) {
      return at(comp.loc, comp.name + " provides unknown interface '" +
                              comp.provides + "'");
    }
    std::set<std::string> port_names;
    for (const AstRequire& req : comp.requires_) {
      if (!port_names.insert(req.port).second) {
        return at(req.loc, "duplicate port '" + req.port + "' on " + comp.name);
      }
      if (!out.interfaces.count(req.interface)) {
        return at(req.loc, comp.name + "." + req.port +
                               " requires unknown interface '" +
                               req.interface + "'");
      }
    }
    std::set<std::string> attr_names;
    for (const AstAttribute& attr : comp.attributes) {
      if (!attr_names.insert(attr.name).second) {
        return at(attr.loc,
                  "duplicate attribute '" + attr.name + "' on " + comp.name);
      }
      auto atype = value_type_from_name(attr.type);
      if (!atype.ok()) return at(attr.loc, atype.error().message());
      if (!literal_matches(atype.value(), attr.default_value)) {
        return at(attr.loc, "default for '" + attr.name +
                                "' does not match declared type " + attr.type);
      }
    }
    if (comp.protocol.has_value()) {
      auto lts = compile_protocol(comp.name, *comp.protocol);
      if (!lts.ok()) return lts.error();
      out.protocols.emplace(comp.name, std::move(lts).value());
    }
    components.emplace(comp.name, &comp);
  }

  // --- nodes & links -----------------------------------------------------------
  {
    std::vector<std::string> names;
    for (const AstNode& n : config.nodes) names.push_back(n.name);
    if (Status s = check_unique(names, "node"); !s.ok()) return s.error();
  }
  std::set<std::string> node_names;
  for (const AstNode& n : config.nodes) node_names.insert(n.name);
  for (const AstLink& link : config.links) {
    if (!node_names.count(link.from)) {
      return at(link.loc, "link references unknown node '" + link.from + "'");
    }
    if (!node_names.count(link.to)) {
      return at(link.loc, "link references unknown node '" + link.to + "'");
    }
    if (link.from == link.to) return at(link.loc, "self links are not allowed");
    if (link.bandwidth_bytes_per_sec <= 0) {
      return at(link.loc, "bandwidth must be positive");
    }
    if (link.latency_us < 0) return at(link.loc, "latency must be >= 0");
  }

  // --- instances -----------------------------------------------------------
  {
    std::vector<std::string> names;
    for (const AstInstance& i : config.instances) names.push_back(i.name);
    if (Status s = check_unique(names, "instance"); !s.ok()) return s.error();
  }
  for (std::size_t i = 0; i < config.instances.size(); ++i) {
    const AstInstance& inst = config.instances[i];
    auto comp_it = components.find(inst.type);
    if (comp_it == components.end()) {
      return at(inst.loc,
                inst.name + ": unknown component type '" + inst.type + "'");
    }
    if (!node_names.count(inst.node)) {
      return at(inst.loc, inst.name + ": unknown node '" + inst.node + "'");
    }
    const AstComponent& type = *comp_it->second;
    for (const auto& [attr_name, literal] : inst.attribute_overrides) {
      const AstAttribute* declared = nullptr;
      for (const AstAttribute& a : type.attributes) {
        if (a.name == attr_name) {
          declared = &a;
          break;
        }
      }
      if (declared == nullptr) {
        return at(inst.loc, inst.name + ": component " + inst.type +
                                " has no attribute '" + attr_name + "'");
      }
      auto atype = value_type_from_name(declared->type);
      if (atype.ok() && !literal_matches(atype.value(), literal)) {
        return at(inst.loc, inst.name + ": value for '" + attr_name +
                                "' does not match declared type " +
                                declared->type);
      }
    }
    out.instance_index.emplace(inst.name, i);
  }

  // --- connectors -----------------------------------------------------------
  {
    std::vector<std::string> names;
    for (const AstConnector& c : config.connectors) names.push_back(c.name);
    if (Status s = check_unique(names, "connector"); !s.ok()) return s.error();
  }
  static const std::set<std::string> kRoutings{"direct", "round_robin",
                                               "broadcast", "least_backlog"};
  static const std::set<std::string> kDeliveries{"sync", "queued"};
  for (std::size_t i = 0; i < config.connectors.size(); ++i) {
    const AstConnector& conn = config.connectors[i];
    if (!kRoutings.count(conn.routing)) {
      return at(conn.loc,
                conn.name + ": unknown routing '" + conn.routing + "'");
    }
    if (!kDeliveries.count(conn.delivery)) {
      return at(conn.loc,
                conn.name + ": unknown delivery '" + conn.delivery + "'");
    }
    if (conn.capacity <= 0) {
      return at(conn.loc, conn.name + ": capacity must be positive");
    }
    if (conn.budget_us < 0) {
      return at(conn.loc, conn.name + ": budget must be >= 0");
    }
    out.connector_index.emplace(conn.name, i);
  }

  // --- bindings -----------------------------------------------------------
  for (const AstBinding& bind : config.bindings) {
    auto from_it = out.instance_index.find(bind.from_instance);
    if (from_it == out.instance_index.end()) {
      return at(bind.loc, "binding from unknown instance '" +
                              bind.from_instance + "'");
    }
    const AstInstance& from_inst = config.instances[from_it->second];
    const AstComponent& from_type = *components.at(from_inst.type);
    const AstRequire* port = nullptr;
    for (const AstRequire& req : from_type.requires_) {
      if (req.port == bind.from_port) {
        port = &req;
        break;
      }
    }
    if (port == nullptr) {
      return at(bind.loc, from_inst.type + " has no required port '" +
                              bind.from_port + "'");
    }
    const InterfaceDescription& required = out.interfaces.at(port->interface);
    for (const std::string& provider_name : bind.to_instances) {
      auto to_it = out.instance_index.find(provider_name);
      if (to_it == out.instance_index.end()) {
        return at(bind.loc,
                  "binding to unknown instance '" + provider_name + "'");
      }
      const AstInstance& to_inst = config.instances[to_it->second];
      const AstComponent& to_type = *components.at(to_inst.type);
      if (to_type.provides.empty()) {
        return at(bind.loc, provider_name + " (type " + to_type.name +
                                ") provides no interface");
      }
      const InterfaceDescription& provided =
          out.interfaces.at(to_type.provides);
      if (Status s = provided.satisfies(required); !s.ok()) {
        return at(bind.loc, "binding " + bind.from_instance + "." +
                                bind.from_port + " -> " + provider_name +
                                ": " + s.error().message());
      }
    }
    if (!bind.via_connector.empty() &&
        !out.connector_index.count(bind.via_connector)) {
      return at(bind.loc,
                "binding via unknown connector '" + bind.via_connector + "'");
    }
    if (bind.to_instances.size() > 1) {
      if (bind.via_connector.empty()) {
        return at(bind.loc,
                  "multi-provider binding requires an explicit connector");
      }
      const AstConnector& conn =
          config.connectors[out.connector_index.at(bind.via_connector)];
      if (conn.routing == "direct") {
        return at(bind.loc,
                  "direct connector cannot serve multiple providers");
      }
    }
  }

  out.ast = std::move(config);
  return out;
}

}  // namespace aars::adl
