#include "adl/validator.h"

#include "adl/sema.h"

namespace aars::adl {

util::Result<CompiledConfiguration> validate(Configuration config) {
  Diagnostics diags;
  CompiledConfiguration out = analyze(std::move(config), diags);
  if (!diags.ok()) return diags.to_error();
  return out;
}

}  // namespace aars::adl
