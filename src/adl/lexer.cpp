#include "adl/lexer.h"

#include <cctype>

#include "util/strings.h"

namespace aars::adl {

using util::Error;
using util::ErrorCode;
using util::Result;

namespace {

struct Cursor {
  std::string_view text;
  std::size_t pos = 0;
  int line = 1;
  int column = 1;

  bool done() const { return pos >= text.size(); }
  char peek(std::size_t ahead = 0) const {
    return pos + ahead < text.size() ? text[pos + ahead] : '\0';
  }
  char advance() {
    const char c = text[pos++];
    if (c == '\n') {
      ++line;
      column = 1;
    } else {
      ++column;
    }
    return c;
  }
  SourceLoc loc() const { return SourceLoc{line, column}; }
};

bool is_ident_start(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}
bool is_ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_' || c == '.';
}

/// Applies a unit suffix to a numeric literal. Returns false for unknown
/// suffixes.
bool apply_unit(const std::string& unit, double& value, bool& is_integer) {
  if (unit.empty()) return true;
  if (unit == "us") {
    is_integer = true;
    return true;
  }
  if (unit == "ms") {
    value *= 1000.0;
    is_integer = true;
    return true;
  }
  if (unit == "s") {
    value *= 1e6;
    is_integer = true;
    return true;
  }
  // Bandwidth: input in bits/sec, normalised to bytes/sec.
  if (unit == "bps") {
    value /= 8.0;
    return true;
  }
  if (unit == "kbps") {
    value *= 1e3 / 8.0;
    return true;
  }
  if (unit == "mbps") {
    value *= 1e6 / 8.0;
    return true;
  }
  if (unit == "gbps") {
    value *= 1e9 / 8.0;
    return true;
  }
  return false;
}

}  // namespace

std::vector<Token> lex(std::string_view source, Diagnostics& diags) {
  std::vector<Token> tokens;
  Cursor cur{source};

  while (!cur.done()) {
    const char c = cur.peek();
    // Whitespace.
    if (std::isspace(static_cast<unsigned char>(c))) {
      cur.advance();
      continue;
    }
    // Comments.
    if (c == '/' && cur.peek(1) == '/') {
      while (!cur.done() && cur.peek() != '\n') cur.advance();
      continue;
    }
    const SourceLoc loc = cur.loc();
    // Identifiers / keywords.
    if (is_ident_start(c)) {
      std::string text;
      while (!cur.done() && is_ident_char(cur.peek())) text += cur.advance();
      tokens.push_back(Token{TokenKind::kIdentifier, text, 0, 0.0, loc});
      continue;
    }
    // Numbers, possibly negative, with optional unit suffix.
    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '-' && std::isdigit(static_cast<unsigned char>(cur.peek(1))))) {
      std::string digits;
      bool has_dot = false;
      if (cur.peek() == '-') digits += cur.advance();
      while (!cur.done() &&
             (std::isdigit(static_cast<unsigned char>(cur.peek())) ||
              (cur.peek() == '.' && !has_dot &&
               std::isdigit(static_cast<unsigned char>(cur.peek(1)))))) {
        if (cur.peek() == '.') has_dot = true;
        digits += cur.advance();
      }
      const SourceLoc unit_loc = cur.loc();
      std::string unit;
      while (!cur.done() &&
             std::isalpha(static_cast<unsigned char>(cur.peek()))) {
        unit += cur.advance();
      }
      double value = std::stod(digits);
      bool is_integer = !has_dot;
      if (!apply_unit(unit, value, is_integer)) {
        diags.error(unit_loc, "unknown-unit",
                    util::format("unknown unit '%s'", unit.c_str()),
                    ErrorCode::kParseError);
        continue;
      }
      Token token;
      token.loc = loc;
      if (is_integer) {
        token.kind = TokenKind::kInteger;
        token.int_value = static_cast<std::int64_t>(value);
        token.float_value = value;
      } else {
        token.kind = TokenKind::kFloat;
        token.float_value = value;
      }
      tokens.push_back(std::move(token));
      continue;
    }
    // Strings.
    if (c == '"') {
      cur.advance();
      std::string text;
      while (!cur.done() && cur.peek() != '"') {
        if (cur.peek() == '\\') {
          cur.advance();
          if (cur.done()) break;
        }
        text += cur.advance();
      }
      if (cur.done()) {
        diags.error(loc, "unterminated-string", "unterminated string",
                    ErrorCode::kParseError);
        break;
      }
      cur.advance();  // closing quote
      tokens.push_back(Token{TokenKind::kString, text, 0, 0.0, loc});
      continue;
    }
    // Arrows (the duplex arrow must win over `<` comparison).
    if (c == '-' && cur.peek(1) == '>') {
      cur.advance();
      cur.advance();
      tokens.push_back(Token{TokenKind::kArrow, "->", 0, 0.0, loc});
      continue;
    }
    if (c == '<' && cur.peek(1) == '-' && cur.peek(2) == '>') {
      cur.advance();
      cur.advance();
      cur.advance();
      tokens.push_back(Token{TokenKind::kDuplexArrow, "<->", 0, 0.0, loc});
      continue;
    }
    // Comparison operators for rule conditions and goal bounds. Two-char
    // forms first; bare `=`, `?`, `!` stay punctuation (attribute override
    // and protocol direction markers).
    if ((c == '<' || c == '>' || c == '=' || c == '!') && cur.peek(1) == '=') {
      cur.advance();
      cur.advance();
      tokens.push_back(
          Token{TokenKind::kCompare, std::string(1, c) + "=", 0, 0.0, loc});
      continue;
    }
    if (c == '<' || c == '>') {
      cur.advance();
      tokens.push_back(
          Token{TokenKind::kCompare, std::string(1, c), 0, 0.0, loc});
      continue;
    }
    // Single-character punctuation. `?` and `!` are the protocol-transition
    // direction markers (input/output) used inside `protocol { ... }` blocks.
    if (std::string("{}()[]:;,=?!").find(c) != std::string::npos) {
      cur.advance();
      tokens.push_back(
          Token{TokenKind::kPunct, std::string(1, c), 0, 0.0, loc});
      continue;
    }
    diags.error(loc, "unexpected-character",
                util::format("unexpected character '%c'", c),
                ErrorCode::kParseError);
    cur.advance();
  }
  tokens.push_back(Token{TokenKind::kEnd, "", 0, 0.0, cur.loc()});
  return tokens;
}

Result<std::vector<Token>> tokenize(std::string_view source) {
  Diagnostics diags;
  std::vector<Token> tokens = lex(source, diags);
  if (!diags.ok()) return diags.to_error();
  return tokens;
}

}  // namespace aars::adl
