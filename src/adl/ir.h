// Typed intermediate representation — stage 3 of the compiler.
//
// Sema resolves the AST's names against each other and produces two
// artifacts: the CompiledConfiguration (topology IR the deployer consumes,
// unchanged shape since PR 2) and — via the emit stage — a RuleProgram in
// which every name that a firing rule would otherwise look up is
// pre-resolved to an interned util::Symbol or a dense index.  The runtime
// layer (`reconfig::RuleSet`) binds Symbols to live ids once at install
// time, so evaluating or firing a rule is table lookups only: no string
// parsing, no hashing, no allocation.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "adl/ast.h"
#include "adl/diagnostics.h"
#include "component/interface.h"
#include "lts/lts.h"
#include "util/symbol.h"

namespace aars::adl {

/// Topology IR: the AST plus resolved interface descriptions and indices.
struct CompiledConfiguration {
  Configuration ast;
  std::map<std::string, component::InterfaceDescription> interfaces;
  /// instance name -> index in ast.instances
  std::map<std::string, std::size_t> instance_index;
  /// connector name -> index in ast.connectors
  std::map<std::string, std::size_t> connector_index;
  /// component type name -> compiled behavioural protocol, for components
  /// that declare a `protocol { ... }` block. Consumed by the static
  /// analyser (n-way composition deadlock checking).
  std::map<std::string, lts::Lts> protocols;
};

/// Where a compiled metric condition samples from. Enum dispatch — the
/// runtime switch-branches instead of matching metric names.
enum class MetricSource { kQueueDepth, kNodeBacklog, kFaultActive };

struct CompiledCondition {
  bool is_event = false;
  util::Symbol event;  // is_event: interned rule-engine event name
  MetricSource source = MetricSource::kQueueDepth;
  util::Symbol subject;  // connector / node the metric reads
  AstCompare compare = AstCompare::kGt;
  double threshold = 0.0;
  int sustain_ticks = 1;
};

/// Reconfiguration verbs, mirroring reconfig::Engine's change classes. The
/// adl layer defines its own op enum (rather than reusing the analysis
/// plan's) so the compiler stays free of upward dependencies.
enum class RuleOp { kAdd, kRemove, kReplace, kMigrate, kRebind, kReroute };

constexpr const char* to_string(RuleOp op) {
  switch (op) {
    case RuleOp::kAdd: return "add";
    case RuleOp::kRemove: return "remove";
    case RuleOp::kReplace: return "replace";
    case RuleOp::kMigrate: return "migrate";
    case RuleOp::kRebind: return "rebind";
    case RuleOp::kReroute: return "reroute";
  }
  return "?";
}

struct CompiledAction {
  RuleOp op = RuleOp::kRemove;
  util::Symbol instance;   // target of every op except kAdd
  util::Symbol type;       // kAdd / kReplace
  util::Symbol name;       // kAdd: new instance; kReplace: optional rename
  util::Symbol node;       // kAdd / kMigrate
  util::Symbol port;       // kRebind
  util::Symbol connector;  // kRebind
  util::Symbol replica;    // kReroute
};

struct CompiledRule {
  util::Symbol name;
  CompiledCondition condition;
  std::vector<CompiledAction> actions;
  std::int64_t cooldown_us = 0;
  /// Whole-firing transactional deadline (0 = use the runtime default).
  std::int64_t deadline_us = 0;
  /// Source location of the `when` keyword — the explorer anchors
  /// counterexample diagnostics to the last rule of the firing sequence.
  int line = 0;
  int column = 0;
};

/// Interned predicate-table entry: the explorer evaluates these against
/// every reached configuration without touching the AST or hashing names.
enum class PredicateKind { kExists, kRouted, kRunning, kReplicas };

struct CompiledPredicate {
  PredicateKind kind = PredicateKind::kExists;
  bool negated = false;
  /// kExists/kRunning: instance; kRouted: connector; kReplicas: type.
  util::Symbol subject;
  util::Symbol type;  // kRunning
  AstCompare compare = AstCompare::kGe;  // kReplicas
  int count = 0;                         // kReplicas
};

enum class PathPropertyKind { kAlways, kEventually, kReverts };

constexpr const char* to_string(PathPropertyKind k) {
  switch (k) {
    case PathPropertyKind::kAlways: return "always";
    case PathPropertyKind::kEventually: return "eventually";
    case PathPropertyKind::kReverts: return "reverts";
  }
  return "?";
}

/// One lowered property clause. The enclosing block's name is repeated on
/// each clause so a flat table is all the explorer ever walks.
struct CompiledPathProperty {
  util::Symbol property;  // enclosing `property <name>` block
  PathPropertyKind kind = PathPropertyKind::kAlways;
  CompiledPredicate pred;  // kAlways / kEventually
  util::Symbol rule;       // kReverts
  /// Clause source location, for counterexample diagnostics.
  int line = 0;
  int column = 0;
};

struct CompiledGoal {
  struct Qos {
    util::Symbol connector;
    bool upper = true;
    std::int64_t latency_us = 0;
  };
  struct Replicas {
    util::Symbol type;
    AstCompare compare = AstCompare::kGe;
    int count = 0;
  };
  struct Placement {
    util::Symbol instance;
    util::Symbol node;
  };
  util::Symbol name;
  std::vector<Qos> qos;
  std::vector<Replicas> replicas;
  std::vector<Placement> placements;
};

struct CompiledScenario {
  util::Symbol name;
  std::string description;
  std::vector<util::Symbol> goals;
  std::vector<std::string> faults;  // FaultScenario text lines
  std::vector<std::string> loads;   // scenario::LoadPhase text lines
  std::int64_t duration_us = 0;
};

/// Emitted reconfiguration artifacts: everything a runtime needs to install
/// ADL-declared adaptation behaviour without re-touching the source text.
struct RuleProgram {
  std::vector<CompiledRule> rules;
  std::vector<CompiledGoal> goals;
  std::vector<CompiledScenario> scenarios;
  std::vector<CompiledPathProperty> properties;
  bool empty() const {
    return rules.empty() && goals.empty() && scenarios.empty() &&
           properties.empty();
  }
};

/// Everything `adl::compile()` produces. `config`/`program` are only
/// meaningful when `ok()`.
struct CompilationResult {
  CompiledConfiguration config;
  RuleProgram program;
  Diagnostics diagnostics;
  /// Retained source text, so callers can render caret snippets
  /// (`diagnostics.render(source)`) without re-reading the file.
  std::string source;

  bool ok() const { return diagnostics.ok(); }
};

}  // namespace aars::adl
