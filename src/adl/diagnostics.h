// Structured diagnostics for the ADL compiler.
//
// Every stage of the pipeline (lexer -> parser -> sema -> emit/screen)
// reports findings into one Diagnostics list instead of aborting on the
// first problem.  A Diagnostic carries the source line AND column plus a
// stable kebab-case code, so `aars-lint` can render clickable locations
// with a caret snippet and CI can diff the machine-readable form.
//
// The legacy `adl::parse()` / `adl::validate()` shims flatten the first
// error back into a util::Error, preserving the historical ErrorCode each
// failure class used (kParseError, kAlreadyExists, ...), so callers that
// match on codes keep working.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "adl/ast.h"
#include "util/errors.h"

namespace aars::adl {

enum class DiagSeverity { kWarning, kError };

constexpr const char* to_string(DiagSeverity s) {
  return s == DiagSeverity::kError ? "error" : "warning";
}

struct Diagnostic {
  DiagSeverity severity = DiagSeverity::kError;
  /// Stable kebab-case identifier, e.g. "unknown-metric".
  std::string code;
  std::string message;
  /// 1-based source location; column 0 means "whole line".
  int line = 0;
  int column = 0;
  /// ErrorCode the legacy entrypoints reported for this failure class.
  util::ErrorCode legacy_code = util::ErrorCode::kInvalidArgument;
};

class Diagnostics {
 public:
  void error(SourceLoc loc, std::string code, std::string message,
             util::ErrorCode legacy = util::ErrorCode::kInvalidArgument);
  void warning(SourceLoc loc, std::string code, std::string message);

  bool ok() const { return error_count_ == 0; }
  std::size_t errors() const { return error_count_; }
  std::size_t warnings() const { return items_.size() - error_count_; }
  bool empty() const { return items_.empty(); }
  const std::vector<Diagnostic>& items() const { return items_; }
  void merge(const Diagnostics& other);

  /// First error flattened to the legacy error shape:
  ///   "line L col C: message".
  /// Precondition: !ok().
  util::Error to_error() const;

  /// Human-readable rendering.  When `source` is supplied each diagnostic
  /// is followed by the offending source line and a caret under the
  /// reported column:
  ///   line 4 col 12: error: [unknown-metric] no metric 'flux'
  ///     when flux(jobs) > 5 reconfigure {
  ///          ^
  std::string render(std::string_view source = {}) const;

 private:
  std::vector<Diagnostic> items_;
  std::size_t error_count_ = 0;
};

}  // namespace aars::adl
