#include "fault/policies.h"

#include <memory>

#include "component/message.h"
#include "obs/metrics.h"
#include "util/strings.h"

namespace aars::fault {

using component::Message;
using connector::Interceptor;
using util::Result;
using util::Value;

Interceptor::Verdict RetryInterceptor::before(Message& message,
                                              Result<Value>* /*reply*/) {
  if (message.kind != component::MessageKind::kRequest) {
    return Verdict::kPass;  // one-way events are fire-and-forget
  }
  const std::int64_t attempt =
      message.headers.get_or(component::kHeaderRetryAttempt, 0).as_int();
  if (attempt > 0) {
    ++retries_seen_;
    obs::Registry::global().counter("fault.retries").inc();
  }
  if (!message.headers.contains(component::kHeaderRetryBudget)) {
    message.headers[component::kHeaderRetryBudget] =
        static_cast<std::int64_t>(policy_.max_retries);
    message.headers[component::kHeaderBackoffBase] =
        static_cast<std::int64_t>(policy_.backoff_base);
    message.headers[component::kHeaderBackoffCap] =
        static_cast<std::int64_t>(policy_.backoff_cap);
    if (policy_.failover) {
      message.headers[component::kHeaderFailover] = true;
    }
    if (policy_.timeout > 0) {
      message.headers[component::kHeaderTimeout] =
          static_cast<std::int64_t>(policy_.timeout);
    }
  }
  return Verdict::kPass;
}

void RetryInterceptor::after(const Message& message,
                             Result<Value>& reply) {
  if (reply.ok()) return;
  const std::int64_t budget =
      message.headers.get_or(component::kHeaderRetryBudget, 0).as_int();
  const std::int64_t attempt =
      message.headers.get_or(component::kHeaderRetryAttempt, 0).as_int();
  if (budget > 0 && attempt >= budget) {
    ++budget_exhausted_;
    obs::Registry::global().counter("fault.retry_exhausted").inc();
  }
}

void register_fault_aspects(connector::ConnectorFactory& factory,
                            const RetryPolicy& defaults) {
  factory.add_aspect_provider(
      [defaults](const std::string& aspect)
          -> std::shared_ptr<connector::Interceptor> {
        if (aspect == "retry") {
          return std::make_shared<RetryInterceptor>(defaults);
        }
        if (aspect == "failover") {
          RetryPolicy policy = defaults;
          policy.failover = true;
          return std::make_shared<RetryInterceptor>(policy);
        }
        return nullptr;
      });
}

}  // namespace aars::fault
