#include "fault/injector.h"

#include <algorithm>
#include <utility>

#include "obs/metrics.h"

namespace aars::fault {

using util::Duration;
using util::Error;
using util::ErrorCode;
using util::SimTime;
using util::Status;

namespace {

std::pair<NodeId, NodeId> ordered(NodeId a, NodeId b) {
  return a < b ? std::make_pair(a, b) : std::make_pair(b, a);
}

}  // namespace

FaultInjector::FaultInjector(runtime::Application& app) : app_(app) {}

Status FaultInjector::arm(const FaultScenario& scenario) {
  sim::Network& net = app_.network();
  // Resolve every name first so a bad scenario is rejected atomically.
  struct Armed {
    FaultSpec spec;
    NodeId host;
    NodeId a;
    NodeId b;
  };
  std::vector<Armed> armed;
  armed.reserve(scenario.size());
  for (const FaultSpec& spec : scenario.faults()) {
    Armed entry;
    entry.spec = spec;
    if (spec.kind == FaultKind::kStepFault) {
      // Targets the reconfiguration path, not the topology: nothing to
      // resolve.
      armed.push_back(std::move(entry));
      continue;
    }
    if (spec.kind == FaultKind::kHostCrash) {
      entry.host = net.node_id(spec.host);
      if (!entry.host.valid()) {
        return Error{ErrorCode::kNotFound,
                     "scenario references unknown host '" + spec.host + "'"};
      }
    } else {
      entry.a = net.node_id(spec.link_a);
      entry.b = net.node_id(spec.link_b);
      if (!entry.a.valid() || !entry.b.valid()) {
        return Error{ErrorCode::kNotFound,
                     "scenario references unknown link endpoint in '" +
                         spec.link_a + "-" + spec.link_b + "'"};
      }
      if (!net.has_link(entry.a, entry.b) && !net.has_link(entry.b, entry.a)) {
        return Error{ErrorCode::kNotFound, "scenario references missing link " +
                                               spec.link_a + "-" + spec.link_b};
      }
    }
    armed.push_back(std::move(entry));
  }
  for (const Armed& entry : armed) {
    app_.loop().schedule_at(entry.spec.at, [this, entry] {
      begin(entry.spec, entry.host, entry.a, entry.b);
    });
    app_.loop().schedule_at(entry.spec.ends_at(), [this, entry] {
      end(entry.spec, entry.host, entry.a, entry.b);
    });
  }
  return Status::success();
}

Status FaultInjector::arm_text(const std::string& text) {
  auto scenario = FaultScenario::parse(text);
  if (!scenario.ok()) return scenario.error();
  return arm(scenario.value());
}

Status FaultInjector::crash_host(NodeId host) {
  if (++crash_depth_[host] > 1) return Status::success();
  crashed_.insert(host);
  for (const auto& [from, to] : app_.network().links_of(host)) {
    auto spec = app_.network().remove_link(from, to);
    if (spec.has_value() && severed_.count({from, to}) == 0) {
      severed_[{from, to}] = *spec;
    }
  }
  return Status::success();
}

Status FaultInjector::restore_host(NodeId host) {
  auto depth = crash_depth_.find(host);
  if (depth == crash_depth_.end() || depth->second == 0) {
    return Error{ErrorCode::kInvalidArgument, "host is not crashed"};
  }
  if (--depth->second > 0) return Status::success();
  crashed_.erase(host);
  // Restore saved links touching this host, but only when the far endpoint
  // is itself up and the link is not held down by an active partition.
  for (auto it = severed_.begin(); it != severed_.end();) {
    const auto& [from, to] = it->first;
    if (from != host && to != host) {
      ++it;
      continue;
    }
    const NodeId other = (from == host) ? to : from;
    auto cut = cut_depth_.find(ordered(from, to));
    const bool partitioned = cut != cut_depth_.end() && cut->second > 0;
    if (crashed_.count(other) > 0 || partitioned) {
      ++it;
      continue;
    }
    app_.network().add_link(from, to, it->second);
    it = severed_.erase(it);
  }
  return Status::success();
}

Status FaultInjector::cut_link(NodeId a, NodeId b) {
  if (++cut_depth_[ordered(a, b)] > 1) return Status::success();
  for (const auto& [from, to] :
       {std::make_pair(a, b), std::make_pair(b, a)}) {
    auto spec = app_.network().remove_link(from, to);
    if (spec.has_value() && severed_.count({from, to}) == 0) {
      severed_[{from, to}] = *spec;
    }
  }
  return Status::success();
}

Status FaultInjector::heal_link(NodeId a, NodeId b) {
  auto depth = cut_depth_.find(ordered(a, b));
  if (depth == cut_depth_.end() || depth->second == 0) {
    return Error{ErrorCode::kInvalidArgument, "link is not cut"};
  }
  if (--depth->second > 0) return Status::success();
  for (const auto& key : {std::make_pair(a, b), std::make_pair(b, a)}) {
    auto it = severed_.find(key);
    if (it == severed_.end()) continue;
    // A crashed endpoint keeps the link down until the host restarts.
    if (crashed_.count(key.first) > 0 || crashed_.count(key.second) > 0) {
      continue;
    }
    app_.network().add_link(key.first, key.second, it->second);
    severed_.erase(it);
  }
  return Status::success();
}

Status FaultInjector::degrade_link(NodeId a, NodeId b, Duration extra_latency,
                                   Duration extra_jitter) {
  bool touched = false;
  for (const auto& key : {std::make_pair(a, b), std::make_pair(b, a)}) {
    sim::LinkSpec* spec = app_.network().find_link(key.first, key.second);
    if (spec == nullptr) continue;
    if (pristine_.count(key) == 0) pristine_[key] = *spec;
    spec->latency = pristine_[key].latency + extra_latency;
    spec->jitter = pristine_[key].jitter + extra_jitter;
    touched = true;
  }
  if (!touched) {
    return Error{ErrorCode::kNotFound, "no such link to degrade"};
  }
  ++degrade_depth_[ordered(a, b)];
  return Status::success();
}

Status FaultInjector::restore_link_quality(NodeId a, NodeId b) {
  auto depth = degrade_depth_.find(ordered(a, b));
  if (depth == degrade_depth_.end() || depth->second == 0) {
    return Error{ErrorCode::kInvalidArgument, "link is not degraded"};
  }
  if (--depth->second > 0) return Status::success();
  for (const auto& key : {std::make_pair(a, b), std::make_pair(b, a)}) {
    auto saved = pristine_.find(key);
    if (saved == pristine_.end()) continue;
    sim::LinkSpec* spec = app_.network().find_link(key.first, key.second);
    if (spec != nullptr) {
      spec->latency = saved->second.latency;
      spec->jitter = saved->second.jitter;
    }
  }
  return Status::success();
}

Status FaultInjector::set_link_loss(NodeId a, NodeId b, double probability) {
  bool touched = false;
  for (const auto& key : {std::make_pair(a, b), std::make_pair(b, a)}) {
    sim::LinkSpec* spec = app_.network().find_link(key.first, key.second);
    if (spec == nullptr) continue;
    if (pristine_.count(key) == 0) pristine_[key] = *spec;
    spec->loss_probability = probability;
    touched = true;
  }
  if (!touched) {
    return Error{ErrorCode::kNotFound, "no such link for loss burst"};
  }
  ++loss_depth_[ordered(a, b)];
  return Status::success();
}

Status FaultInjector::restore_link_loss(NodeId a, NodeId b) {
  auto depth = loss_depth_.find(ordered(a, b));
  if (depth == loss_depth_.end() || depth->second == 0) {
    return Error{ErrorCode::kInvalidArgument, "link has no loss burst"};
  }
  if (--depth->second > 0) return Status::success();
  for (const auto& key : {std::make_pair(a, b), std::make_pair(b, a)}) {
    auto saved = pristine_.find(key);
    if (saved == pristine_.end()) continue;
    sim::LinkSpec* spec = app_.network().find_link(key.first, key.second);
    if (spec != nullptr) {
      spec->loss_probability = saved->second.loss_probability;
    }
  }
  return Status::success();
}

std::vector<NodeId> FaultInjector::up_hosts() const {
  std::vector<NodeId> out;
  for (NodeId id : app_.network().node_ids()) {
    if (crashed_.count(id) == 0) out.push_back(id);
  }
  return out;
}

std::vector<NodeId> FaultInjector::down_hosts() const {
  return std::vector<NodeId>(crashed_.begin(), crashed_.end());
}

bool FaultInjector::should_fail_step(std::size_t step, std::size_t n) const {
  for (const auto& [k, of] : step_faults_) {
    if (static_cast<std::size_t>(k) != step) continue;
    if (of > 0 && static_cast<std::size_t>(of) != n) continue;
    return true;
  }
  return false;
}

std::uint64_t FaultInjector::dropped_during_faults() const {
  if (active_ > 0) {
    return dropped_during_faults_ +
           (app_.messages_dropped() - drops_at_activation_);
  }
  return dropped_during_faults_;
}

void FaultInjector::begin(const FaultSpec& spec, NodeId host, NodeId a,
                          NodeId b) {
  switch (spec.kind) {
    case FaultKind::kHostCrash: (void)crash_host(host); break;
    case FaultKind::kLinkPartition: (void)cut_link(a, b); break;
    case FaultKind::kLinkDegrade:
      (void)degrade_link(a, b, spec.extra_latency, spec.extra_jitter);
      break;
    case FaultKind::kLinkLoss:
      (void)set_link_loss(a, b, spec.loss_probability);
      break;
    case FaultKind::kStepFault:
      step_faults_.emplace_back(spec.step, spec.of);
      break;
  }
  note_fault_started();
  publish(spec, FaultEvent::Phase::kBegin, host, a, b);
}

void FaultInjector::end(const FaultSpec& spec, NodeId host, NodeId a,
                        NodeId b) {
  switch (spec.kind) {
    case FaultKind::kHostCrash: (void)restore_host(host); break;
    case FaultKind::kLinkPartition: (void)heal_link(a, b); break;
    case FaultKind::kLinkDegrade: (void)restore_link_quality(a, b); break;
    case FaultKind::kLinkLoss: (void)restore_link_loss(a, b); break;
    case FaultKind::kStepFault: {
      const auto it = std::find(step_faults_.begin(), step_faults_.end(),
                                std::make_pair(spec.step, spec.of));
      if (it != step_faults_.end()) step_faults_.erase(it);
      break;
    }
  }
  note_fault_ended();
  publish(spec, FaultEvent::Phase::kEnd, host, a, b);
}

void FaultInjector::publish(const FaultSpec& spec, FaultEvent::Phase phase,
                            NodeId host, NodeId a, NodeId b) {
  ++injected_;
  FaultEvent event;
  event.kind = spec.kind;
  event.phase = phase;
  event.at = app_.loop().now();
  event.began_at = spec.at;
  event.host = host;
  event.link_a = a;
  event.link_b = b;
  event.subject = spec.subject();

  obs::Registry& reg = obs::Registry::global();
  reg.counter("fault.injected", {{"kind", to_string(spec.kind)}}).inc();
  reg.gauge("fault.active").set(static_cast<double>(active_));
  reg.trace(event.at, obs::TraceKind::kFault, event.subject,
            std::string(to_string(spec.kind)) +
                (phase == FaultEvent::Phase::kBegin ? " begin" : " end"));

  for (const FaultListener& listener : listeners_) listener(event);
}

void FaultInjector::note_fault_started() {
  if (active_++ == 0) drops_at_activation_ = app_.messages_dropped();
}

void FaultInjector::note_fault_ended() {
  if (active_ == 0) return;
  if (--active_ == 0) {
    const std::uint64_t delta =
        app_.messages_dropped() - drops_at_activation_;
    dropped_during_faults_ += delta;
    if (delta > 0) {
      obs::Registry::global()
          .counter("fault.dropped_during_fault")
          .inc(delta);
    }
  }
}

}  // namespace aars::fault
