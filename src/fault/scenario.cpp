#include "fault/scenario.h"

#include <algorithm>
#include <cctype>
#include <cstdlib>
#include <sstream>

#include "util/strings.h"

namespace aars::fault {

using util::Duration;
using util::Error;
using util::ErrorCode;
using util::Result;
using util::SimTime;

std::string FaultSpec::subject() const {
  if (kind == FaultKind::kHostCrash) return "host " + host;
  if (kind == FaultKind::kStepFault) {
    return "step " + std::to_string(step) +
           (of > 0 ? "/" + std::to_string(of) : "");
  }
  return "link " + link_a + "-" + link_b;
}

FaultScenario& FaultScenario::crash(const std::string& host, SimTime at,
                                    Duration down_for) {
  FaultSpec spec;
  spec.kind = FaultKind::kHostCrash;
  spec.at = at;
  spec.duration = down_for;
  spec.host = host;
  faults_.push_back(std::move(spec));
  return *this;
}

FaultScenario& FaultScenario::partition(const std::string& a,
                                        const std::string& b, SimTime at,
                                        Duration down_for) {
  FaultSpec spec;
  spec.kind = FaultKind::kLinkPartition;
  spec.at = at;
  spec.duration = down_for;
  spec.link_a = a;
  spec.link_b = b;
  faults_.push_back(std::move(spec));
  return *this;
}

FaultScenario& FaultScenario::degrade(const std::string& a,
                                      const std::string& b, SimTime at,
                                      Duration window, Duration extra_latency,
                                      Duration extra_jitter) {
  FaultSpec spec;
  spec.kind = FaultKind::kLinkDegrade;
  spec.at = at;
  spec.duration = window;
  spec.link_a = a;
  spec.link_b = b;
  spec.extra_latency = extra_latency;
  spec.extra_jitter = extra_jitter;
  faults_.push_back(std::move(spec));
  return *this;
}

FaultScenario& FaultScenario::loss(const std::string& a, const std::string& b,
                                   SimTime at, Duration window, double p) {
  FaultSpec spec;
  spec.kind = FaultKind::kLinkLoss;
  spec.at = at;
  spec.duration = window;
  spec.link_a = a;
  spec.link_b = b;
  spec.loss_probability = p;
  faults_.push_back(std::move(spec));
  return *this;
}

FaultScenario& FaultScenario::fail_step(int step, SimTime at, Duration window,
                                        int of) {
  FaultSpec spec;
  spec.kind = FaultKind::kStepFault;
  spec.at = at;
  spec.duration = window;
  spec.step = step;
  spec.of = of;
  faults_.push_back(std::move(spec));
  return *this;
}

SimTime FaultScenario::horizon() const {
  SimTime horizon = 0;
  for (const FaultSpec& f : faults_) horizon = std::max(horizon, f.ends_at());
  return horizon;
}

Result<Duration> parse_duration(const std::string& token) {
  if (token.empty()) {
    return Error{ErrorCode::kInvalidArgument, "empty duration"};
  }
  std::size_t digits = 0;
  while (digits < token.size() &&
         (std::isdigit(static_cast<unsigned char>(token[digits])) ||
          token[digits] == '.')) {
    ++digits;
  }
  if (digits == 0) {
    return Error{ErrorCode::kInvalidArgument,
                 "duration must start with a number: '" + token + "'"};
  }
  const double magnitude = std::atof(token.substr(0, digits).c_str());
  const std::string unit = token.substr(digits);
  double scale = 0.0;
  if (unit == "us") {
    scale = 1.0;
  } else if (unit == "ms") {
    scale = 1000.0;
  } else if (unit == "s") {
    scale = 1000000.0;
  } else {
    return Error{ErrorCode::kInvalidArgument,
                 "unknown duration unit '" + unit + "' (use us/ms/s)"};
  }
  return static_cast<Duration>(magnitude * scale);
}

namespace {

// Splits "key=value"; returns false when there is no '='.
bool split_kv(const std::string& token, std::string* key, std::string* value) {
  const std::size_t eq = token.find('=');
  if (eq == std::string::npos) return false;
  *key = token.substr(0, eq);
  *value = token.substr(eq + 1);
  return !key->empty() && !value->empty();
}

// Splits "a-b" link endpoints.
bool split_link(const std::string& value, std::string* a, std::string* b) {
  const std::size_t dash = value.find('-');
  if (dash == std::string::npos) return false;
  *a = value.substr(0, dash);
  *b = value.substr(dash + 1);
  return !a->empty() && !b->empty();
}

Error line_error(std::size_t line_no, const std::string& what) {
  return Error{ErrorCode::kParseError,
               "scenario line " + std::to_string(line_no) + ": " + what};
}

}  // namespace

Result<FaultScenario> FaultScenario::parse(const std::string& text) {
  FaultScenario scenario;
  std::size_t line_no = 0;
  std::istringstream in(text);
  std::string raw_line;
  while (std::getline(in, raw_line)) {
    ++line_no;
    std::string line(util::trim(raw_line));
    const std::size_t hash = line.find('#');
    if (hash != std::string::npos) line = std::string(util::trim(line.substr(0, hash)));
    if (line.empty()) continue;

    std::vector<std::string> tokens;
    std::istringstream splitter(line);
    std::string token;
    while (splitter >> token) tokens.push_back(token);

    if (tokens.size() == 2 && tokens[0] == "scenario") {
      scenario.set_name(tokens[1]);
      continue;
    }
    if (tokens.size() < 3 || tokens[0] != "at") {
      return line_error(line_no, "expected 'at <time> <kind> ...'");
    }
    auto at = parse_duration(tokens[1]);
    if (!at.ok()) return line_error(line_no, at.error().message());

    FaultSpec spec;
    spec.at = at.value();
    const std::string& kind = tokens[2];
    if (kind == "crash") {
      spec.kind = FaultKind::kHostCrash;
    } else if (kind == "partition") {
      spec.kind = FaultKind::kLinkPartition;
    } else if (kind == "degrade") {
      spec.kind = FaultKind::kLinkDegrade;
    } else if (kind == "loss") {
      spec.kind = FaultKind::kLinkLoss;
    } else if (kind == "fail-step") {
      spec.kind = FaultKind::kStepFault;
    } else {
      return line_error(line_no, "unknown fault kind '" + kind + "'");
    }

    bool have_duration = false;
    for (std::size_t i = 3; i < tokens.size(); ++i) {
      if (tokens[i] == "for") {
        if (i + 1 >= tokens.size()) {
          return line_error(line_no, "'for' needs a duration");
        }
        auto dur = parse_duration(tokens[++i]);
        if (!dur.ok()) return line_error(line_no, dur.error().message());
        spec.duration = dur.value();
        have_duration = true;
        continue;
      }
      std::string key;
      std::string value;
      if (!split_kv(tokens[i], &key, &value)) {
        return line_error(line_no, "expected key=value, got '" + tokens[i] + "'");
      }
      if (key == "host") {
        spec.host = value;
      } else if (key == "link") {
        if (!split_link(value, &spec.link_a, &spec.link_b)) {
          return line_error(line_no, "link wants 'a-b', got '" + value + "'");
        }
      } else if (key == "latency") {
        auto d = parse_duration(value);
        if (!d.ok()) return line_error(line_no, d.error().message());
        spec.extra_latency = d.value();
      } else if (key == "jitter") {
        auto d = parse_duration(value);
        if (!d.ok()) return line_error(line_no, d.error().message());
        spec.extra_jitter = d.value();
      } else if (key == "p") {
        spec.loss_probability = std::atof(value.c_str());
        if (spec.loss_probability < 0.0 || spec.loss_probability > 1.0) {
          return line_error(line_no, "loss p must be in [0,1]");
        }
      } else if (key == "step") {
        spec.step = std::atoi(value.c_str());
        if (spec.step < 1) {
          return line_error(line_no, "fail-step wants step=<k> with k >= 1");
        }
      } else if (key == "of") {
        spec.of = std::atoi(value.c_str());
        if (spec.of < 1) {
          return line_error(line_no, "fail-step of=<n> wants n >= 1");
        }
      } else {
        return line_error(line_no, "unknown key '" + key + "'");
      }
    }

    if (!have_duration) {
      return line_error(line_no, "missing 'for <duration>'");
    }
    if (spec.kind == FaultKind::kHostCrash && spec.host.empty()) {
      return line_error(line_no, "crash wants host=<name>");
    }
    if (spec.kind == FaultKind::kStepFault) {
      if (spec.step < 1) {
        return line_error(line_no, "fail-step wants step=<k>");
      }
      if (spec.of > 0 && spec.step > spec.of) {
        return line_error(line_no, "fail-step step=<k> must be <= of=<n>");
      }
    }
    if (spec.kind != FaultKind::kHostCrash &&
        spec.kind != FaultKind::kStepFault && spec.link_a.empty()) {
      return line_error(line_no, "link fault wants link=a-b");
    }
    if (spec.kind == FaultKind::kLinkLoss && spec.loss_probability <= 0.0) {
      return line_error(line_no, "loss wants p=<probability>");
    }
    scenario.faults_.push_back(std::move(spec));
  }
  return scenario;
}

namespace {

std::string render_duration(Duration d) {
  if (d % 1000000 == 0) return std::to_string(d / 1000000) + "s";
  if (d % 1000 == 0) return std::to_string(d / 1000) + "ms";
  return std::to_string(d) + "us";
}

}  // namespace

std::string FaultScenario::to_text() const {
  std::ostringstream out;
  out << "scenario " << name_ << "\n";
  for (const FaultSpec& f : faults_) {
    out << "at " << render_duration(f.at) << " " << to_string(f.kind);
    if (f.kind == FaultKind::kHostCrash) {
      out << " host=" << f.host;
    } else if (f.kind == FaultKind::kStepFault) {
      out << " step=" << f.step;
      if (f.of > 0) out << " of=" << f.of;
    } else {
      out << " link=" << f.link_a << "-" << f.link_b;
    }
    if (f.kind == FaultKind::kLinkDegrade) {
      out << " latency=" << render_duration(f.extra_latency);
      if (f.extra_jitter > 0) out << " jitter=" << render_duration(f.extra_jitter);
    }
    if (f.kind == FaultKind::kLinkLoss) {
      out << " p=" << f.loss_probability;
    }
    out << " for " << render_duration(f.duration) << "\n";
  }
  return out.str();
}

}  // namespace aars::fault
