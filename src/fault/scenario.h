// Fault scenarios: deterministic, seedable failure schedules.
//
// The paper's prospective vision calls for systems that "react to changes in
// their environment" — component failure, degraded links, partitions — not
// just load.  A FaultScenario is a declarative schedule of such failures on
// the simulated timeline: built programmatically (fluent builder) or parsed
// from a small line-oriented text format so benches and tests can version
// fault storms as data.
//
// Scenario text format, one fault per line ('#' starts a comment):
//
//   at 500ms crash host=b for 300ms
//   at 1s    partition link=a-b for 200ms
//   at 2s    degrade link=a-b latency=5ms jitter=1ms for 1s
//   at 3s    loss link=a-b p=0.3 for 250ms
//   at 4s    fail-step step=2 of=3 for 100ms
//
// Times accept `us`, `ms` and `s` suffixes.  Host and link endpoints are
// node *names*, resolved against the network when the scenario is armed.
//
// `fail-step` targets the reconfiguration path itself: while the window is
// open, transactional enactment (reconfig::Txn) fails step k of an n-step
// plan deterministically — `of=<n>` restricts the directive to plans of
// exactly n steps and may be omitted to match any plan length.  It touches
// no links or hosts; it exists to prove that a mid-plan failure rolls the
// configuration back cleanly.
#pragma once

#include <string>
#include <vector>

#include "util/errors.h"
#include "util/time.h"

namespace aars::fault {

/// The kinds of failure the injector can schedule.
enum class FaultKind {
  kHostCrash,      // all links touching the host are severed, then restored
  kLinkPartition,  // a duplex link pair is severed, then healed
  kLinkDegrade,    // extra latency + jitter on a duplex link for a window
  kLinkLoss,       // elevated loss probability on a duplex link for a window
  kStepFault,      // reconfiguration txn step k of n fails inside the window
};

constexpr const char* to_string(FaultKind k) {
  switch (k) {
    case FaultKind::kHostCrash: return "crash";
    case FaultKind::kLinkPartition: return "partition";
    case FaultKind::kLinkDegrade: return "degrade";
    case FaultKind::kLinkLoss: return "loss";
    case FaultKind::kStepFault: return "fail-step";
  }
  return "?";
}

/// One scheduled fault. Which fields are meaningful depends on `kind`.
struct FaultSpec {
  FaultKind kind = FaultKind::kHostCrash;
  util::SimTime at = 0;        // when the fault begins
  util::Duration duration = 0; // how long until it is repaired/healed

  std::string host;            // kHostCrash: the crashed node
  std::string link_a;          // link faults: duplex endpoints
  std::string link_b;

  util::Duration extra_latency = 0;  // kLinkDegrade
  util::Duration extra_jitter = 0;   // kLinkDegrade
  double loss_probability = 0.0;     // kLinkLoss

  int step = 0;  // kStepFault: which step (1-based) of a plan fails
  int of = 0;    // kStepFault: restrict to n-step plans (0 = any length)

  /// When the fault ends (heal/restart instant).
  util::SimTime ends_at() const { return at + duration; }
  /// Human-readable subject ("host b" / "link a-b") for traces and labels.
  std::string subject() const;
};

/// An ordered schedule of faults. The builder methods return *this so storms
/// compose fluently; `parse` accepts the text format documented above.
class FaultScenario {
 public:
  FaultScenario() = default;
  explicit FaultScenario(std::string name) : name_(std::move(name)) {}

  /// Sever every link touching `host` at `at`; restore them `down_for`
  /// later.
  FaultScenario& crash(const std::string& host, util::SimTime at,
                       util::Duration down_for);
  /// Sever the duplex link a<->b at `at`; heal it `down_for` later.
  FaultScenario& partition(const std::string& a, const std::string& b,
                           util::SimTime at, util::Duration down_for);
  /// Add latency/jitter to the duplex link a<->b for `window`.
  FaultScenario& degrade(const std::string& a, const std::string& b,
                         util::SimTime at, util::Duration window,
                         util::Duration extra_latency,
                         util::Duration extra_jitter = 0);
  /// Raise loss probability on the duplex link a<->b to `p` for `window`
  /// (a correlated message-loss burst).
  FaultScenario& loss(const std::string& a, const std::string& b,
                      util::SimTime at, util::Duration window, double p);
  /// While the window is open, step `step` (1-based) of any transactional
  /// reconfiguration fails deterministically; `of` restricts the directive
  /// to plans of exactly `of` steps (0 = any length).
  FaultScenario& fail_step(int step, util::SimTime at, util::Duration window,
                           int of = 0);

  const std::vector<FaultSpec>& faults() const { return faults_; }
  bool empty() const { return faults_.empty(); }
  std::size_t size() const { return faults_.size(); }
  const std::string& name() const { return name_; }
  FaultScenario& set_name(std::string name) {
    name_ = std::move(name);
    return *this;
  }

  /// Instant after which every fault has healed.
  util::SimTime horizon() const;

  /// Parses the line-oriented scenario format. Returns an error naming the
  /// offending line on malformed input.
  static util::Result<FaultScenario> parse(const std::string& text);

  /// Renders the scenario back into the parseable text format.
  std::string to_text() const;

 private:
  std::string name_ = "scenario";
  std::vector<FaultSpec> faults_;
};

/// Parses "250ms" / "3s" / "1500us" into a Duration. Exposed for tests.
util::Result<util::Duration> parse_duration(const std::string& token);

}  // namespace aars::fault
