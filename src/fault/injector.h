// Deterministic fault injector.
//
// Arms a FaultScenario on the simulation event loop: at each fault's start
// instant it mutates the simulated network (severing links, inflating
// latency/jitter, raising loss probability) and at the end instant it
// restores the saved state.  Every transition is published to registered
// listeners (RAML subscribes to drive repairs), counted in the obs registry
// and recorded on the trace timeline, so experiments can measure MTTR and
// dropped-during-partition directly from observability data.
//
// Determinism: the injector introduces no randomness of its own — the same
// scenario armed on the same world yields the same timeline; stochastic
// storms are built by generating the *scenario* from a seeded Rng.
#pragma once

#include <functional>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "fault/scenario.h"
#include "runtime/application.h"
#include "util/errors.h"
#include "util/ids.h"

namespace aars::fault {

using util::NodeId;

/// A fault transition, published to listeners at begin and end instants.
struct FaultEvent {
  enum class Phase { kBegin, kEnd };
  FaultKind kind = FaultKind::kHostCrash;
  Phase phase = Phase::kBegin;
  util::SimTime at = 0;        // when this transition happened
  util::SimTime began_at = 0;  // when the fault began (for MTTR accounting)
  NodeId host;                 // kHostCrash
  NodeId link_a;               // link faults
  NodeId link_b;
  std::string subject;         // "host b" / "link a-b"
};

using FaultListener = std::function<void(const FaultEvent&)>;

/// Schedules scenario faults on the loop and applies them to the network.
class FaultInjector {
 public:
  explicit FaultInjector(runtime::Application& app);

  /// Resolves host names and schedules every fault in `scenario`. Fails
  /// without side effects when a name does not resolve or a link fault
  /// references a missing link.
  util::Status arm(const FaultScenario& scenario);

  /// Parses `text` and arms the result.
  util::Status arm_text(const std::string& text);

  // --- imperative fault control (used by arm and directly by tests) --------
  util::Status crash_host(NodeId host);
  util::Status restore_host(NodeId host);
  util::Status cut_link(NodeId a, NodeId b);
  util::Status heal_link(NodeId a, NodeId b);
  util::Status degrade_link(NodeId a, NodeId b, util::Duration extra_latency,
                            util::Duration extra_jitter);
  util::Status restore_link_quality(NodeId a, NodeId b);
  util::Status set_link_loss(NodeId a, NodeId b, double probability);
  util::Status restore_link_loss(NodeId a, NodeId b);

  // --- health view ---------------------------------------------------------
  bool host_up(NodeId host) const { return crashed_.count(host) == 0; }
  std::vector<NodeId> up_hosts() const;
  std::vector<NodeId> down_hosts() const;
  /// Number of currently-active faults (begun, not yet ended).
  std::size_t active_faults() const { return active_; }
  /// True when an open `fail-step` window targets step `step` (1-based) of
  /// an `n`-step plan. Consulted by reconfig::Txn before each step; the
  /// directive is deterministic — no randomness, no network mutation.
  bool should_fail_step(std::size_t step, std::size_t n) const;
  /// Total fault transitions applied so far.
  std::uint64_t injected() const { return injected_; }
  /// Messages the network dropped while at least one fault was active.
  std::uint64_t dropped_during_faults() const;

  void on_fault(FaultListener listener) {
    listeners_.push_back(std::move(listener));
  }

  runtime::Application& app() { return app_; }

 private:
  void begin(const FaultSpec& spec, NodeId host, NodeId a, NodeId b);
  void end(const FaultSpec& spec, NodeId host, NodeId a, NodeId b);
  void publish(const FaultSpec& spec, FaultEvent::Phase phase, NodeId host,
               NodeId a, NodeId b);
  void note_fault_started();
  void note_fault_ended();

  using LinkKey = std::pair<NodeId, NodeId>;

  runtime::Application& app_;
  // Saved state for restoration, keyed by the directed link pair.
  std::map<LinkKey, sim::LinkSpec> severed_;
  std::map<LinkKey, sim::LinkSpec> pristine_;
  // Overlap guards: apply on 0 -> 1, restore on 1 -> 0.
  std::map<NodeId, int> crash_depth_;
  std::map<LinkKey, int> cut_depth_;
  std::map<LinkKey, int> degrade_depth_;
  std::map<LinkKey, int> loss_depth_;
  std::set<NodeId> crashed_;
  /// Open fail-step windows: (step, of) pairs, one entry per active window
  /// (duplicates allowed — overlap is begin/end counted by erasing one
  /// matching entry at end).
  std::vector<std::pair<int, int>> step_faults_;
  std::vector<FaultListener> listeners_;
  std::size_t active_ = 0;
  std::uint64_t injected_ = 0;
  // Drop accounting: messages_dropped() watermark when faults became active.
  std::uint64_t drops_at_activation_ = 0;
  std::uint64_t dropped_during_faults_ = 0;
};

}  // namespace aars::fault
