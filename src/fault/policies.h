// Connector fault-handling policies, expressed as interceptors.
//
// "Connectors are first-class" (§2): resilience is a property of the glue,
// not of components.  These interceptors reuse the run_before/run_after
// machinery — before() stamps the well-known retry/timeout/failover headers
// on outbound requests, the Application relay honours them (exponential
// backoff re-relays, deadline races, provider avoidance on failover) and
// after() observes the final reply to account exhausted budgets.
//
// Stacking rules inherited from PR 1's partial-chain unwinding: an earlier
// interceptor returning kBlock stops the chain before these ever stamp a
// header (blocked calls are never retried), and a kRejected reply is never
// considered retryable.
#pragma once

#include <cstdint>

#include "connector/connector.h"
#include "connector/factory.h"
#include "util/time.h"

namespace aars::fault {

/// Knobs for RetryInterceptor.
struct RetryPolicy {
  /// Retries after the first attempt (3 => up to 4 relays total).
  int max_retries = 3;
  util::Duration backoff_base = 1000;    // first backoff, microseconds
  util::Duration backoff_cap = 100000;   // backoff ceiling
  /// Route retries away from the provider that failed (needs replicas).
  bool failover = false;
  /// Whole-call deadline including retries; 0 disables the deadline.
  util::Duration timeout = 0;
};

/// Stamps retry/backoff/failover/timeout headers on outbound requests and
/// counts retry traffic on the reply path.
class RetryInterceptor : public connector::Interceptor {
 public:
  explicit RetryInterceptor(RetryPolicy policy) : policy_(policy) {}
  RetryInterceptor() : RetryInterceptor(RetryPolicy{}) {}

  std::string name() const override { return "retry"; }
  Verdict before(component::Message& message,
                 util::Result<util::Value>* reply) override;
  void after(const component::Message& message,
             util::Result<util::Value>& reply) override;

  const RetryPolicy& policy() const { return policy_; }
  /// Relays observed carrying a retry attempt (> 0).
  std::uint64_t retries_seen() const { return retries_seen_; }
  /// Replies that failed with the budget fully spent.
  std::uint64_t budget_exhausted() const { return budget_exhausted_; }

 private:
  RetryPolicy policy_;
  std::uint64_t retries_seen_ = 0;
  std::uint64_t budget_exhausted_ = 0;
};

/// Registers the "retry", "failover" and "timeout(<us>)"-style aspects with
/// a connector factory so ADL-declared connectors can opt in by name.
void register_fault_aspects(connector::ConnectorFactory& factory,
                            const RetryPolicy& defaults = {});

}  // namespace aars::fault
