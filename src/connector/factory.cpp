#include "connector/factory.h"

namespace aars::connector {

using util::Error;
using util::ErrorCode;
using util::Result;
using util::Status;

void ConnectorFactory::add_aspect_provider(AspectProvider provider) {
  util::require(static_cast<bool>(provider), "aspect provider required");
  providers_.push_back(std::move(provider));
}

Status ConnectorFactory::validate_spec(const ConnectorSpec& spec) const {
  if (spec.name.empty()) {
    return Error{ErrorCode::kInvalidArgument, "connector spec needs a name"};
  }
  if (spec.queue_capacity == 0 && spec.delivery == DeliveryMode::kQueued) {
    return Error{ErrorCode::kInvalidArgument,
                 spec.name + ": queued connector needs capacity > 0"};
  }
  if (spec.caller_role && spec.provider_role) {
    const lts::CompatibilityReport report =
        lts::check_compatibility(*spec.caller_role, *spec.provider_role);
    if (!report.compatible) {
      return Error{ErrorCode::kIncompatible,
                   spec.name + ": protocol roles incompatible: " +
                       report.diagnosis};
    }
  }
  return Status::success();
}

std::shared_ptr<Interceptor> ConnectorFactory::resolve(
    const std::string& aspect) const {
  // Later providers win: scan in reverse registration order.
  for (auto it = providers_.rbegin(); it != providers_.rend(); ++it) {
    if (std::shared_ptr<Interceptor> interceptor = (*it)(aspect)) {
      return interceptor;
    }
  }
  return nullptr;
}

Result<std::unique_ptr<Connector>> ConnectorFactory::create(
    ConnectorSpec spec, const std::vector<std::string>& aspects) {
  if (Status s = validate_spec(spec); !s.ok()) return s.error();
  auto connector = std::make_unique<Connector>(ids_.next(), std::move(spec));
  int priority = 0;
  for (const std::string& aspect : aspects) {
    std::shared_ptr<Interceptor> interceptor = resolve(aspect);
    if (interceptor == nullptr) {
      return Error{ErrorCode::kNotFound,
                   connector->name() + ": unknown aspect '" + aspect + "'"};
    }
    if (Status s = connector->attach_interceptor(std::move(interceptor),
                                                 priority++);
        !s.ok()) {
      return s.error();
    }
  }
  ++created_;
  return connector;
}

}  // namespace aars::connector
