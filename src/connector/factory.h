// Connector factory.
//
// "A connector-factory may be used to generate connectors according to the
// description of elementary services and aspects that are selected for a
// specific collaboration" (§3).  The factory builds a Connector from a spec
// plus a list of aspect names; aspects resolve to interceptors through a
// pluggable AspectProvider, so the adaptation layer can contribute filter
// and aspect families without a dependency cycle.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "connector/connector.h"
#include "lts/lts.h"
#include "util/errors.h"
#include "util/ids.h"

namespace aars::connector {

/// Builds an interceptor for a named aspect, or nullptr when unknown.
using AspectProvider =
    std::function<std::shared_ptr<Interceptor>(const std::string&)>;

class ConnectorFactory {
 public:
  /// Registers an aspect family provider. Later providers win on conflicts.
  void add_aspect_provider(AspectProvider provider);

  /// Checks the two protocol roles of a spec for compatibility (when both
  /// are present) before any connector with that spec is generated.
  util::Status validate_spec(const ConnectorSpec& spec) const;

  /// Generates a connector: validates the spec, then attaches the selected
  /// aspects in order (priority = list index).
  util::Result<std::unique_ptr<Connector>> create(
      ConnectorSpec spec, const std::vector<std::string>& aspects = {});

  std::uint64_t created() const { return created_; }

 private:
  std::shared_ptr<Interceptor> resolve(const std::string& aspect) const;

  util::IdGenerator<util::ConnectorId> ids_;
  std::vector<AspectProvider> providers_;
  std::uint64_t created_ = 0;
};

}  // namespace aars::connector
