// First-class connectors.
//
// "Connectors are abstractions for component interactions ... a connector is
// a light-weight component which functions as a glue of components and
// induces a low overload" (§3).  A Connector routes messages from callers to
// serving components, hosts an ordered chain of interceptors (the attachment
// point for filters, aspects, injectors and middleware services), and can
// carry an LTS protocol that a monitor checks at run time.
//
// Connectors are deliberately *passive*: timing (queueing, network delay) is
// applied by the runtime so that connectors stay interchangeable.
#pragma once

#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "component/message.h"
#include "lts/lts.h"
#include "obs/metrics.h"
#include "util/errors.h"
#include "util/ids.h"
#include "util/value.h"

namespace aars::connector {

using component::Message;
using util::ComponentId;
using util::ConnectorId;
using util::Result;
using util::Status;
using util::Value;

/// How a connector picks the serving component for a request.
enum class RoutingPolicy {
  kDirect,        // single provider
  kRoundRobin,    // rotate among providers
  kBroadcast,     // all providers (events only)
  kLeastBacklog,  // provider whose node has the smallest backlog
};

/// When the runtime delivers a relayed message.
enum class DeliveryMode {
  kSync,    // caller blocks; request/response in one activity
  kQueued,  // enqueued, delivered asynchronously by the event loop
};

constexpr const char* to_string(RoutingPolicy p) {
  switch (p) {
    case RoutingPolicy::kDirect: return "direct";
    case RoutingPolicy::kRoundRobin: return "round_robin";
    case RoutingPolicy::kBroadcast: return "broadcast";
    case RoutingPolicy::kLeastBacklog: return "least_backlog";
  }
  return "?";
}

/// Message interception point.  Filters, runtime aspects, injectors and
/// middleware services all plug in through this interface (adapt/ provides
/// the concrete families).
class Interceptor {
 public:
  virtual ~Interceptor() = default;

  enum class Verdict {
    kPass,     // continue down the chain
    kBlock,    // reject the message (reply_out holds the error)
    kHandled,  // interceptor produced the reply; skip the provider
  };

  /// Runs on the request path; may mutate the message.
  virtual Verdict before(Message& request, Result<Value>* reply_out) = 0;
  /// Runs on the reply path (reverse order); may mutate the reply.
  virtual void after(const Message& request, Result<Value>& reply) = 0;
  /// Identifying name for attach/detach and introspection.
  virtual std::string name() const = 0;
};

/// Connector construction parameters.
struct ConnectorSpec {
  std::string name;
  RoutingPolicy routing = RoutingPolicy::kDirect;
  DeliveryMode delivery = DeliveryMode::kSync;
  std::size_t queue_capacity = 1024;  // bound for kQueued delivery
  /// Optional protocol roles for conformance monitoring.
  std::optional<lts::Lts> caller_role;
  std::optional<lts::Lts> provider_role;
};

/// Queries the runtime for a provider's current backlog (microseconds).
using LoadProbe = std::function<std::int64_t(ComponentId)>;

/// A connector instance.
class Connector {
 public:
  Connector(ConnectorId id, ConnectorSpec spec);

  ConnectorId id() const { return id_; }
  const std::string& name() const { return spec_.name; }
  const ConnectorSpec& spec() const { return spec_; }
  RoutingPolicy routing() const { return spec_.routing; }
  DeliveryMode delivery() const { return spec_.delivery; }

  // --- participants ---------------------------------------------------------
  Status add_provider(ComponentId provider);
  Status remove_provider(ComponentId provider);
  const std::vector<ComponentId>& providers() const { return providers_; }
  bool has_provider(ComponentId provider) const;

  // --- routing ----------------------------------------------------------------
  /// Picks the target for a non-broadcast message.
  Result<ComponentId> select_target(const Message& message,
                                    const LoadProbe& probe);
  /// All targets for a broadcast.
  const std::vector<ComponentId>& broadcast_targets() const {
    return providers_;
  }

  // --- interception -----------------------------------------------------------
  /// Attaches an interceptor; lower `priority` runs earlier on the request
  /// path. Names must be unique per connector.
  Status attach_interceptor(std::shared_ptr<Interceptor> interceptor,
                            int priority = 0);
  Status detach_interceptor(const std::string& name);
  std::vector<std::string> interceptor_names() const;
  std::size_t interceptor_count() const { return interceptors_.size(); }

  /// Passed to run_after when every interceptor of the current chain saw
  /// the request (the kPass case).
  static constexpr std::size_t kAllInterceptors = ~std::size_t{0};

  /// Runs the request path. Returns kPass/kBlock/kHandled like a single
  /// interceptor; on kBlock/kHandled `reply_out` carries the outcome.
  /// When `seen_out` is non-null it receives the number of interceptors
  /// whose before() ran (including the one that stopped the chain) — pass
  /// it to run_after so only that prefix unwinds.
  Interceptor::Verdict run_before(Message& request, Result<Value>* reply_out,
                                  std::size_t* seen_out = nullptr);
  /// Runs the reply path in reverse order over the first `seen`
  /// interceptors — the ones that saw the request. Defaults to the whole
  /// chain (correct for kPass flows).
  void run_after(const Message& request, Result<Value>& reply,
                 std::size_t seen = kAllInterceptors);

  // --- shard placement --------------------------------------------------------
  /// Shard whose runtime stack hosts this connector's providers under
  /// sharded execution (sim::ShardSet); kUnsharded outside a sharded
  /// world.  Stamped by the sharded runtime at deploy time and updated at
  /// a migration barrier — routing layers read it mid-window, so it must
  /// only change while workers are parked.
  static constexpr std::size_t kUnsharded = ~std::size_t{0};
  void set_home_shard(std::size_t shard) { home_shard_ = shard; }
  std::size_t home_shard() const { return home_shard_; }

  // --- statistics ------------------------------------------------------------
  std::uint64_t relayed() const { return relayed_; }
  void count_relay() {
    ++relayed_;
    obs_relayed_->inc();
  }

 private:
  struct Slot {
    int priority;
    std::uint64_t order;  // attach order for stable sorting
    std::shared_ptr<Interceptor> interceptor;
  };

  /// Refreshes chain_ from interceptors_ (call after any attach/detach).
  void rebuild_chain();

  ConnectorId id_;
  ConnectorSpec spec_;
  std::vector<ComponentId> providers_;
  std::vector<Slot> interceptors_;
  /// Priority-sorted raw view of interceptors_, rebuilt on attach/detach so
  /// the per-message request/reply walk touches a flat pointer array.
  std::vector<Interceptor*> chain_;
  std::size_t round_robin_next_ = 0;
  std::uint64_t attach_counter_ = 0;
  std::uint64_t relayed_ = 0;
  std::size_t home_shard_ = kUnsharded;
  // Observability mirrors (no-ops while the global registry is disabled).
  obs::Counter* obs_relayed_;
  obs::Counter* obs_verdict_pass_;
  obs::Counter* obs_verdict_block_;
  obs::Counter* obs_verdict_handled_;
};

}  // namespace aars::connector
