#include "connector/connector.h"

#include <algorithm>

namespace aars::connector {

using util::Error;
using util::ErrorCode;

namespace {

/// True when `provider` appears on a "__route_avoid" header list.
bool route_avoided(const util::Value& avoid, ComponentId provider) {
  for (const util::Value& entry : avoid.as_list()) {
    if (entry.is_int() &&
        static_cast<std::uint64_t>(entry.as_int()) == provider.raw()) {
      return true;
    }
  }
  return false;
}

}  // namespace

Connector::Connector(ConnectorId id, ConnectorSpec spec)
    : id_(id), spec_(std::move(spec)) {
  util::require(!spec_.name.empty(), "connector name required");
  obs::Registry& reg = obs::Registry::global();
  obs_relayed_ = &reg.counter("connector.relayed",
                              {{"policy", to_string(spec_.routing)}});
  obs_verdict_pass_ = &reg.counter("connector.verdict", {{"verdict", "pass"}});
  obs_verdict_block_ =
      &reg.counter("connector.verdict", {{"verdict", "block"}});
  obs_verdict_handled_ =
      &reg.counter("connector.verdict", {{"verdict", "handled"}});
}

Status Connector::add_provider(ComponentId provider) {
  util::require(provider.valid(), "invalid provider id");
  if (has_provider(provider)) {
    return Error{ErrorCode::kAlreadyExists,
                 name() + ": provider already attached"};
  }
  if (spec_.routing == RoutingPolicy::kDirect && !providers_.empty()) {
    return Error{ErrorCode::kInvalidArgument,
                 name() + ": direct connector allows a single provider"};
  }
  providers_.push_back(provider);
  return Status::success();
}

Status Connector::remove_provider(ComponentId provider) {
  auto it = std::find(providers_.begin(), providers_.end(), provider);
  if (it == providers_.end()) {
    return Error{ErrorCode::kNotFound, name() + ": provider not attached"};
  }
  const std::size_t index =
      static_cast<std::size_t>(std::distance(providers_.begin(), it));
  providers_.erase(it);
  // Keep the cursor on the provider that was due next: removing an entry
  // before the cursor shifts everything after it down one; removing the due
  // entry itself (or anything after it) leaves the index of the next
  // survivor unchanged.  Wrap when the cursor falls off the end.
  if (round_robin_next_ > index) --round_robin_next_;
  if (round_robin_next_ >= providers_.size()) round_robin_next_ = 0;
  return Status::success();
}

bool Connector::has_provider(ComponentId provider) const {
  return std::find(providers_.begin(), providers_.end(), provider) !=
         providers_.end();
}

Result<ComponentId> Connector::select_target(const Message& message,
                                             const LoadProbe& probe) {
  if (providers_.empty()) {
    return Error{ErrorCode::kUnavailable, name() + ": no provider attached"};
  }
  // Failover support: retried messages carry a "__route_avoid" list of
  // providers that already failed; prefer any provider not on it.  When the
  // list covers every provider, fall back to normal selection — avoiding
  // everything would turn a degraded service into an unavailable one.
  // The unfiltered case (virtually every message) selects straight from
  // providers_ — no candidate vector is materialised on the hot path.
  const util::Value* avoid = nullptr;
  if (message.headers.contains(component::kHeaderRouteAvoid)) {
    const util::Value& header =
        message.headers.at(component::kHeaderRouteAvoid);
    if (header.is_list()) {
      bool any_allowed = false;
      for (ComponentId provider : providers_) {
        if (!route_avoided(header, provider)) {
          any_allowed = true;
          break;
        }
      }
      if (any_allowed) avoid = &header;
    }
  }
  const auto allowed = [&](ComponentId provider) {
    return avoid == nullptr || !route_avoided(*avoid, provider);
  };
  switch (spec_.routing) {
    case RoutingPolicy::kDirect: {
      for (ComponentId provider : providers_) {
        if (allowed(provider)) return provider;
      }
      return providers_.front();
    }
    case RoutingPolicy::kRoundRobin: {
      // Scan from the cursor for the next allowed provider, then park the
      // cursor just past the pick.  Indexing a filtered pool with the
      // providers_-based cursor (as this used to do) skewed the rotation:
      // a filtered pick could repeat the same provider on the next
      // unfiltered call while another provider lost its turn.
      for (std::size_t step = 0; step < providers_.size(); ++step) {
        const std::size_t i =
            (round_robin_next_ + step) % providers_.size();
        if (allowed(providers_[i])) {
          round_robin_next_ = (i + 1) % providers_.size();
          return providers_[i];
        }
      }
      return providers_[round_robin_next_];
    }
    case RoutingPolicy::kLeastBacklog: {
      ComponentId best;
      std::int64_t best_backlog = 0;
      for (ComponentId provider : providers_) {
        if (!allowed(provider)) continue;
        if (!best.valid()) {
          best = provider;
          if (!probe) return best;
          best_backlog = probe(best);
          continue;
        }
        const std::int64_t backlog = probe(provider);
        if (backlog < best_backlog) {
          best = provider;
          best_backlog = backlog;
        }
      }
      return best;
    }
    case RoutingPolicy::kBroadcast:
      return Error{ErrorCode::kInvalidArgument,
                   name() + ": broadcast connector cannot select one target"};
  }
  return Error{ErrorCode::kInternal, "unknown routing policy"};
}

Status Connector::attach_interceptor(std::shared_ptr<Interceptor> interceptor,
                                     int priority) {
  util::require(interceptor != nullptr, "interceptor required");
  const std::string iname = interceptor->name();
  for (const Slot& slot : interceptors_) {
    if (slot.interceptor->name() == iname) {
      return Error{ErrorCode::kAlreadyExists,
                   name() + ": interceptor '" + iname + "' already attached"};
    }
  }
  interceptors_.push_back(
      Slot{priority, attach_counter_++, std::move(interceptor)});
  std::stable_sort(interceptors_.begin(), interceptors_.end(),
                   [](const Slot& a, const Slot& b) {
                     if (a.priority != b.priority) {
                       return a.priority < b.priority;
                     }
                     return a.order < b.order;
                   });
  rebuild_chain();
  return Status::success();
}

Status Connector::detach_interceptor(const std::string& name_to_remove) {
  for (auto it = interceptors_.begin(); it != interceptors_.end(); ++it) {
    if (it->interceptor->name() == name_to_remove) {
      interceptors_.erase(it);
      rebuild_chain();
      return Status::success();
    }
  }
  return Error{ErrorCode::kNotFound,
               name() + ": interceptor '" + name_to_remove + "' not attached"};
}

void Connector::rebuild_chain() {
  chain_.clear();
  chain_.reserve(interceptors_.size());
  for (const Slot& slot : interceptors_) {
    chain_.push_back(slot.interceptor.get());
  }
}

std::vector<std::string> Connector::interceptor_names() const {
  std::vector<std::string> out;
  out.reserve(interceptors_.size());
  for (const Slot& slot : interceptors_) {
    out.push_back(slot.interceptor->name());
  }
  return out;
}

Interceptor::Verdict Connector::run_before(Message& request,
                                           Result<Value>* reply_out,
                                           std::size_t* seen_out) {
  Interceptor::Verdict verdict = Interceptor::Verdict::kPass;
  std::size_t seen = 0;
  for (Interceptor* interceptor : chain_) {
    ++seen;
    verdict = interceptor->before(request, reply_out);
    if (verdict != Interceptor::Verdict::kPass) break;
  }
  if (seen_out != nullptr) *seen_out = seen;
  switch (verdict) {
    case Interceptor::Verdict::kPass: obs_verdict_pass_->inc(); break;
    case Interceptor::Verdict::kBlock: obs_verdict_block_->inc(); break;
    case Interceptor::Verdict::kHandled: obs_verdict_handled_->inc(); break;
  }
  return verdict;
}

void Connector::run_after(const Message& request, Result<Value>& reply,
                          std::size_t seen) {
  // Unwind only the prefix that saw the request: when run_before stopped
  // early (kBlock/kHandled), interceptors past the stopping point never ran
  // and must not see the reply either.
  for (std::size_t i = std::min(seen, chain_.size()); i-- > 0;) {
    chain_[i]->after(request, reply);
  }
}

}  // namespace aars::connector
