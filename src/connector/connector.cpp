#include "connector/connector.h"

#include <algorithm>

namespace aars::connector {

using util::Error;
using util::ErrorCode;

Connector::Connector(ConnectorId id, ConnectorSpec spec)
    : id_(id), spec_(std::move(spec)) {
  util::require(!spec_.name.empty(), "connector name required");
  obs::Registry& reg = obs::Registry::global();
  obs_relayed_ = &reg.counter("connector.relayed",
                              {{"policy", to_string(spec_.routing)}});
  obs_verdict_pass_ = &reg.counter("connector.verdict", {{"verdict", "pass"}});
  obs_verdict_block_ =
      &reg.counter("connector.verdict", {{"verdict", "block"}});
  obs_verdict_handled_ =
      &reg.counter("connector.verdict", {{"verdict", "handled"}});
}

Status Connector::add_provider(ComponentId provider) {
  util::require(provider.valid(), "invalid provider id");
  if (has_provider(provider)) {
    return Error{ErrorCode::kAlreadyExists,
                 name() + ": provider already attached"};
  }
  if (spec_.routing == RoutingPolicy::kDirect && !providers_.empty()) {
    return Error{ErrorCode::kInvalidArgument,
                 name() + ": direct connector allows a single provider"};
  }
  providers_.push_back(provider);
  return Status::success();
}

Status Connector::remove_provider(ComponentId provider) {
  auto it = std::find(providers_.begin(), providers_.end(), provider);
  if (it == providers_.end()) {
    return Error{ErrorCode::kNotFound, name() + ": provider not attached"};
  }
  const std::size_t index =
      static_cast<std::size_t>(std::distance(providers_.begin(), it));
  providers_.erase(it);
  if (round_robin_next_ > index) --round_robin_next_;
  if (!providers_.empty()) round_robin_next_ %= providers_.size();
  return Status::success();
}

bool Connector::has_provider(ComponentId provider) const {
  return std::find(providers_.begin(), providers_.end(), provider) !=
         providers_.end();
}

Result<ComponentId> Connector::select_target(const Message& message,
                                             const LoadProbe& probe) {
  if (providers_.empty()) {
    return Error{ErrorCode::kUnavailable, name() + ": no provider attached"};
  }
  // Failover support: retried messages carry a "__route_avoid" list of
  // providers that already failed; prefer any provider not on it.  When the
  // list covers every provider, fall back to normal selection — avoiding
  // everything would turn a degraded service into an unavailable one.
  std::vector<ComponentId> candidates = providers_;
  if (message.headers.contains(component::kHeaderRouteAvoid)) {
    const util::Value& avoid =
        message.headers.at(component::kHeaderRouteAvoid);
    if (avoid.is_list()) {
      std::vector<ComponentId> kept;
      for (ComponentId provider : providers_) {
        bool avoided = false;
        for (const util::Value& entry : avoid.as_list()) {
          if (entry.is_int() &&
              static_cast<std::uint64_t>(entry.as_int()) == provider.raw()) {
            avoided = true;
            break;
          }
        }
        if (!avoided) kept.push_back(provider);
      }
      if (!kept.empty()) candidates = std::move(kept);
    }
  }
  switch (spec_.routing) {
    case RoutingPolicy::kDirect:
      return candidates.front();
    case RoutingPolicy::kRoundRobin: {
      const ComponentId target =
          candidates[round_robin_next_ % candidates.size()];
      round_robin_next_ = (round_robin_next_ + 1) % providers_.size();
      return target;
    }
    case RoutingPolicy::kLeastBacklog: {
      if (!probe) return candidates.front();
      ComponentId best = candidates.front();
      std::int64_t best_backlog = probe(best);
      for (std::size_t i = 1; i < candidates.size(); ++i) {
        const std::int64_t backlog = probe(candidates[i]);
        if (backlog < best_backlog) {
          best = candidates[i];
          best_backlog = backlog;
        }
      }
      return best;
    }
    case RoutingPolicy::kBroadcast:
      return Error{ErrorCode::kInvalidArgument,
                   name() + ": broadcast connector cannot select one target"};
  }
  return Error{ErrorCode::kInternal, "unknown routing policy"};
}

Status Connector::attach_interceptor(std::shared_ptr<Interceptor> interceptor,
                                     int priority) {
  util::require(interceptor != nullptr, "interceptor required");
  const std::string iname = interceptor->name();
  for (const Slot& slot : interceptors_) {
    if (slot.interceptor->name() == iname) {
      return Error{ErrorCode::kAlreadyExists,
                   name() + ": interceptor '" + iname + "' already attached"};
    }
  }
  interceptors_.push_back(
      Slot{priority, attach_counter_++, std::move(interceptor)});
  std::stable_sort(interceptors_.begin(), interceptors_.end(),
                   [](const Slot& a, const Slot& b) {
                     if (a.priority != b.priority) {
                       return a.priority < b.priority;
                     }
                     return a.order < b.order;
                   });
  return Status::success();
}

Status Connector::detach_interceptor(const std::string& name_to_remove) {
  for (auto it = interceptors_.begin(); it != interceptors_.end(); ++it) {
    if (it->interceptor->name() == name_to_remove) {
      interceptors_.erase(it);
      return Status::success();
    }
  }
  return Error{ErrorCode::kNotFound,
               name() + ": interceptor '" + name_to_remove + "' not attached"};
}

std::vector<std::string> Connector::interceptor_names() const {
  std::vector<std::string> out;
  out.reserve(interceptors_.size());
  for (const Slot& slot : interceptors_) {
    out.push_back(slot.interceptor->name());
  }
  return out;
}

Interceptor::Verdict Connector::run_before(Message& request,
                                           Result<Value>* reply_out,
                                           std::size_t* seen_out) {
  Interceptor::Verdict verdict = Interceptor::Verdict::kPass;
  std::size_t seen = 0;
  for (const Slot& slot : interceptors_) {
    ++seen;
    verdict = slot.interceptor->before(request, reply_out);
    if (verdict != Interceptor::Verdict::kPass) break;
  }
  if (seen_out != nullptr) *seen_out = seen;
  switch (verdict) {
    case Interceptor::Verdict::kPass: obs_verdict_pass_->inc(); break;
    case Interceptor::Verdict::kBlock: obs_verdict_block_->inc(); break;
    case Interceptor::Verdict::kHandled: obs_verdict_handled_->inc(); break;
  }
  return verdict;
}

void Connector::run_after(const Message& request, Result<Value>& reply,
                          std::size_t seen) {
  // Unwind only the prefix that saw the request: when run_before stopped
  // early (kBlock/kHandled), interceptors past the stopping point never ran
  // and must not see the reply either.
  for (std::size_t i = std::min(seen, interceptors_.size()); i-- > 0;) {
    interceptors_[i].interceptor->after(request, reply);
  }
}

}  // namespace aars::connector
