#include "connector/protocol.h"

namespace aars::connector {

using util::Error;
using util::ErrorCode;
using util::Status;

ProtocolMonitor::ProtocolMonitor(lts::Lts protocol)
    : protocol_(std::move(protocol)), state_(protocol_.initial()) {}

void ProtocolMonitor::follow_taus() {
  // Follow a bounded chain of internal moves (deterministic prefix).
  for (std::size_t guard = 0; guard < protocol_.state_count(); ++guard) {
    const auto out = protocol_.outgoing(state_);
    if (out.size() != 1 ||
        out.front()->label.direction != lts::Direction::kInternal) {
      return;
    }
    state_ = out.front()->to;
  }
}

Status ProtocolMonitor::observe(const std::string& action,
                                lts::Direction direction) {
  follow_taus();
  ++observed_;
  for (const lts::Transition* t : protocol_.outgoing(state_)) {
    if (t->label.action == action && t->label.direction == direction) {
      state_ = t->to;
      return Status::success();
    }
  }
  ++violations_;
  return Error{ErrorCode::kIncompatible,
               protocol_.name() + ": action '" + action +
                   std::string(lts::to_string(direction)) +
                   "' not allowed in state " + std::to_string(state_)};
}

void ProtocolMonitor::reset() {
  state_ = protocol_.initial();
  observed_ = 0;
  violations_ = 0;
}

ProtocolConformanceInterceptor::ProtocolConformanceInterceptor(
    std::string name, lts::Lts protocol, bool enforce)
    : name_(std::move(name)),
      monitor_(std::move(protocol)),
      enforce_(enforce) {}

Interceptor::Verdict ProtocolConformanceInterceptor::before(
    component::Message& request, util::Result<util::Value>* reply_out) {
  const Status observed =
      monitor_.observe(request.operation, lts::Direction::kInput);
  if (!observed.ok() && enforce_) {
    if (reply_out != nullptr) {
      *reply_out = util::Result<util::Value>(observed.error());
    }
    return Verdict::kBlock;
  }
  return Verdict::kPass;
}

void ProtocolConformanceInterceptor::after(
    const component::Message& /*request*/,
    util::Result<util::Value>& /*reply*/) {}

}  // namespace aars::connector
