// Runtime protocol conformance monitoring.
//
// A connector can carry LTS role descriptions (§3: "connectors are modeled
// using first order automata, which defines the states of collaboration").
// The ProtocolMonitor walks the automaton as messages flow and flags the
// first action the protocol does not allow.
#pragma once

#include <memory>
#include <string>

#include "connector/connector.h"
#include "lts/lts.h"
#include "util/errors.h"

namespace aars::connector {

class ProtocolMonitor {
 public:
  explicit ProtocolMonitor(lts::Lts protocol);

  /// Advances on `action` with the given direction. kIncompatible when the
  /// current state has no such transition. Internal (tau) transitions are
  /// followed eagerly before matching.
  util::Status observe(const std::string& action, lts::Direction direction);

  /// Current automaton state.
  lts::StateId state() const { return state_; }
  /// True when the collaboration may legally stop here.
  bool may_stop() const { return protocol_.is_final(state_); }
  /// Number of observed actions.
  std::uint64_t observed() const { return observed_; }
  /// Number of violations flagged so far (monitor keeps running).
  std::uint64_t violations() const { return violations_; }

  void reset();

 private:
  void follow_taus();

  lts::Lts protocol_;
  lts::StateId state_;
  std::uint64_t observed_ = 0;
  std::uint64_t violations_ = 0;
};

/// Attaches a ProtocolMonitor to live connector traffic: each request is
/// observed as `<operation>?` (the provider-side reception). With
/// `enforce` set, out-of-protocol messages are rejected instead of merely
/// counted — the connector becomes a run-time contract checker.
class ProtocolConformanceInterceptor final : public Interceptor {
 public:
  ProtocolConformanceInterceptor(std::string name, lts::Lts protocol,
                                 bool enforce);

  Verdict before(component::Message& request,
                 util::Result<util::Value>* reply_out) override;
  void after(const component::Message& request,
             util::Result<util::Value>& reply) override;
  std::string name() const override { return name_; }

  const ProtocolMonitor& monitor() const { return monitor_; }
  ProtocolMonitor& monitor() { return monitor_; }

 private:
  std::string name_;
  ProtocolMonitor monitor_;
  bool enforce_;
};

}  // namespace aars::connector
