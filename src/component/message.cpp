#include "component/message.h"

namespace aars::component {

Message make_response(const Message& request, Value result) {
  Message response;
  response.kind = MessageKind::kResponse;
  response.operation = request.operation;
  response.payload = std::move(result);
  response.sender = request.target;
  response.target = request.sender;
  response.correlation = request.id;
  return response;
}

Message make_error_response(const Message& request, const std::string& code,
                            const std::string& text) {
  Message response = make_response(
      request, Value::object({{"error", code}, {"message", text}}));
  return response;
}

Priority message_priority(const Message& message) {
  if (message.headers.contains(kHeaderPriority)) {
    std::int64_t raw = message.headers.at(kHeaderPriority).as_int();
    if (raw < 0) raw = 0;
    if (raw > static_cast<std::int64_t>(Priority::kControl)) {
      raw = static_cast<std::int64_t>(Priority::kControl);
    }
    return static_cast<Priority>(raw);
  }
  if (message.kind == MessageKind::kControl) return Priority::kControl;
  return Priority::kNormal;
}

void set_priority(Message& message, Priority priority) {
  message.headers[kHeaderPriority] = static_cast<std::int64_t>(priority);
}

bool is_error_response(const Message& message) {
  return message.kind == MessageKind::kResponse &&
         message.payload.contains("error");
}

}  // namespace aars::component
