#include "component/message.h"

namespace aars::component {

Message make_response(const Message& request, Value result) {
  Message response;
  response.kind = MessageKind::kResponse;
  response.operation = request.operation;
  response.payload = std::move(result);
  response.sender = request.target;
  response.target = request.sender;
  response.correlation = request.id;
  return response;
}

Message make_error_response(const Message& request, const std::string& code,
                            const std::string& text) {
  Message response = make_response(
      request, Value::object({{"error", code}, {"message", text}}));
  return response;
}

bool is_error_response(const Message& message) {
  return message.kind == MessageKind::kResponse &&
         message.payload.contains("error");
}

}  // namespace aars::component
