// Component type registry.
//
// The ADL deployer and the reconfiguration engine create components by type
// name; new implementations can be registered at run-time, which is what
// makes on-line implementation modification (§1) possible.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "component/component.h"
#include "util/errors.h"

namespace aars::component {

class ComponentRegistry {
 public:
  /// Factory: builds a fresh instance with the given instance name.
  using Factory =
      std::function<std::unique_ptr<Component>(const std::string&)>;

  /// Registers (or replaces — that is the point of hot deployment) the
  /// factory for `type_name`.
  void register_type(const std::string& type_name, Factory factory);
  bool has_type(const std::string& type_name) const;
  std::vector<std::string> type_names() const;

  /// Creates an instance; kNotFound when the type is unknown.
  util::Result<std::unique_ptr<Component>> create(
      const std::string& type_name, const std::string& instance_name) const;

  /// Convenience for class types with (instance_name) constructors.
  template <typename T>
  void register_class(const std::string& type_name) {
    register_type(type_name, [](const std::string& instance_name) {
      return std::make_unique<T>(instance_name);
    });
  }

 private:
  std::map<std::string, Factory> factories_;
};

}  // namespace aars::component
