// The component abstraction.
//
// A Component exposes one provided interface, declares required ports, and
// handles messages through a mutable operation table.  Three design points
// come straight from the paper:
//
//  * Lifecycle + quiescence: reconfiguration "should be initiated at some
//    specific execution points" (§1, Polylith).  Components track an
//    activity depth; quiescent() is the reconfiguration point predicate.
//  * Strong state transfer: "new components must be initialized with
//    adequate internal state variables, contexts, program counters and
//    registers" (§1).  snapshot()/restore() carry a Value state tree plus a
//    resume point marker — the program-counter analogue.
//  * Open operation table: the AJ-style meta-protocol (§2, adaptive
//    component interfaces) can observe and replace operation handlers at
//    run-time through replace_operation()/observe().
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "component/interface.h"
#include "component/message.h"
#include "util/errors.h"
#include "util/ids.h"
#include "util/symbol.h"
#include "util/value.h"

namespace aars::component {

using util::ComponentId;
using util::Result;
using util::Status;

enum class LifecycleState {
  kCreated,     // constructed, not yet initialised
  kInitialized, // attributes applied, not yet receiving messages
  kActive,      // processing messages
  kPassivated,  // temporarily not accepting messages (quiesced)
  kRemoved,     // detached; terminal
};

constexpr const char* to_string(LifecycleState s) {
  switch (s) {
    case LifecycleState::kCreated: return "created";
    case LifecycleState::kInitialized: return "initialized";
    case LifecycleState::kActive: return "active";
    case LifecycleState::kPassivated: return "passivated";
    case LifecycleState::kRemoved: return "removed";
  }
  return "?";
}

/// Serialised component state for strong reconfiguration.
struct Snapshot {
  std::string type_name;
  util::Value attributes;
  util::Value state;          // component-specific state tree
  std::string resume_point;   // "program counter": where to continue
  std::uint64_t handled = 0;  // messages processed so far
};

/// A required port declaration: the component calls out through it.
struct RequiredPort {
  std::string name;
  InterfaceDescription interface;
};

/// Base class for all components.
class Component {
 public:
  /// Handler for one provided operation.
  using OperationHandler = std::function<Result<util::Value>(
      const util::Value& args)>;
  /// Outgoing call gate, installed by the runtime when the component is
  /// bound. Arguments: (port, operation, args).
  using Sender = std::function<Result<util::Value>(
      const std::string&, util::Symbol, const util::Value&)>;
  /// Observation hook for the meta-level: fired around every handled
  /// message (introspection without intercession).
  using Observer = std::function<void(const Message&,
                                      const Result<util::Value>&)>;

  Component(std::string type_name, std::string instance_name);
  virtual ~Component() = default;
  Component(const Component&) = delete;
  Component& operator=(const Component&) = delete;

  // --- identity & introspection -------------------------------------------
  ComponentId id() const { return id_; }
  void set_id(ComponentId id) { id_ = id; }
  const std::string& type_name() const { return type_name_; }
  const std::string& instance_name() const { return instance_name_; }
  LifecycleState lifecycle() const { return lifecycle_; }
  const InterfaceDescription& provided() const { return provided_; }
  const std::vector<RequiredPort>& required() const { return required_; }
  const util::Value& attributes() const { return attributes_; }
  std::uint64_t handled_count() const { return handled_; }
  /// Operation names currently dispatchable (reflects runtime edits).
  std::vector<std::string> operations() const;
  /// Work units charged for one invocation of `operation` (sim cost).
  double work_cost(util::Symbol operation) const;

  // --- lifecycle ------------------------------------------------------------
  Status initialize(const util::Value& attributes);
  Status activate();
  Status passivate();
  Status remove();

  // --- message handling -----------------------------------------------------
  /// Dispatches a request/event to its operation handler. Validates the
  /// arguments against the provided interface first.
  Result<util::Value> handle(const Message& message);

  // --- quiescence (reconfiguration points) ----------------------------------
  /// True when the component is between activities: safe to snapshot/swap.
  bool quiescent() const { return activity_depth_ == 0; }
  int activity_depth() const { return activity_depth_; }
  /// Explicit activity bracket. handle() brackets synchronous dispatch
  /// automatically; components whose work spans events (async completions,
  /// background activities) use these to stay non-quiescent across them.
  void begin_activity() { ++activity_depth_; }
  void end_activity() {
    util::require(activity_depth_ > 0, "activity depth underflow");
    --activity_depth_;
  }

  // --- strong state transfer --------------------------------------------------
  Snapshot snapshot() const;
  Status restore(const Snapshot& snapshot);

  // --- meta-protocol (intercession on the operation table) -------------------
  /// Replaces an operation handler at run-time. The operation must exist in
  /// the provided interface (the interface itself does not change).
  Status replace_operation(util::Symbol operation, OperationHandler handler,
                           double work_cost);
  /// Returns a copy of the current handler (empty when unknown); used by
  /// the meta-protocol to wrap/refine base-level executions.
  OperationHandler operation_handler(util::Symbol operation) const;
  /// Registers an observer fired after every handled message.
  void observe(Observer observer) { observers_.push_back(std::move(observer)); }
  std::size_t observer_count() const { return observers_.size(); }

  // --- wiring (runtime only) --------------------------------------------------
  void set_sender(Sender sender) { sender_ = std::move(sender); }
  bool bound() const { return static_cast<bool>(sender_); }

 protected:
  // --- API for concrete components -------------------------------------------
  /// Declares the provided interface. Call from the constructor.
  void set_provided(InterfaceDescription interface) {
    provided_ = std::move(interface);
    for (auto& [name, entry] : operations_) {
      entry.signature = nullptr;
      entry.signature_resolved = false;
    }
  }
  /// Declares a required port. Call from the constructor.
  void add_required(RequiredPort port) {
    required_.push_back(std::move(port));
  }
  /// Registers an operation handler with its simulated work cost.
  void register_operation(util::Symbol operation, double work_cost,
                          OperationHandler handler);

  /// Makes an outgoing call through a required port.
  Result<util::Value> call(const std::string& port, util::Symbol operation,
                           const util::Value& args);

  /// Subclass hooks.
  virtual Status on_initialize(const util::Value& /*attributes*/) {
    return Status::success();
  }
  virtual void on_activate() {}
  virtual void on_passivate() {}
  virtual void on_remove() {}
  /// Default snapshot: subclasses add their state under keys of `state`.
  virtual void save_state(util::Value& /*state*/) const {}
  virtual Status load_state(const util::Value& /*state*/) {
    return Status::success();
  }

  /// Resume-point marker ("program counter"). Subclasses set it at their
  /// reconfiguration points; it is carried through snapshots.
  void set_resume_point(std::string label) { resume_point_ = std::move(label); }
  const std::string& resume_point() const { return resume_point_; }

  util::Value& mutable_attributes() { return attributes_; }

 private:
  struct OperationEntry {
    OperationHandler handler;
    double work_cost = 1.0;
    /// Cached signature lookup (nullptr = operation not in the provided
    /// interface). Resolved lazily on first dispatch; set_provided()
    /// invalidates. Map nodes are stable, so the pointer stays valid until
    /// the interface is replaced wholesale.
    const ServiceSignature* signature = nullptr;
    bool signature_resolved = false;
  };

  ComponentId id_;
  std::string type_name_;
  std::string instance_name_;
  LifecycleState lifecycle_ = LifecycleState::kCreated;
  InterfaceDescription provided_;
  std::vector<RequiredPort> required_;
  /// Keyed by interned name: dispatch is one pointer-hash probe, no string
  /// comparison.  Iteration order is pointer-dependent, so introspection
  /// (operations()) sorts before returning.
  std::unordered_map<util::Symbol, OperationEntry, util::SymbolHash>
      operations_;
  std::vector<Observer> observers_;
  Sender sender_;
  util::Value attributes_;
  std::string resume_point_ = "start";
  std::uint64_t handled_ = 0;
  int activity_depth_ = 0;
};

}  // namespace aars::component
