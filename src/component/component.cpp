#include "component/component.h"

#include <algorithm>

#include "util/logging.h"
#include "util/strings.h"

namespace aars::component {

using util::Error;
using util::ErrorCode;
using util::Value;

Component::Component(std::string type_name, std::string instance_name)
    : type_name_(std::move(type_name)),
      instance_name_(std::move(instance_name)) {}

std::vector<std::string> Component::operations() const {
  std::vector<std::string> out;
  out.reserve(operations_.size());
  for (const auto& [name, entry] : operations_) out.push_back(name.str());
  // The table hashes interned pointers, so iteration order depends on
  // interning history; sort for deterministic introspection output.
  std::sort(out.begin(), out.end());
  return out;
}

double Component::work_cost(util::Symbol operation) const {
  auto it = operations_.find(operation);
  return it == operations_.end() ? 0.0 : it->second.work_cost;
}

Status Component::initialize(const Value& attributes) {
  if (lifecycle_ != LifecycleState::kCreated) {
    return Error{ErrorCode::kInvalidArgument,
                 instance_name_ + ": initialize from state " +
                     std::string(to_string(lifecycle_))};
  }
  attributes_ = attributes;
  if (Status s = on_initialize(attributes); !s.ok()) return s;
  lifecycle_ = LifecycleState::kInitialized;
  return Status::success();
}

Status Component::activate() {
  if (lifecycle_ != LifecycleState::kInitialized &&
      lifecycle_ != LifecycleState::kPassivated) {
    return Error{ErrorCode::kInvalidArgument,
                 instance_name_ + ": activate from state " +
                     std::string(to_string(lifecycle_))};
  }
  lifecycle_ = LifecycleState::kActive;
  on_activate();
  return Status::success();
}

Status Component::passivate() {
  if (lifecycle_ != LifecycleState::kActive) {
    return Error{ErrorCode::kInvalidArgument,
                 instance_name_ + ": passivate from state " +
                     std::string(to_string(lifecycle_))};
  }
  if (!quiescent()) {
    return Error{ErrorCode::kNotQuiescent,
                 instance_name_ + ": passivate while an activity is running"};
  }
  lifecycle_ = LifecycleState::kPassivated;
  on_passivate();
  return Status::success();
}

Status Component::remove() {
  if (lifecycle_ == LifecycleState::kRemoved) {
    return Error{ErrorCode::kInvalidArgument,
                 instance_name_ + ": already removed"};
  }
  if (!quiescent()) {
    return Error{ErrorCode::kNotQuiescent,
                 instance_name_ + ": remove while an activity is running"};
  }
  lifecycle_ = LifecycleState::kRemoved;
  on_remove();
  return Status::success();
}

void Component::register_operation(util::Symbol operation, double work_cost,
                                   OperationHandler handler) {
  util::require(static_cast<bool>(handler), "operation handler required");
  util::require(work_cost >= 0.0, "work cost must be non-negative");
  operations_[operation] = OperationEntry{std::move(handler), work_cost};
}

Status Component::replace_operation(util::Symbol operation,
                                    OperationHandler handler,
                                    double work_cost) {
  auto it = operations_.find(operation);
  if (it == operations_.end()) {
    return Error{ErrorCode::kNotFound,
                 instance_name_ + ": no operation '" + operation.str() + "'"};
  }
  it->second = OperationEntry{std::move(handler), work_cost};
  return Status::success();
}

Component::OperationHandler Component::operation_handler(
    util::Symbol operation) const {
  auto it = operations_.find(operation);
  return it == operations_.end() ? OperationHandler{} : it->second.handler;
}

Result<Value> Component::handle(const Message& message) {
  // Observers (the introspection half of the meta-protocol) see every
  // dispatched message, including rejected ones.
  const auto finish = [this, &message](Result<Value> result) {
    ++handled_;
    for (const Observer& observer : observers_) observer(message, result);
    return result;
  };
  if (lifecycle_ != LifecycleState::kActive) {
    return finish(Error{ErrorCode::kUnavailable,
                        instance_name_ + ": not active (" +
                            std::string(to_string(lifecycle_)) + ")"});
  }
  auto it = operations_.find(message.operation);
  if (it == operations_.end()) {
    return finish(Error{ErrorCode::kNotFound,
                        instance_name_ + ": no operation '" +
                            message.operation.str() + "'"});
  }
  OperationEntry& entry = it->second;
  if (!entry.signature_resolved) {
    entry.signature = provided_.find(message.operation);
    entry.signature_resolved = true;
  }
  if (entry.signature != nullptr) {
    if (Status s = entry.signature->validate_args(message.payload); !s.ok()) {
      return finish(s.error());
    }
  }
  begin_activity();
  Result<Value> result = entry.handler(message.payload);
  end_activity();
  return finish(std::move(result));
}

Result<Value> Component::call(const std::string& port, util::Symbol operation,
                              const Value& args) {
  if (!sender_) {
    return Error{ErrorCode::kUnavailable,
                 instance_name_ + ": port '" + port + "' is not bound"};
  }
  return sender_(port, operation, args);
}

Snapshot Component::snapshot() const {
  Snapshot snap;
  snap.type_name = type_name_;
  snap.attributes = attributes_;
  snap.resume_point = resume_point_;
  snap.handled = handled_;
  Value state;
  save_state(state);
  snap.state = std::move(state);
  return snap;
}

Status Component::restore(const Snapshot& snapshot) {
  if (snapshot.type_name != type_name_) {
    // State transfer across types is allowed only when the new type opts in
    // by accepting the old state tree; by default it is an error.
    AARS_DEBUG << instance_name_ << ": cross-type restore from "
               << snapshot.type_name;
  }
  attributes_ = snapshot.attributes;
  resume_point_ = snapshot.resume_point;
  handled_ = snapshot.handled;
  if (Status s = load_state(snapshot.state); !s.ok()) {
    return Error{ErrorCode::kStateTransfer,
                 instance_name_ + ": restore failed: " + s.error().message()};
  }
  return Status::success();
}

}  // namespace aars::component
