#include "component/registry.h"

namespace aars::component {

using util::Error;
using util::ErrorCode;

void ComponentRegistry::register_type(const std::string& type_name,
                                      Factory factory) {
  util::require(static_cast<bool>(factory), "factory must be callable");
  util::require(!type_name.empty(), "type name must not be empty");
  factories_[type_name] = std::move(factory);
}

bool ComponentRegistry::has_type(const std::string& type_name) const {
  return factories_.count(type_name) > 0;
}

std::vector<std::string> ComponentRegistry::type_names() const {
  std::vector<std::string> out;
  out.reserve(factories_.size());
  for (const auto& [name, factory] : factories_) out.push_back(name);
  return out;
}

util::Result<std::unique_ptr<Component>> ComponentRegistry::create(
    const std::string& type_name, const std::string& instance_name) const {
  auto it = factories_.find(type_name);
  if (it == factories_.end()) {
    return Error{ErrorCode::kNotFound,
                 "unknown component type '" + type_name + "'"};
  }
  std::unique_ptr<Component> instance = it->second(instance_name);
  util::require(instance != nullptr, "factory returned null component");
  return instance;
}

}  // namespace aars::component
