#include "component/interface.h"

#include "util/strings.h"

namespace aars::component {

using util::Error;
using util::ErrorCode;

Status ServiceSignature::validate_args(const Value& args) const {
  if (!args.is_map() && !args.is_null()) {
    return Error{ErrorCode::kInvalidArgument,
                 "arguments for " + name + " must be a map"};
  }
  for (const ParamSpec& p : params) {
    const Value& v = args.at(p.name);
    if (v.is_null()) {
      if (!p.optional) {
        return Error{ErrorCode::kInvalidArgument,
                     "missing required parameter '" + p.name + "' of " + name};
      }
      continue;
    }
    if (p.type != ValueType::kNull && v.type() != p.type) {
      // Allow int where double is declared (numeric widening).
      if (!(p.type == ValueType::kDouble && v.is_int())) {
        return Error{ErrorCode::kInvalidArgument,
                     util::format("parameter '%s' of %s: expected %s, got %s",
                                  p.name.c_str(), name.c_str(),
                                  to_string(p.type), to_string(v.type()))};
      }
    }
  }
  return Status::success();
}

InterfaceDescription& InterfaceDescription::add_service(ServiceSignature sig) {
  util::require(!sig.name.empty(), "service name must not be empty");
  services_[sig.name] = std::move(sig);
  return *this;
}

const ServiceSignature* InterfaceDescription::find(
    const std::string& service) const {
  auto it = services_.find(service);
  return it == services_.end() ? nullptr : &it->second;
}

namespace {
Status check_signature_kept(const ServiceSignature& old_sig,
                            const ServiceSignature& new_sig,
                            const std::string& interface_name) {
  if (new_sig.result != old_sig.result) {
    return Error{ErrorCode::kIncompatible,
                 util::format("%s.%s: result type changed from %s to %s",
                              interface_name.c_str(), old_sig.name.c_str(),
                              to_string(old_sig.result),
                              to_string(new_sig.result))};
  }
  // Every old parameter must still exist with the same type & optionality
  // not strengthened.
  for (const ParamSpec& old_p : old_sig.params) {
    const ParamSpec* new_p = nullptr;
    for (const ParamSpec& candidate : new_sig.params) {
      if (candidate.name == old_p.name) {
        new_p = &candidate;
        break;
      }
    }
    if (new_p == nullptr) {
      return Error{ErrorCode::kIncompatible,
                   util::format("%s.%s: parameter '%s' was removed",
                                interface_name.c_str(), old_sig.name.c_str(),
                                old_p.name.c_str())};
    }
    if (new_p->type != old_p.type) {
      return Error{ErrorCode::kIncompatible,
                   util::format("%s.%s: parameter '%s' changed type",
                                interface_name.c_str(), old_sig.name.c_str(),
                                old_p.name.c_str())};
    }
  }
  // New parameters must be optional, or old calls would break.
  for (const ParamSpec& new_p : new_sig.params) {
    bool existed = false;
    for (const ParamSpec& old_p : old_sig.params) {
      if (old_p.name == new_p.name) {
        existed = true;
        break;
      }
    }
    if (!existed && !new_p.optional) {
      return Error{ErrorCode::kIncompatible,
                   util::format("%s.%s: new parameter '%s' must be optional",
                                interface_name.c_str(), old_sig.name.c_str(),
                                new_p.name.c_str())};
    }
  }
  return Status::success();
}
}  // namespace

Status InterfaceDescription::check_compliance(
    const InterfaceDescription& previous, const InterfaceDescription& next) {
  if (previous.name() != next.name()) {
    return Error{ErrorCode::kIncompatible,
                 "interface name changed from " + previous.name() + " to " +
                     next.name()};
  }
  if (next.version() <= previous.version()) {
    return Error{ErrorCode::kIncompatible,
                 util::format("version must increase (%d -> %d)",
                              previous.version(), next.version())};
  }
  for (const auto& [name, old_sig] : previous.services()) {
    const ServiceSignature* new_sig = next.find(name);
    if (new_sig == nullptr) {
      return Error{ErrorCode::kIncompatible,
                   "service '" + name + "' was removed from " + next.name()};
    }
    if (Status s = check_signature_kept(old_sig, *new_sig, next.name());
        !s.ok()) {
      return s;
    }
  }
  return Status::success();
}

Status InterfaceDescription::satisfies(
    const InterfaceDescription& required) const {
  if (name_ != required.name()) {
    return Error{ErrorCode::kIncompatible,
                 "interface mismatch: provides " + name_ + ", requires " +
                     required.name()};
  }
  if (version_ < required.version()) {
    return Error{ErrorCode::kIncompatible,
                 util::format("%s: provided version %d < required version %d",
                              name_.c_str(), version_, required.version())};
  }
  for (const auto& [name, req_sig] : required.services()) {
    const ServiceSignature* prov_sig = find(name);
    if (prov_sig == nullptr) {
      return Error{ErrorCode::kIncompatible,
                   name_ + ": required service '" + name + "' not provided"};
    }
    if (Status s = check_signature_kept(req_sig, *prov_sig, name_); !s.ok()) {
      return s;
    }
  }
  return Status::success();
}

}  // namespace aars::component
