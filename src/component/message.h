// Messages exchanged between components.
//
// Filters, injectors and connectors operate on messages as first-class
// values ("filters are defined as declarative message manipulators", §2), so
// Message is a plain value type with an open `headers` map for metadata
// added by interception layers.
#pragma once

#include <string>

#include "util/ids.h"
#include "util/symbol.h"
#include "util/time.h"
#include "util/value.h"

namespace aars::component {

using util::ComponentId;
using util::MessageId;
using util::SimTime;
using util::Value;

enum class MessageKind {
  kRequest,   // expects a response
  kResponse,  // answer to a request (correlation set)
  kEvent,     // one-way notification
  kControl,   // runtime/meta-level traffic (quiescence, reconfiguration)
};

constexpr const char* to_string(MessageKind kind) {
  switch (kind) {
    case MessageKind::kRequest: return "request";
    case MessageKind::kResponse: return "response";
    case MessageKind::kEvent: return "event";
    case MessageKind::kControl: return "control";
  }
  return "?";
}

/// A single message. Value semantics: interceptors copy & transform freely.
/// Operation and port names are interned (util::Symbol), so copying a
/// message through an interceptor chain copies two pointers, not strings;
/// combined with copy-on-write Value payloads a Message copy never touches
/// the heap.
struct Message {
  MessageId id;
  MessageKind kind = MessageKind::kRequest;
  util::Symbol operation;
  Value payload;
  Value headers;  // metadata added by filters/injectors/middleware

  ComponentId sender;
  ComponentId target;
  util::Symbol target_port;  // required-port name on the sender side

  std::uint64_t sequence = 0;     // per-channel sequence number
  MessageId correlation;          // for responses: the request id
  SimTime sent_at = 0;
  SimTime delivered_at = 0;

  /// Payload + headers footprint, used to charge network bandwidth.
  std::size_t byte_size() const {
    return 64 + operation.size() + payload.byte_size() + headers.byte_size();
  }
};

/// Builds a response carrying `result` for `request`.
Message make_response(const Message& request, Value result);

/// Byte footprint of the message make_response(request, result) would
/// produce, without materialising it — relay paths charge the response trip
/// before the payload exists. Keep in sync with make_response() and
/// Message::byte_size() (a response starts with empty headers: 1 byte).
inline std::size_t response_byte_size(const Message& request,
                                      const Value& result) {
  return 64 + request.operation.size() + result.byte_size() + 1;
}

/// Builds an error response; the payload carries {"error": code_name,
/// "message": text} so failures can cross component boundaries as data.
Message make_error_response(const Message& request, const std::string& code,
                            const std::string& text);

/// True when the message is an error response built by make_error_response.
bool is_error_response(const Message& message);

/// Traffic classes for admission control and load shedding. Under overload
/// the runtime sheds lower classes first; kControl (reconfiguration and
/// quiescence traffic) is never shed, so the meta-level can always act.
enum class Priority {
  kBestEffort = 0,
  kNormal = 1,
  kHigh = 2,
  kControl = 3,
};

constexpr const char* to_string(Priority p) {
  switch (p) {
    case Priority::kBestEffort: return "best_effort";
    case Priority::kNormal: return "normal";
    case Priority::kHigh: return "high";
    case Priority::kControl: return "control";
  }
  return "?";
}

/// Effective traffic class of a message: the "__priority" header when
/// stamped (clamped to the enum range), kControl for control-kind messages,
/// kNormal otherwise.
Priority message_priority(const Message& message);

/// Stamps the "__priority" header.
void set_priority(Message& message, Priority priority);

// Well-known header keys consumed by the runtime's fault-handling machinery.
// Interceptors (fault::RetryInterceptor and friends) stamp these in before();
// the Application relay honours them on the event-driven path.
inline constexpr const char* kHeaderPriority = "__priority";
inline constexpr const char* kHeaderRetryBudget = "__retry_budget";
inline constexpr const char* kHeaderRetryAttempt = "__retry_attempt";
inline constexpr const char* kHeaderBackoffBase = "__backoff_base_us";
inline constexpr const char* kHeaderBackoffCap = "__backoff_cap_us";
inline constexpr const char* kHeaderTimeout = "__timeout_us";
inline constexpr const char* kHeaderTimeoutArmed = "__timeout_armed";
inline constexpr const char* kHeaderFailover = "__failover";
inline constexpr const char* kHeaderRouteAvoid = "__route_avoid";

}  // namespace aars::component
