// Typed, versioned component interfaces.
//
// The paper's "interface modification" change class requires that "the
// signatures of the provided services are modified and extended while
// keeping the compliancy with previous versions" (§1).  InterfaceDescription
// carries a version number and check_compliance() enforces exactly that
// rule: a newer version must accept every call the older version accepted.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "util/errors.h"
#include "util/value.h"

namespace aars::component {

using util::Status;
using util::Value;
using util::ValueType;

/// One parameter of a service signature.
struct ParamSpec {
  std::string name;
  ValueType type = ValueType::kNull;  // kNull accepts any type
  bool optional = false;
};

/// One provided service (operation): name, parameters, result type.
struct ServiceSignature {
  std::string name;
  std::vector<ParamSpec> params;
  ValueType result = ValueType::kNull;

  /// Validates an argument map against this signature.
  Status validate_args(const Value& args) const;
};

/// A named, versioned set of service signatures.
class InterfaceDescription {
 public:
  InterfaceDescription() = default;
  InterfaceDescription(std::string name, int version)
      : name_(std::move(name)), version_(version) {}

  const std::string& name() const { return name_; }
  int version() const { return version_; }

  InterfaceDescription& add_service(ServiceSignature sig);
  const ServiceSignature* find(const std::string& service) const;
  const std::map<std::string, ServiceSignature>& services() const {
    return services_;
  }
  std::size_t size() const { return services_.size(); }

  /// Backward-compliance check: `next` must (a) keep every service of
  /// `previous`, (b) not add new mandatory parameters to kept services,
  /// (c) not change kept parameter or result types.  New services and new
  /// optional parameters are allowed ("modified and extended").
  static Status check_compliance(const InterfaceDescription& previous,
                                 const InterfaceDescription& next);

  /// Can a provider exposing `this` serve a client requiring `required`?
  /// True when same name, provider version >= required version, and every
  /// required service exists with compatible shape.
  Status satisfies(const InterfaceDescription& required) const;

 private:
  std::string name_;
  int version_ = 1;
  std::map<std::string, ServiceSignature> services_;
};

}  // namespace aars::component
