// Observability substrate: metrics registry + structured trace buffer.
//
// The paper's RAML vision rests on "monitoring and measuring techniques at
// the meta-level" — introspection of the running system is the input to
// every adaptation decision.  This module is the uniform measurement
// backbone: named counters, gauges and histograms (keyed by name + labels)
// plus a bounded ring buffer of structured trace events (message relays,
// reconfiguration phases, RAML decisions, QoS violations).
//
// Design constraints:
//   * Zero overhead when disabled.  The registry starts disabled; every
//     record operation is a single predictable branch on a cached flag, so
//     instrumented hot paths (connector relay, event dispatch) cost nothing
//     measurable until a bench or experiment opts in.
//   * Stable handles.  Instrumented classes resolve their instruments once
//     (typically at construction) and keep pointers; instruments are never
//     deallocated while the registry lives, so recording is lock-free and
//     allocation-free.
//   * Mirror, not source of truth.  Subsystems keep their own counters for
//     control decisions (tests and protocols rely on them regardless of
//     whether observability is on); the registry mirrors those signals for
//     export and cross-cutting observation.
//   * Contention-safe.  Sharded execution records from several worker
//     threads into the one global registry: instrument *resolution* is
//     mutex-guarded (cold, typically at construction), counters and gauges
//     record with relaxed atomics (no torn counts, no TSan findings, no
//     cross-instrument ordering promised), and histogram observation takes
//     a per-instrument mutex.  Reading values/exporting is intended for
//     quiescent points (between shard windows, after runs).
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "util/stats.h"
#include "util/time.h"

namespace aars::obs {

/// Metric labels: sorted key/value pairs. Kept canonical (sorted, unique
/// keys) by the registry so {a=1,b=2} and {b=2,a=1} name the same series.
using Labels = std::vector<std::pair<std::string, std::string>>;

class Registry;

/// Monotonically increasing count (events executed, messages dropped...).
/// Thread-safe: increments are relaxed atomics (exact totals, no ordering).
class Counter {
 public:
  void inc(std::uint64_t n = 1) {
    if (enabled_->load(std::memory_order_relaxed)) {
      value_.fetch_add(n, std::memory_order_relaxed);
    }
  }
  std::uint64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  friend class Registry;
  explicit Counter(const std::atomic<bool>* enabled) : enabled_(enabled) {}
  const std::atomic<bool>* enabled_;
  std::atomic<std::uint64_t> value_{0};
};

/// Point-in-time level plus a high-water mark (queue depth, in-flight...).
/// Thread-safe: last-writer-wins level, CAS-maintained high water.  add()
/// is not atomic read-modify-write across threads — use it only from the
/// instrument's single writer (every current caller is per-shard state).
class Gauge {
 public:
  void set(double v) {
    if (!enabled_->load(std::memory_order_relaxed)) return;
    value_.store(v, std::memory_order_relaxed);
    double hw = high_water_.load(std::memory_order_relaxed);
    while (v > hw && !high_water_.compare_exchange_weak(
                         hw, v, std::memory_order_relaxed)) {
    }
  }
  void add(double delta) {
    set(value_.load(std::memory_order_relaxed) + delta);
  }
  double value() const { return value_.load(std::memory_order_relaxed); }
  double high_water() const {
    return high_water_.load(std::memory_order_relaxed);
  }

 private:
  friend class Registry;
  explicit Gauge(const std::atomic<bool>* enabled) : enabled_(enabled) {}
  const std::atomic<bool>* enabled_;
  std::atomic<double> value_{0.0};
  std::atomic<double> high_water_{0.0};
};

/// Sample distribution with exact percentiles (leans on util::Histogram).
/// Intended for bounded experiment outputs — latencies, phase durations —
/// not unbounded production streams.  observe() is mutex-guarded (cheap,
/// uncontended in per-shard use); samples() hands out an unguarded
/// reference — read it only at quiescent points (no concurrent observers).
class HistogramMetric {
 public:
  void observe(double v) {
    if (!enabled_->load(std::memory_order_relaxed)) return;
    std::lock_guard<std::mutex> lock(mu_);
    samples_.add(v);
  }
  const util::Histogram& samples() const { return samples_; }
  std::size_t count() const {
    std::lock_guard<std::mutex> lock(mu_);
    return samples_.count();
  }

 private:
  friend class Registry;
  explicit HistogramMetric(const std::atomic<bool>* enabled)
      : enabled_(enabled) {}
  const std::atomic<bool>* enabled_;
  mutable std::mutex mu_;
  util::Histogram samples_;
};

/// What a trace event describes.
enum class TraceKind {
  kRelay,         // a connector relayed (or intercepted) a message
  kReconfig,      // a reconfiguration protocol phase transition
  kDecision,      // a RAML policy fired
  kQosViolation,  // a QoS contract evaluation failed
  kFault,         // an injected fault began or ended, or a repair completed
  kTxn,           // a transactional enactment committed or rolled back
  kCustom,        // anything else an experiment wants on the timeline
};

constexpr const char* to_string(TraceKind k) {
  switch (k) {
    case TraceKind::kRelay: return "relay";
    case TraceKind::kReconfig: return "reconfig";
    case TraceKind::kDecision: return "decision";
    case TraceKind::kQosViolation: return "qos_violation";
    case TraceKind::kFault: return "fault";
    case TraceKind::kTxn: return "txn";
    case TraceKind::kCustom: return "custom";
  }
  return "?";
}

/// Collapses unbounded per-instance suffixes in a trace/metric subject name
/// so cardinality stays bounded over long runs: any chain of generated
/// "_r<n>" redeploy suffixes becomes a single "_r*" ("svc_r17" and
/// "svc_r3_r12" both map to "svc_r*"), and names longer than
/// kMaxTraceNameLength are truncated with a "…" marker.  Applied by
/// Registry::trace() to every event name.
inline constexpr std::size_t kMaxTraceNameLength = 96;
std::string sanitize_trace_name(std::string name);

/// One entry on the simulation timeline.
struct TraceEvent {
  util::SimTime at = 0;
  TraceKind kind = TraceKind::kCustom;
  std::string name;    // subject: connector, phase, policy or contract name
  std::string detail;  // free-form context (kept short; it lands in JSON)
};

/// Fixed-capacity ring of recent trace events. When full, the oldest entry
/// is overwritten; `dropped()` counts the overwritten ones so exports can
/// say "showing the last N of M".
class TraceBuffer {
 public:
  explicit TraceBuffer(std::size_t capacity) : capacity_(capacity) {}

  void record(TraceEvent event);
  /// Rebounds the ring, keeping the newest `capacity` events (0 disables
  /// retention; `recorded()` still counts).  Capacity runs size the ring
  /// down so tracing stays O(1) regardless of population.
  void set_capacity(std::size_t capacity);
  /// Events oldest-first (at most `capacity()` of them).
  std::vector<TraceEvent> snapshot() const;
  std::size_t size() const;
  std::size_t capacity() const { return capacity_; }
  std::uint64_t recorded() const { return recorded_; }
  std::uint64_t dropped() const {
    return recorded_ - static_cast<std::uint64_t>(size());
  }
  void clear();

 private:
  std::size_t capacity_;
  std::size_t head_ = 0;  // next write slot once the ring wrapped
  std::uint64_t recorded_ = 0;
  std::vector<TraceEvent> ring_;
};

/// Owns every instrument and the trace buffer. Instruments are created on
/// first lookup and live as long as the registry, so callers may cache the
/// returned references.
class Registry {
 public:
  static constexpr std::size_t kDefaultTraceCapacity = 4096;

  explicit Registry(std::size_t trace_capacity = kDefaultTraceCapacity)
      : trace_(trace_capacity) {}
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  /// Process-wide registry the built-in instrumentation records into.
  static Registry& global();

  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }
  /// Flip only at quiescent points (no shard worker mid-window): the flag
  /// is atomic, but instruments gate on it per record, so toggling mid-run
  /// splits which records land.
  void set_enabled(bool on) {
    enabled_.store(on, std::memory_order_relaxed);
  }

  // --- instruments ----------------------------------------------------------
  Counter& counter(const std::string& name, const Labels& labels = {});
  Gauge& gauge(const std::string& name, const Labels& labels = {});
  HistogramMetric& histogram(const std::string& name,
                             const Labels& labels = {});

  // --- tracing --------------------------------------------------------------
  /// Records a trace event (no-op while disabled).
  void trace(util::SimTime at, TraceKind kind, std::string name,
             std::string detail = {});
  /// Rebounds the trace ring (keeping the newest events).  Sharded capacity
  /// campaigns shrink this per run so N shards' worth of tracing stays a
  /// fixed fraction of the footprint budget.  Call at quiescent points.
  void set_trace_capacity(std::size_t capacity);
  const TraceBuffer& trace_buffer() const { return trace_; }

  // --- export / inspection --------------------------------------------------
  struct Series {
    std::string name;
    Labels labels;
  };
  template <typename T>
  using Family = std::map<std::pair<std::string, Labels>, std::unique_ptr<T>>;

  /// Export-side views: iterate only at quiescent points (concurrent
  /// instrument *creation* would rehash/rebalance under the reader).
  const Family<Counter>& counters() const { return counters_; }
  const Family<Gauge>& gauges() const { return gauges_; }
  const Family<HistogramMetric>& histograms() const { return histograms_; }

  /// Zeroes every counter/gauge/histogram and clears the trace, keeping the
  /// instruments alive (handles cached by instrumented objects stay valid).
  /// Benches use this to scope the exported metrics to the measured run.
  void reset_values();

 private:
  static Labels canonical(Labels labels);

  std::atomic<bool> enabled_{false};
  /// Guards instrument creation (the family maps) and the trace ring —
  /// cold paths; recording into existing instruments never takes it.
  mutable std::mutex mu_;
  Family<Counter> counters_;
  Family<Gauge> gauges_;
  Family<HistogramMetric> histograms_;
  TraceBuffer trace_;
};

}  // namespace aars::obs
