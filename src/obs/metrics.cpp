#include "obs/metrics.h"

#include <algorithm>
#include <cctype>

namespace aars::obs {

std::string sanitize_trace_name(std::string name) {
  // Collapse one or more trailing "_r<digits>" generated-instance suffixes
  // into a single "_r*" wildcard.
  std::size_t end = name.size();
  bool stripped = false;
  while (true) {
    // Find a "_r<digits>" run ending at `end`.
    std::size_t digits = 0;
    while (digits < end &&
           std::isdigit(static_cast<unsigned char>(name[end - 1 - digits])) !=
               0) {
      ++digits;
    }
    if (digits == 0 || end - digits < 2) break;
    if (name[end - digits - 1] != 'r' || name[end - digits - 2] != '_') break;
    end -= digits + 2;
    stripped = true;
  }
  if (stripped) {
    name.erase(end);
    name += "_r*";
  }
  if (name.size() > kMaxTraceNameLength) {
    name.erase(kMaxTraceNameLength - 3);
    name += "...";
  }
  return name;
}

// --- TraceBuffer --------------------------------------------------------------

void TraceBuffer::record(TraceEvent event) {
  if (capacity_ == 0) {
    ++recorded_;
    return;
  }
  if (ring_.size() < capacity_) {
    ring_.push_back(std::move(event));
  } else {
    ring_[head_] = std::move(event);
    head_ = (head_ + 1) % capacity_;
  }
  ++recorded_;
}

void TraceBuffer::set_capacity(std::size_t capacity) {
  if (capacity == capacity_) return;
  // Keep the newest events (snapshot is oldest-first, so take its tail).
  std::vector<TraceEvent> ordered = snapshot();
  if (ordered.size() > capacity) {
    ordered.erase(ordered.begin(),
                  ordered.end() - static_cast<std::ptrdiff_t>(capacity));
  }
  capacity_ = capacity;
  ring_ = std::move(ordered);
  ring_.shrink_to_fit();
  head_ = 0;
}

std::size_t TraceBuffer::size() const { return ring_.size(); }

std::vector<TraceEvent> TraceBuffer::snapshot() const {
  std::vector<TraceEvent> out;
  out.reserve(ring_.size());
  // Once wrapped, `head_` is the oldest entry.
  for (std::size_t i = 0; i < ring_.size(); ++i) {
    out.push_back(ring_[(head_ + i) % ring_.size()]);
  }
  return out;
}

void TraceBuffer::clear() {
  ring_.clear();
  head_ = 0;
  recorded_ = 0;
}

// --- Registry ----------------------------------------------------------------

Registry& Registry::global() {
  static Registry instance;
  return instance;
}

Labels Registry::canonical(Labels labels) {
  std::sort(labels.begin(), labels.end());
  labels.erase(std::unique(labels.begin(), labels.end(),
                           [](const auto& a, const auto& b) {
                             return a.first == b.first;
                           }),
               labels.end());
  return labels;
}

Counter& Registry::counter(const std::string& name, const Labels& labels) {
  const auto key = std::make_pair(name, canonical(labels));
  std::lock_guard<std::mutex> lock(mu_);
  auto it = counters_.find(key);
  if (it == counters_.end()) {
    it = counters_
             .emplace(key, std::unique_ptr<Counter>(new Counter(&enabled_)))
             .first;
  }
  return *it->second;
}

Gauge& Registry::gauge(const std::string& name, const Labels& labels) {
  const auto key = std::make_pair(name, canonical(labels));
  std::lock_guard<std::mutex> lock(mu_);
  auto it = gauges_.find(key);
  if (it == gauges_.end()) {
    it = gauges_.emplace(key, std::unique_ptr<Gauge>(new Gauge(&enabled_)))
             .first;
  }
  return *it->second;
}

HistogramMetric& Registry::histogram(const std::string& name,
                                     const Labels& labels) {
  const auto key = std::make_pair(name, canonical(labels));
  std::lock_guard<std::mutex> lock(mu_);
  auto it = histograms_.find(key);
  if (it == histograms_.end()) {
    it = histograms_
             .emplace(key, std::unique_ptr<HistogramMetric>(
                               new HistogramMetric(&enabled_)))
             .first;
  }
  return *it->second;
}

void Registry::trace(util::SimTime at, TraceKind kind, std::string name,
                     std::string detail) {
  if (!enabled()) return;
  std::lock_guard<std::mutex> lock(mu_);
  trace_.record(TraceEvent{at, kind, sanitize_trace_name(std::move(name)),
                           std::move(detail)});
}

void Registry::set_trace_capacity(std::size_t capacity) {
  std::lock_guard<std::mutex> lock(mu_);
  trace_.set_capacity(capacity);
}

void Registry::reset_values() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [key, c] : counters_) {
    c->value_.store(0, std::memory_order_relaxed);
  }
  for (auto& [key, g] : gauges_) {
    g->value_.store(0.0, std::memory_order_relaxed);
    g->high_water_.store(0.0, std::memory_order_relaxed);
  }
  for (auto& [key, h] : histograms_) h->samples_.reset();
  trace_.clear();
}

}  // namespace aars::obs
