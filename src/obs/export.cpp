#include "obs/export.h"

#include <cmath>
#include <cstdio>
#include <sstream>

namespace aars::obs {
namespace {

std::string pad(int indent) { return std::string(static_cast<std::size_t>(indent), ' '); }

/// JSON has no NaN/Inf; clamp to null-adjacent zero rather than emitting an
/// invalid document.
std::string num(double v) {
  if (!std::isfinite(v)) return "0";
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.6g", v);
  return buffer;
}

void append_labels(std::ostringstream& out, const Labels& labels) {
  out << "{";
  bool first = true;
  for (const auto& [k, v] : labels) {
    if (!first) out << ", ";
    first = false;
    out << '"' << json_escape(k) << "\": \"" << json_escape(v) << '"';
  }
  out << "}";
}

}  // namespace

std::string json_escape(const std::string& raw) {
  std::string out;
  out.reserve(raw.size());
  for (const char c : raw) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof(buffer), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buffer;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string to_json(const Registry& registry, int indent) {
  const std::string p0 = pad(indent);
  const std::string p1 = pad(indent + 2);
  const std::string p2 = pad(indent + 4);
  std::ostringstream out;
  out << "{\n";

  out << p1 << "\"counters\": [";
  bool first = true;
  for (const auto& [key, counter] : registry.counters()) {
    out << (first ? "\n" : ",\n") << p2 << "{\"name\": \""
        << json_escape(key.first) << "\", \"labels\": ";
    append_labels(out, key.second);
    out << ", \"value\": " << counter->value() << "}";
    first = false;
  }
  out << (first ? "" : "\n" + p1) << "],\n";

  out << p1 << "\"gauges\": [";
  first = true;
  for (const auto& [key, gauge] : registry.gauges()) {
    out << (first ? "\n" : ",\n") << p2 << "{\"name\": \""
        << json_escape(key.first) << "\", \"labels\": ";
    append_labels(out, key.second);
    out << ", \"value\": " << num(gauge->value())
        << ", \"high_water\": " << num(gauge->high_water()) << "}";
    first = false;
  }
  out << (first ? "" : "\n" + p1) << "],\n";

  out << p1 << "\"histograms\": [";
  first = true;
  for (const auto& [key, hist] : registry.histograms()) {
    const util::Histogram& h = hist->samples();
    out << (first ? "\n" : ",\n") << p2 << "{\"name\": \""
        << json_escape(key.first) << "\", \"labels\": ";
    append_labels(out, key.second);
    out << ", \"count\": " << h.count() << ", \"mean\": " << num(h.mean())
        << ", \"p50\": " << num(h.p50()) << ", \"p95\": " << num(h.p95())
        << ", \"p99\": " << num(h.p99()) << ", \"max\": " << num(h.max())
        << "}";
    first = false;
  }
  out << (first ? "" : "\n" + p1) << "],\n";

  const TraceBuffer& trace = registry.trace_buffer();
  out << p1 << "\"trace\": {\n";
  out << p2 << "\"capacity\": " << trace.capacity() << ",\n";
  out << p2 << "\"recorded\": " << trace.recorded() << ",\n";
  out << p2 << "\"dropped\": " << trace.dropped() << ",\n";
  out << p2 << "\"events\": [";
  first = true;
  for (const TraceEvent& event : trace.snapshot()) {
    out << (first ? "\n" : ",\n") << pad(indent + 6) << "{\"at\": "
        << event.at << ", \"kind\": \"" << to_string(event.kind)
        << "\", \"name\": \"" << json_escape(event.name)
        << "\", \"detail\": \"" << json_escape(event.detail) << "\"}";
    first = false;
  }
  out << (first ? "" : "\n" + p2) << "]\n";
  out << p1 << "}\n";

  out << p0 << "}";
  return out.str();
}

bool write_json_file(const Registry& registry, const std::string& path,
                     const std::string& experiment,
                     const std::string& extra_members) {
  std::FILE* file = std::fopen(path.c_str(), "w");
  if (file == nullptr) return false;
  std::string body = "{\n  \"experiment\": \"" + json_escape(experiment) +
                     "\",\n";
  if (!extra_members.empty()) body += "  " + extra_members + ",\n";
  body += "  \"metrics\": " + to_json(registry, 2) + "\n}\n";
  const std::size_t written =
      std::fwrite(body.data(), 1, body.size(), file);
  std::fclose(file);
  return written == body.size();
}

}  // namespace aars::obs
