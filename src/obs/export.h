// JSON export for the observability registry.
//
// Renders a Registry as a stable, diffable JSON object so benches and
// experiments can attach a "metrics" section to their reports
// (BENCH_*.json).  Schema (see EXPERIMENTS.md "Metrics & trace schema"):
//
//   {
//     "counters":   [{"name": ..., "labels": {...}, "value": N}, ...],
//     "gauges":     [{"name": ..., "labels": {...},
//                     "value": x, "high_water": y}, ...],
//     "histograms": [{"name": ..., "labels": {...}, "count": N,
//                     "mean": x, "p50": x, "p95": x, "p99": x,
//                     "max": x}, ...],
//     "trace": {"capacity": N, "recorded": N, "dropped": N,
//               "events": [{"at": t, "kind": ..., "name": ...,
//                           "detail": ...}, ...]}
//   }
#pragma once

#include <string>

#include "obs/metrics.h"

namespace aars::obs {

/// Escapes a string for inclusion inside a JSON string literal.
std::string json_escape(const std::string& raw);

/// Renders the registry as the JSON object above. `indent` is the leading
/// indentation (spaces) applied to every line, so the object can be nested
/// inside a larger document; the first line carries no indent.
std::string to_json(const Registry& registry, int indent = 0);

/// Writes `{"experiment": <name>, <extra_members,> "metrics":
/// <to_json(registry)>}` to `path`. `extra_members`, when non-empty, is a
/// pre-rendered JSON fragment of additional top-level members (no leading
/// or trailing comma), e.g. `"perf": {...}` — bench/common.h uses it for
/// the wall-clock/events-per-sec/RSS section. Returns false (and leaves no
/// partial file guarantees) when the file cannot be opened.
bool write_json_file(const Registry& registry, const std::string& path,
                     const std::string& experiment,
                     const std::string& extra_members = "");

}  // namespace aars::obs
