// Small string helpers shared by the ADL front-end and reporting code.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace aars::util {

/// Splits on a single-character delimiter; keeps empty fields.
std::vector<std::string> split(std::string_view text, char delim);

/// Strips ASCII whitespace from both ends.
std::string_view trim(std::string_view text);

bool starts_with(std::string_view text, std::string_view prefix);
bool ends_with(std::string_view text, std::string_view suffix);

/// Joins items with a separator.
std::string join(const std::vector<std::string>& items,
                 std::string_view separator);

/// True for [A-Za-z_][A-Za-z0-9_.]* — the identifier shape used by the ADL
/// and by port references like "camera.out".
bool is_identifier(std::string_view text);

/// printf-style formatting into a std::string.
std::string format(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

}  // namespace aars::util
