#include "util/rng.h"

#include <algorithm>
#include <cmath>

#include "util/errors.h"

namespace aars::util {

double Rng::uniform() {
  return std::uniform_real_distribution<double>(0.0, 1.0)(engine_);
}

double Rng::uniform(double lo, double hi) {
  return std::uniform_real_distribution<double>(lo, hi)(engine_);
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  return std::uniform_int_distribution<std::int64_t>(lo, hi)(engine_);
}

double Rng::exponential(double mean) {
  require(mean > 0.0, "exponential mean must be positive");
  return std::exponential_distribution<double>(1.0 / mean)(engine_);
}

double Rng::normal(double mean, double stddev) {
  return std::normal_distribution<double>(mean, stddev)(engine_);
}

bool Rng::chance(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return uniform() < p;
}

double Rng::pareto(double shape, double scale) {
  require(shape > 0.0 && scale > 0.0, "pareto parameters must be positive");
  const double u = 1.0 - uniform();
  return scale / std::pow(u, 1.0 / shape);
}

std::size_t Rng::weighted_index(const std::vector<double>& weights) {
  double total = 0.0;
  for (double w : weights) total += std::max(w, 0.0);
  require(total > 0.0, "weighted_index requires a positive weight");
  double x = uniform(0.0, total);
  for (std::size_t i = 0; i < weights.size(); ++i) {
    x -= std::max(weights[i], 0.0);
    if (x <= 0.0) return i;
  }
  return weights.size() - 1;
}

Duration Rng::poisson_gap(double events_per_second) {
  require(events_per_second > 0.0, "poisson rate must be positive");
  const double gap_seconds = exponential(1.0 / events_per_second);
  const double exact_micros =
      gap_seconds * static_cast<double>(kSecond) + gap_carry_;
  const auto micros = static_cast<Duration>(exact_micros);  // floor: >= 0
  gap_carry_ = exact_micros - static_cast<double>(micros);
  return micros;
}

}  // namespace aars::util
