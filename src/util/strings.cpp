#include "util/strings.h"

#include <cctype>
#include <cstdarg>
#include <cstdio>

namespace aars::util {

std::vector<std::string> split(std::string_view text, char delim) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (true) {
    const std::size_t pos = text.find(delim, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(text.substr(start));
      return out;
    }
    out.emplace_back(text.substr(start, pos - start));
    start = pos + 1;
  }
}

std::string_view trim(std::string_view text) {
  std::size_t begin = 0;
  std::size_t end = text.size();
  while (begin < end && std::isspace(static_cast<unsigned char>(text[begin]))) {
    ++begin;
  }
  while (end > begin &&
         std::isspace(static_cast<unsigned char>(text[end - 1]))) {
    --end;
  }
  return text.substr(begin, end - begin);
}

bool starts_with(std::string_view text, std::string_view prefix) {
  return text.size() >= prefix.size() &&
         text.substr(0, prefix.size()) == prefix;
}

bool ends_with(std::string_view text, std::string_view suffix) {
  return text.size() >= suffix.size() &&
         text.substr(text.size() - suffix.size()) == suffix;
}

std::string join(const std::vector<std::string>& items,
                 std::string_view separator) {
  std::string out;
  for (std::size_t i = 0; i < items.size(); ++i) {
    if (i > 0) out += separator;
    out += items[i];
  }
  return out;
}

bool is_identifier(std::string_view text) {
  if (text.empty()) return false;
  const auto head = static_cast<unsigned char>(text.front());
  if (!std::isalpha(head) && head != '_') return false;
  for (char c : text.substr(1)) {
    const auto uc = static_cast<unsigned char>(c);
    if (!std::isalnum(uc) && uc != '_' && uc != '.') return false;
  }
  return true;
}

std::string format(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list copy;
  va_copy(copy, args);
  const int needed = std::vsnprintf(nullptr, 0, fmt, copy);
  va_end(copy);
  std::string out;
  if (needed > 0) {
    out.resize(static_cast<std::size_t>(needed));
    std::vsnprintf(out.data(), out.size() + 1, fmt, args);
  }
  va_end(args);
  return out;
}

}  // namespace aars::util
