// Online statistics used by QoS monitors and benchmark reporting.
#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <vector>

#include "util/time.h"

namespace aars::util {

/// Welford running mean/variance plus min/max. O(1) per sample.
class RunningStats {
 public:
  void add(double x);
  void reset();

  std::size_t count() const { return count_; }
  double mean() const { return count_ ? mean_ : 0.0; }
  double variance() const;
  double stddev() const;
  double min() const { return count_ ? min_ : 0.0; }
  double max() const { return count_ ? max_ : 0.0; }
  double sum() const { return sum_; }

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
};

/// Stores all samples; supports exact percentiles. Use for bounded-size
/// experiment outputs (latency distributions), not for unbounded streams.
class Histogram {
 public:
  void add(double x) { samples_.push_back(x); }
  std::size_t count() const { return samples_.size(); }
  double mean() const;
  /// Exact percentile by nearest-rank, q in [0,1]. Returns 0 when empty.
  double percentile(double q) const;
  double p50() const { return percentile(0.50); }
  double p95() const { return percentile(0.95); }
  double p99() const { return percentile(0.99); }
  double max() const { return percentile(1.0); }
  // Clears the sorted cache too: the rebuild check compares sizes, and a
  // reset followed by the same number of adds would otherwise serve stale
  // percentiles.
  void reset() {
    samples_.clear();
    sorted_.clear();
  }

 private:
  std::vector<double> samples_;
  mutable std::vector<double> sorted_;  // cache invalidated lazily
};

/// Time-windowed statistics: samples older than `window` (relative to the
/// latest observation) are evicted. Used by QoS monitors on the sim clock.
class SlidingWindow {
 public:
  explicit SlidingWindow(Duration window) : window_(window) {}

  void add(SimTime now, double x);
  /// Drops samples older than now - window.
  void advance(SimTime now);

  std::size_t count() const { return samples_.size(); }
  double mean() const;
  double min() const;
  double max() const;
  /// Samples per simulated second over the window span.
  double rate(SimTime now) const;
  Duration window() const { return window_; }

 private:
  Duration window_;
  std::deque<std::pair<SimTime, double>> samples_;
};

/// Exponentially weighted moving average.
class Ewma {
 public:
  explicit Ewma(double alpha) : alpha_(alpha) {}
  void add(double x);
  double value() const { return value_; }
  bool empty() const { return !seeded_; }

 private:
  double alpha_;
  double value_ = 0.0;
  bool seeded_ = false;
};

}  // namespace aars::util
