#include "util/stats.h"

#include <algorithm>
#include <cmath>

namespace aars::util {

void RunningStats::add(double x) {
  if (count_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

void RunningStats::reset() { *this = RunningStats{}; }

double RunningStats::variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double Histogram::mean() const {
  if (samples_.empty()) return 0.0;
  double sum = 0.0;
  for (double x : samples_) sum += x;
  return sum / static_cast<double>(samples_.size());
}

double Histogram::percentile(double q) const {
  if (samples_.empty()) return 0.0;
  if (sorted_.size() != samples_.size()) {
    sorted_ = samples_;
    std::sort(sorted_.begin(), sorted_.end());
  }
  q = std::clamp(q, 0.0, 1.0);
  // Nearest-rank definition: the smallest value with at least q*n samples
  // at or below it.
  const auto rank = static_cast<std::size_t>(
      std::ceil(q * static_cast<double>(sorted_.size())));
  const std::size_t index = rank == 0 ? 0 : rank - 1;
  return sorted_[std::min(index, sorted_.size() - 1)];
}

void SlidingWindow::add(SimTime now, double x) {
  samples_.emplace_back(now, x);
  advance(now);
}

void SlidingWindow::advance(SimTime now) {
  const SimTime horizon = now - window_;
  while (!samples_.empty() && samples_.front().first < horizon) {
    samples_.pop_front();
  }
}

double SlidingWindow::mean() const {
  if (samples_.empty()) return 0.0;
  double sum = 0.0;
  for (const auto& [t, x] : samples_) sum += x;
  return sum / static_cast<double>(samples_.size());
}

double SlidingWindow::min() const {
  if (samples_.empty()) return 0.0;
  double m = samples_.front().second;
  for (const auto& [t, x] : samples_) m = std::min(m, x);
  return m;
}

double SlidingWindow::max() const {
  if (samples_.empty()) return 0.0;
  double m = samples_.front().second;
  for (const auto& [t, x] : samples_) m = std::max(m, x);
  return m;
}

double SlidingWindow::rate(SimTime now) const {
  if (samples_.empty()) return 0.0;
  const SimTime span = std::max<SimTime>(now - samples_.front().first, 1);
  return static_cast<double>(samples_.size()) /
         (static_cast<double>(span) / static_cast<double>(kSecond));
}

void Ewma::add(double x) {
  if (!seeded_) {
    value_ = x;
    seeded_ = true;
  } else {
    value_ = alpha_ * x + (1.0 - alpha_) * value_;
  }
}

}  // namespace aars::util
