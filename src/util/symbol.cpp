#include "util/symbol.h"

#include <deque>
#include <mutex>
#include <unordered_map>

namespace aars::util {
namespace {

/// Append-only intern table.  `storage` owns the strings (deque: growth
/// never relocates existing entries, so published `const std::string*`
/// stay valid for the process lifetime); `index` maps contents to the
/// canonical entry.  Guarded by a mutex so concurrent tooling/tests may
/// intern safely; lookups of already-interned Symbols never come here.
struct InternTable {
  std::mutex mu;
  std::deque<std::string> storage;
  std::unordered_map<std::string_view, const std::string*> index;
};

InternTable& table() {
  static InternTable* t = new InternTable();  // intentionally leaked
  return *t;
}

}  // namespace

namespace {

/// Mutex-guarded slow path into the global table.
const std::string* intern_global(std::string_view s) {
  InternTable& t = table();
  std::lock_guard<std::mutex> lock(t.mu);
  auto it = t.index.find(s);
  if (it != t.index.end()) return it->second;
  t.storage.emplace_back(s);
  const std::string* entry = &t.storage.back();
  t.index.emplace(std::string_view(*entry), entry);
  return entry;
}

}  // namespace

const std::string* Symbol::intern(std::string_view s) {
  // Per-thread read cache in front of the global table: repeated interning
  // of the same names (the common case — operation/port names come from a
  // tiny universe) resolves without taking the global mutex, which would
  // otherwise serialize every shard thread on every Symbol construction
  // from a string.  Keys are views into the canonical interned storage
  // (immortal, stable addresses), so the cache never dangles.  The cap
  // bounds pathological workloads that mint unbounded distinct names; a
  // flush only costs re-priming from the global table.
  constexpr std::size_t kThreadCacheCap = 1 << 16;
  thread_local std::unordered_map<std::string_view, const std::string*> cache;
  if (auto it = cache.find(s); it != cache.end()) return it->second;
  const std::string* entry = intern_global(s);
  if (cache.size() >= kThreadCacheCap) cache.clear();
  cache.emplace(std::string_view(*entry), entry);
  return entry;
}

std::size_t Symbol::table_size() {
  InternTable& t = table();
  std::lock_guard<std::mutex> lock(t.mu);
  return t.storage.size();
}

}  // namespace aars::util
