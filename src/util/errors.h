// Error model of the runtime.
//
// Two kinds of failures exist in an adaptive system:
//  * programming/configuration errors (invalid ADL, binding to a missing
//    port, ...) -> reported as `Error` values through `Result<T>` so that a
//    management layer (RAML) can observe and react to them;
//  * violated invariants inside the runtime itself -> exceptions
//    (`InvariantViolation`), which abort the affected operation.
#pragma once

#include <optional>
#include <stdexcept>
#include <string>
#include <utility>
#include <variant>

namespace aars::util {

/// Machine-inspectable error categories. RAML rules can match on these.
enum class ErrorCode {
  kOk = 0,
  kNotFound,
  kAlreadyExists,
  kInvalidArgument,
  kIncompatible,       // interface/protocol mismatch
  kNotQuiescent,       // reconfiguration attempted on an active region
  kResourceExhausted,  // capacity, bandwidth, queue overflow
  kUnavailable,        // target component passivated/removed
  kTimeout,
  kCycleDetected,      // rule graph / calling tree cycle
  kParseError,         // ADL front-end
  kStateTransfer,      // snapshot/restore failure
  kRejected,           // admission/permission denied
  kOverloaded,         // load shed: backpressure, breaker open, queue cap
  kVerificationFailed, // static plan verification rejected the change
  kInternal,
};

/// Human-readable name for an error code (stable, used in logs and tests).
constexpr const char* to_string(ErrorCode code) {
  switch (code) {
    case ErrorCode::kOk: return "ok";
    case ErrorCode::kNotFound: return "not_found";
    case ErrorCode::kAlreadyExists: return "already_exists";
    case ErrorCode::kInvalidArgument: return "invalid_argument";
    case ErrorCode::kIncompatible: return "incompatible";
    case ErrorCode::kNotQuiescent: return "not_quiescent";
    case ErrorCode::kResourceExhausted: return "resource_exhausted";
    case ErrorCode::kUnavailable: return "unavailable";
    case ErrorCode::kTimeout: return "timeout";
    case ErrorCode::kCycleDetected: return "cycle_detected";
    case ErrorCode::kParseError: return "parse_error";
    case ErrorCode::kStateTransfer: return "state_transfer";
    case ErrorCode::kRejected: return "rejected";
    case ErrorCode::kOverloaded: return "overloaded";
    case ErrorCode::kVerificationFailed: return "verification_failed";
    case ErrorCode::kInternal: return "internal";
  }
  return "unknown";
}

/// A failure description: code + context message.
class Error {
 public:
  Error(ErrorCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  ErrorCode code() const { return code_; }
  const std::string& message() const { return message_; }

  std::string to_string() const {
    return std::string(util::to_string(code_)) + ": " + message_;
  }

 private:
  ErrorCode code_;
  std::string message_;
};

/// Minimal expected-like result type (the toolchain's std::expected is not
/// assumed). Holds either a value or an Error.
template <typename T>
class Result {
 public:
  Result(T value) : data_(std::move(value)) {}          // NOLINT implicit
  Result(Error error) : data_(std::move(error)) {}      // NOLINT implicit
  Result(ErrorCode code, std::string message)
      : data_(Error{code, std::move(message)}) {}

  bool ok() const { return std::holds_alternative<T>(data_); }
  explicit operator bool() const { return ok(); }

  /// Precondition: ok().
  const T& value() const& { return std::get<T>(data_); }
  T& value() & { return std::get<T>(data_); }
  T&& value() && { return std::get<T>(std::move(data_)); }

  /// Precondition: !ok().
  const Error& error() const { return std::get<Error>(data_); }
  ErrorCode code() const {
    return ok() ? ErrorCode::kOk : error().code();
  }

  const T& value_or(const T& fallback) const {
    return ok() ? value() : fallback;
  }

 private:
  std::variant<T, Error> data_;
};

/// Result with no payload: success or an Error.
class Status {
 public:
  Status() = default;  // success
  Status(Error error) : error_(std::move(error)) {}  // NOLINT implicit
  Status(ErrorCode code, std::string message)
      : error_(Error{code, std::move(message)}) {}

  static Status success() { return Status{}; }

  bool ok() const { return !error_.has_value(); }
  explicit operator bool() const { return ok(); }

  /// Precondition: !ok().
  const Error& error() const { return *error_; }
  ErrorCode code() const { return ok() ? ErrorCode::kOk : error_->code(); }
  std::string to_string() const { return ok() ? "ok" : error_->to_string(); }

 private:
  std::optional<Error> error_;
};

}  // namespace aars::util

namespace aars {
// Public spellings of the error model: mutation APIs across the repo
// (reconfig engine, deployer, runtime facade) report `aars::Status` — a
// code + message pair — instead of bool/sentinel returns.
using util::Error;
using util::ErrorCode;
using util::Status;
template <typename T>
using Result = util::Result<T>;
}  // namespace aars

namespace aars::util {

/// Thrown when an internal invariant of the runtime is broken. Indicates a
/// bug in the runtime, never a recoverable configuration error.
class InvariantViolation : public std::logic_error {
 public:
  explicit InvariantViolation(const std::string& what)
      : std::logic_error("invariant violation: " + what) {}
};

/// Checks a runtime invariant; throws InvariantViolation when broken.
inline void require(bool condition, const char* what) {
  if (!condition) throw InvariantViolation(what);
}

}  // namespace aars::util
