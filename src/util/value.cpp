#include "util/value.h"

#include <sstream>

namespace aars::util {

Value Value::object(std::initializer_list<std::pair<std::string, Value>> kv) {
  ValueMap m;
  for (const auto& [k, v] : kv) m.emplace(k, v);
  return Value{std::move(m)};
}

Value Value::list(std::initializer_list<Value> items) {
  return Value{ValueList(items)};
}

namespace {
[[noreturn]] void type_error(ValueType want, ValueType got) {
  throw InvariantViolation(std::string("Value type mismatch: wanted ") +
                           to_string(want) + ", got " + to_string(got));
}
}  // namespace

bool Value::as_bool() const {
  if (!is_bool()) type_error(ValueType::kBool, type());
  return std::get<bool>(data_);
}

std::int64_t Value::as_int() const {
  if (!is_int()) type_error(ValueType::kInt, type());
  return std::get<std::int64_t>(data_);
}

double Value::as_double() const {
  if (is_int()) return static_cast<double>(std::get<std::int64_t>(data_));
  if (!is_double()) type_error(ValueType::kDouble, type());
  return std::get<double>(data_);
}

const std::string& Value::as_string() const {
  if (!is_string()) type_error(ValueType::kString, type());
  return std::get<std::string>(data_);
}

const ValueList& Value::as_list() const {
  if (!is_list()) type_error(ValueType::kList, type());
  return *std::get<ListPtr>(data_);
}

/// Copy-on-write detach point: clone the node iff another Value still
/// references it, then hand out a reference into the now-unique copy.
ValueList& Value::mutable_list() {
  ListPtr& p = std::get<ListPtr>(data_);
  if (p.use_count() > 1) p = std::make_shared<ValueList>(*p);
  return *p;
}

ValueList& Value::as_list() {
  if (!is_list()) type_error(ValueType::kList, type());
  return mutable_list();
}

const ValueMap& Value::as_map() const {
  if (!is_map()) type_error(ValueType::kMap, type());
  return *std::get<MapPtr>(data_);
}

ValueMap& Value::mutable_map() {
  MapPtr& p = std::get<MapPtr>(data_);
  if (p.use_count() > 1) p = std::make_shared<ValueMap>(*p);
  return *p;
}

ValueMap& Value::as_map() {
  if (!is_map()) type_error(ValueType::kMap, type());
  return mutable_map();
}

const Value& null_value() {
  static const Value kNull{};
  return kNull;
}

const Value& Value::at(std::string_view key) const {
  if (!is_map()) return null_value();
  const ValueMap& m = *std::get<MapPtr>(data_);
  auto it = m.find(key);
  return it == m.end() ? null_value() : it->second;
}

Value Value::get_or(std::string_view key, Value fallback) const {
  const Value& v = at(key);
  return v.is_null() ? std::move(fallback) : v;
}

Value& Value::operator[](const std::string& key) {
  if (is_null()) data_ = std::make_shared<ValueMap>();
  if (!is_map()) type_error(ValueType::kMap, type());
  return mutable_map()[key];
}

bool Value::contains(std::string_view key) const {
  if (!is_map()) return false;
  const ValueMap& m = *std::get<MapPtr>(data_);
  return m.find(key) != m.end();
}

const Value& Value::item(std::size_t index) const {
  const auto& l = as_list();
  require(index < l.size(), "Value::item index out of range");
  return l[index];
}

std::size_t Value::size() const {
  if (is_list()) return as_list().size();
  if (is_map()) return std::get<MapPtr>(data_)->size();
  if (is_string()) return std::get<std::string>(data_).size();
  return 0;
}

bool Value::shares_storage_with(const Value& other) const {
  if (is_list() && other.is_list()) {
    return std::get<ListPtr>(data_) == std::get<ListPtr>(other.data_);
  }
  if (is_map() && other.is_map()) {
    return std::get<MapPtr>(data_) == std::get<MapPtr>(other.data_);
  }
  return false;
}

void Value::deep_detach() {
  if (is_list()) {
    // mutable_list() detaches this node when shared; then detach children
    // unconditionally — a uniquely-held node may still hold shared children.
    for (Value& v : mutable_list()) v.deep_detach();
  } else if (is_map()) {
    for (auto& [k, v] : mutable_map()) v.deep_detach();
  }
}

bool operator==(const Value& a, const Value& b) {
  if (a.data_.index() != b.data_.index()) return false;
  switch (a.type()) {
    case ValueType::kNull: return true;
    case ValueType::kBool: return a.as_bool() == b.as_bool();
    case ValueType::kInt: return a.as_int() == b.as_int();
    case ValueType::kDouble: return a.as_double() == b.as_double();
    case ValueType::kString: return a.as_string() == b.as_string();
    case ValueType::kList: {
      // Shared node => structurally equal without walking the tree.
      if (a.shares_storage_with(b)) return true;
      return a.as_list() == b.as_list();
    }
    case ValueType::kMap: {
      if (a.shares_storage_with(b)) return true;
      return a.as_map() == b.as_map();
    }
  }
  return false;
}

namespace {
void render(const Value& v, std::ostringstream& os) {
  switch (v.type()) {
    case ValueType::kNull: os << "null"; break;
    case ValueType::kBool: os << (v.as_bool() ? "true" : "false"); break;
    case ValueType::kInt: os << v.as_int(); break;
    case ValueType::kDouble: os << v.as_double(); break;
    case ValueType::kString: os << '"' << v.as_string() << '"'; break;
    case ValueType::kList: {
      os << '[';
      bool first = true;
      for (const auto& item : v.as_list()) {
        if (!first) os << ',';
        first = false;
        render(item, os);
      }
      os << ']';
      break;
    }
    case ValueType::kMap: {
      os << '{';
      bool first = true;
      for (const auto& [k, item] : v.as_map()) {
        if (!first) os << ',';
        first = false;
        os << '"' << k << "\":";
        render(item, os);
      }
      os << '}';
      break;
    }
  }
}
}  // namespace

std::string Value::to_string() const {
  std::ostringstream os;
  render(*this, os);
  return os.str();
}

std::size_t Value::deep_byte_size() const {
  switch (type()) {
    case ValueType::kNull: return 1;
    case ValueType::kBool: return 1;
    case ValueType::kInt: return 8;
    case ValueType::kDouble: return 8;
    case ValueType::kString: return 8 + as_string().size();
    case ValueType::kList: {
      std::size_t total = 8;
      for (const auto& v : as_list()) total += v.byte_size();
      return total;
    }
    case ValueType::kMap: {
      std::size_t total = 8;
      for (const auto& [k, v] : as_map()) total += k.size() + v.byte_size();
      return total;
    }
  }
  return 0;
}

}  // namespace aars::util
