#include "util/logging.h"

#include <cstdio>

namespace aars::util {

Logger::Logger() {
  sink_ = [](LogLevel level, const std::string& message) {
    std::fprintf(stderr, "[%s] %s\n", to_string(level), message.c_str());
  };
}

Logger& Logger::instance() {
  static Logger logger;
  return logger;
}

void Logger::set_sink(Sink sink) {
  if (sink) {
    sink_ = std::move(sink);
  } else {
    sink_ = [](LogLevel level, const std::string& message) {
      std::fprintf(stderr, "[%s] %s\n", to_string(level), message.c_str());
    };
  }
}

void Logger::write(LogLevel level, const std::string& message) {
  if (!enabled(level)) return;
  sink_(level, message);
}

}  // namespace aars::util
