// Interned strings for hot-path names.
//
// Operation names, port names and metric label values recur millions of
// times per run but come from a tiny universe.  `Symbol` interns the string
// once in a process-wide table and afterwards is a single pointer: copying
// is trivial (no allocation), equality is pointer comparison, and the
// character data lives forever at a stable address.
//
// Symbol converts implicitly to and from std::string so existing call sites
// (`message.operation == "ping"`, `record.operation.size()`) compile
// unchanged.  Ordering (`operator<`) compares the *string contents*, not
// the pointers, so any ordered container keyed by Symbol iterates in the
// same deterministic order as one keyed by std::string — interning must
// never perturb simulation output.
//
// The table is append-only and mutex-guarded; reads of already-interned
// strings (`str()`) take no lock because entries are immutable once
// published and deque growth never moves them.  Construction from a string
// goes through a per-thread cache in front of the global table, so
// steady-state interning of known names is contention-free even with many
// shard threads interning concurrently (the global mutex is only taken the
// first time a thread sees a name).
#pragma once

#include <cstddef>
#include <functional>
#include <ostream>
#include <string>
#include <string_view>

namespace aars::util {

class Symbol {
 public:
  /// The empty symbol ("").
  Symbol() : str_(empty_string()) {}
  Symbol(const std::string& s) : str_(intern(s)) {}     // NOLINT implicit
  Symbol(const char* s) : str_(intern(s)) {}            // NOLINT implicit
  Symbol(std::string_view s) : str_(intern(s)) {}       // NOLINT implicit

  const std::string& str() const { return *str_; }
  operator const std::string&() const { return *str_; }  // NOLINT implicit
  const char* c_str() const { return str_->c_str(); }
  std::size_t size() const { return str_->size(); }
  bool empty() const { return str_->empty(); }

  /// Interning guarantees one address per distinct string, so equality is a
  /// pointer comparison.
  friend bool operator==(Symbol a, Symbol b) { return a.str_ == b.str_; }
  friend bool operator!=(Symbol a, Symbol b) { return a.str_ != b.str_; }
  // Mixed comparisons carry exact-match overloads for string, string_view
  // and char* so neither side needs a user-defined conversion (which would
  // make `std::string == Symbol` ambiguous against the std::string
  // comparison operators).
  friend bool operator==(Symbol a, std::string_view b) { return *a.str_ == b; }
  friend bool operator==(std::string_view a, Symbol b) { return a == *b.str_; }
  friend bool operator!=(Symbol a, std::string_view b) { return *a.str_ != b; }
  friend bool operator!=(std::string_view a, Symbol b) { return a != *b.str_; }
  friend bool operator==(Symbol a, const std::string& b) { return *a.str_ == b; }
  friend bool operator==(const std::string& a, Symbol b) { return a == *b.str_; }
  friend bool operator!=(Symbol a, const std::string& b) { return *a.str_ != b; }
  friend bool operator!=(const std::string& a, Symbol b) { return a != *b.str_; }
  friend bool operator==(Symbol a, const char* b) { return *a.str_ == b; }
  friend bool operator==(const char* a, Symbol b) { return a == *b.str_; }
  friend bool operator!=(Symbol a, const char* b) { return *a.str_ != b; }
  friend bool operator!=(const char* a, Symbol b) { return a != *b.str_; }
  /// Content order (not pointer order) so ordered containers keyed by
  /// Symbol behave exactly like ones keyed by std::string.
  friend bool operator<(Symbol a, Symbol b) { return *a.str_ < *b.str_; }

  friend std::string operator+(const std::string& a, Symbol b) {
    return a + *b.str_;
  }
  friend std::string operator+(Symbol a, const std::string& b) {
    return *a.str_ + b;
  }
  friend std::ostream& operator<<(std::ostream& os, Symbol s) {
    return os << *s.str_;
  }

  /// Number of distinct strings interned so far (diagnostics/tests).
  static std::size_t table_size();

 private:
  static const std::string* intern(std::string_view s);
  /// Inline so default construction (ubiquitous in Message temporaries)
  /// costs one guarded load, not a cross-TU call plus the guard.
  static const std::string* empty_string() {
    static const std::string* const kEmpty = intern(std::string_view{});
    return kEmpty;
  }

  const std::string* str_;
};

struct SymbolHash {
  std::size_t operator()(Symbol s) const {
    return std::hash<const std::string*>{}(&s.str());
  }
};

}  // namespace aars::util
