// Minimal leveled logger.
//
// The runtime logs sparingly; tests and benches run with the logger muted by
// default.  A sink can be swapped in to capture events for assertions.
#pragma once

#include <functional>
#include <sstream>
#include <string>

namespace aars::util {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

constexpr const char* to_string(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF";
  }
  return "?";
}

/// Process-wide logger configuration.
class Logger {
 public:
  using Sink = std::function<void(LogLevel, const std::string&)>;

  static Logger& instance();

  void set_level(LogLevel level) { level_ = level; }
  LogLevel level() const { return level_; }
  /// Replaces the output sink (default: stderr). Pass nullptr to restore.
  void set_sink(Sink sink);

  bool enabled(LogLevel level) const { return level >= level_; }
  void write(LogLevel level, const std::string& message);

 private:
  Logger();
  LogLevel level_ = LogLevel::kWarn;
  Sink sink_;
};

namespace detail {
class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_(level) {}
  ~LogLine() { Logger::instance().write(level_, stream_.str()); }
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;

  template <typename T>
  LogLine& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};
}  // namespace detail

}  // namespace aars::util

#define AARS_LOG(level)                                        \
  if (!::aars::util::Logger::instance().enabled(level)) {      \
  } else                                                       \
    ::aars::util::detail::LogLine(level)

#define AARS_DEBUG AARS_LOG(::aars::util::LogLevel::kDebug)
#define AARS_INFO AARS_LOG(::aars::util::LogLevel::kInfo)
#define AARS_WARN AARS_LOG(::aars::util::LogLevel::kWarn)
#define AARS_ERROR AARS_LOG(::aars::util::LogLevel::kError)
