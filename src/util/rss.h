// Process peak-RSS probe, normalized to kilobytes.
//
// getrusage() reports ru_maxrss in *kilobytes* on Linux but in *bytes* on
// macOS (and in pages/other units on some BSDs) — reporting the raw field
// cross-platform skews BENCH_*.json memory numbers by 1024x.  This helper
// owns the normalization so every consumer (bench/common.h, capacity
// experiments) reports the same unit: KiB.
#pragma once

#include <sys/resource.h>

namespace aars::util {

/// Peak resident set size of this process in kilobytes (KiB); 0 when the
/// probe is unavailable.
inline long peak_rss_kb() {
  struct rusage usage {};
  if (getrusage(RUSAGE_SELF, &usage) != 0) return 0;
#if defined(__APPLE__)
  return usage.ru_maxrss / 1024;  // macOS: ru_maxrss is bytes
#else
  return usage.ru_maxrss;  // Linux: ru_maxrss is already KiB
#endif
}

}  // namespace aars::util
