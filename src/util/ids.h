// Strongly typed identifiers used across the runtime.
//
// Every entity in the system (component instance, connector, node, channel,
// message, ...) carries a distinct id type so that ids cannot be mixed up at
// compile time.  Ids are cheap value types: a 64-bit integer wrapped in a
// tag-discriminated template.
#pragma once

#include <cstdint>
#include <functional>
#include <ostream>

namespace aars::util {

/// Strongly typed 64-bit identifier. `Tag` only discriminates the type.
template <typename Tag>
class Id {
 public:
  constexpr Id() = default;
  constexpr explicit Id(std::uint64_t raw) : raw_(raw) {}

  /// The reserved "no entity" value.
  static constexpr Id invalid() { return Id{0}; }

  constexpr bool valid() const { return raw_ != 0; }
  constexpr std::uint64_t raw() const { return raw_; }

  friend constexpr bool operator==(Id a, Id b) { return a.raw_ == b.raw_; }
  friend constexpr bool operator!=(Id a, Id b) { return a.raw_ != b.raw_; }
  friend constexpr bool operator<(Id a, Id b) { return a.raw_ < b.raw_; }

  friend std::ostream& operator<<(std::ostream& os, Id id) {
    return os << '#' << id.raw_;
  }

 private:
  std::uint64_t raw_ = 0;
};

/// Monotonic generator for a given id type. Not thread-safe by design: the
/// runtime is a deterministic discrete-event system driven by one thread.
template <typename IdType>
class IdGenerator {
 public:
  IdType next() { return IdType{++last_}; }
  void reset(std::uint64_t to = 0) { last_ = to; }

 private:
  std::uint64_t last_ = 0;
};

struct ComponentTag {};
struct ConnectorTag {};
struct NodeTag {};
struct ChannelTag {};
struct MessageTag {};
struct RuleTag {};
struct ContractTag {};
struct SessionTag {};

using ComponentId = Id<ComponentTag>;
using ConnectorId = Id<ConnectorTag>;
using NodeId = Id<NodeTag>;
using ChannelId = Id<ChannelTag>;
using MessageId = Id<MessageTag>;
using RuleId = Id<RuleTag>;
using ContractId = Id<ContractTag>;
using SessionId = Id<SessionTag>;

}  // namespace aars::util

namespace std {
template <typename Tag>
struct hash<aars::util::Id<Tag>> {
  size_t operator()(aars::util::Id<Tag> id) const noexcept {
    return std::hash<std::uint64_t>{}(id.raw());
  }
};
}  // namespace std
