// Move-only callable with inline storage.
//
// `InlineFunction` replaces std::function<void()> on the event hot path.
// Two properties matter there: captures up to kInlineSize bytes live inside
// the object (no heap allocation per scheduled event), and the type is
// move-only, so callbacks can own move-only resources (pooled messages,
// unique_ptrs) and travel through the scheduler without copies.  Larger
// callables fall back to a single heap allocation, same as std::function.
#pragma once

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

namespace aars::util {

class InlineFunction {
 public:
  /// Inline capture budget.  Sized so a callback capturing a couple of
  /// pointers plus a small struct stays allocation-free; sizeof
  /// (std::function) is 32 on libstdc++, so wrapping one also stays inline.
  static constexpr std::size_t kInlineSize = 64;

  InlineFunction() = default;
  InlineFunction(std::nullptr_t) {}  // NOLINT implicit

  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, InlineFunction> &&
                std::is_invocable_r_v<void, std::decay_t<F>&>>>
  InlineFunction(F&& f) {  // NOLINT implicit
    emplace(std::forward<F>(f));
  }

  InlineFunction(InlineFunction&& other) noexcept { move_from(other); }
  InlineFunction& operator=(InlineFunction&& other) noexcept {
    if (this != &other) {
      reset();
      move_from(other);
    }
    return *this;
  }
  InlineFunction& operator=(std::nullptr_t) {
    reset();
    return *this;
  }
  InlineFunction(const InlineFunction&) = delete;
  InlineFunction& operator=(const InlineFunction&) = delete;
  ~InlineFunction() { reset(); }

  explicit operator bool() const { return vt_ != nullptr; }
  void operator()() { vt_->invoke(&buf_); }

 private:
  struct VTable {
    void (*invoke)(void*);
    /// Move-constructs the callable at dst from src and destroys src.
    void (*relocate)(void* dst, void* src);
    void (*destroy)(void*);
  };

  template <typename F>
  static constexpr bool fits_inline() {
    return sizeof(F) <= kInlineSize &&
           alignof(F) <= alignof(std::max_align_t) &&
           std::is_nothrow_move_constructible_v<F>;
  }

  template <typename F>
  struct InlineOps {
    static void invoke(void* p) { (*static_cast<F*>(p))(); }
    static void relocate(void* dst, void* src) {
      F* from = static_cast<F*>(src);
      ::new (dst) F(std::move(*from));
      from->~F();
    }
    static void destroy(void* p) { static_cast<F*>(p)->~F(); }
    static constexpr VTable vtable{invoke, relocate, destroy};
  };

  template <typename F>
  struct HeapOps {
    static F*& slot(void* p) { return *static_cast<F**>(p); }
    static void invoke(void* p) { (*slot(p))(); }
    static void relocate(void* dst, void* src) {
      *static_cast<F**>(dst) = slot(src);
    }
    static void destroy(void* p) { delete slot(p); }
    static constexpr VTable vtable{invoke, relocate, destroy};
  };

  template <typename F>
  void emplace(F&& f) {
    using Fn = std::decay_t<F>;
    if constexpr (fits_inline<Fn>()) {
      ::new (static_cast<void*>(&buf_)) Fn(std::forward<F>(f));
      vt_ = &InlineOps<Fn>::vtable;
    } else {
      *reinterpret_cast<Fn**>(&buf_) = new Fn(std::forward<F>(f));
      vt_ = &HeapOps<Fn>::vtable;
    }
  }

  void move_from(InlineFunction& other) noexcept {
    if (other.vt_ != nullptr) {
      vt_ = other.vt_;
      vt_->relocate(&buf_, &other.buf_);
      other.vt_ = nullptr;
    }
  }

  void reset() {
    if (vt_ != nullptr) {
      vt_->destroy(&buf_);
      vt_ = nullptr;
    }
  }

  alignas(std::max_align_t) unsigned char buf_[kInlineSize];
  const VTable* vt_ = nullptr;
};

}  // namespace aars::util
