// Deterministic random numbers for workload generation.
//
// A thin facade over std::mt19937_64 with the distributions experiments
// need.  Every experiment seeds its own Rng so runs are reproducible and
// independent of each other.
#pragma once

#include <cstdint>
#include <random>
#include <vector>

#include "util/time.h"

namespace aars::util {

class Rng {
 public:
  explicit Rng(std::uint64_t seed) : engine_(seed) {}

  /// Uniform in [0, 1).
  double uniform();
  /// Uniform in [lo, hi).
  double uniform(double lo, double hi);
  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);
  /// Standard exponential with given mean (> 0).
  double exponential(double mean);
  /// Gaussian.
  double normal(double mean, double stddev);
  /// Bernoulli trial.
  bool chance(double p);
  /// Pareto-distributed heavy tail with shape alpha (>1) and scale xm (>0).
  double pareto(double shape, double scale);
  /// Picks an index weighted by `weights` (non-negative, not all zero).
  std::size_t weighted_index(const std::vector<double>& weights);

  /// Inter-arrival gap of a Poisson process with given rate (events/sec).
  /// Gaps are truncated to whole microseconds, but the fractional remainder
  /// carries over into the next draw, so the *realized* rate converges on
  /// the requested one even when the mean gap is near (or below) 1us —
  /// rounding every gap up to 1us would systematically under-deliver load
  /// at rates approaching 10^6 events/sec.  A single gap may therefore be
  /// 0 (two arrivals on the same microsecond tick).
  Duration poisson_gap(double events_per_second);

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
  /// Fractional microseconds owed from previous poisson_gap draws, in
  /// [0, 1).  See poisson_gap.
  double gap_carry_ = 0.0;
};

}  // namespace aars::util
