// Dynamically typed value tree.
//
// `Value` is the lingua franca of the runtime: message payloads, component
// attributes, state snapshots and ADL literals are all Value trees.  It is a
// JSON-like sum type with value semantics.
//
// Containers are copy-on-write: list and map nodes are held through
// shared_ptr, so copying a Value (and therefore a Message through an
// interceptor chain) is O(1) refcount traffic regardless of tree size.
// Mutation detaches: every non-const accessor clones the node first when it
// is shared (`use_count() > 1`), so writers never disturb readers holding
// other copies, and a copy that is never written never allocates.  Detach
// is per-node and shallow — a cloned map's entries still share their own
// children until those are written in turn.
#pragma once

#include <cstdint>
#include <initializer_list>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <variant>
#include <vector>

#include "util/errors.h"

namespace aars::util {

class Value;

using ValueList = std::vector<Value>;
/// Transparent comparator: string_view keys probe without materialising a
/// temporary std::string (header lookups run per relayed message).
using ValueMap = std::map<std::string, Value, std::less<>>;

/// Discriminator for the runtime type of a Value.
enum class ValueType { kNull, kBool, kInt, kDouble, kString, kList, kMap };

constexpr const char* to_string(ValueType t) {
  switch (t) {
    case ValueType::kNull: return "null";
    case ValueType::kBool: return "bool";
    case ValueType::kInt: return "int";
    case ValueType::kDouble: return "double";
    case ValueType::kString: return "string";
    case ValueType::kList: return "list";
    case ValueType::kMap: return "map";
  }
  return "unknown";
}

/// JSON-like variant with value semantics. Numeric access is checked: asking
/// for the wrong type throws InvariantViolation (it indicates a runtime bug
/// or an unvalidated configuration reaching execution).
class Value {
 public:
  Value() : data_(std::monostate{}) {}
  Value(std::nullptr_t) : data_(std::monostate{}) {}     // NOLINT implicit
  Value(bool b) : data_(b) {}                            // NOLINT implicit
  Value(int i) : data_(static_cast<std::int64_t>(i)) {}  // NOLINT implicit
  Value(std::int64_t i) : data_(i) {}                    // NOLINT implicit
  Value(double d) : data_(d) {}                          // NOLINT implicit
  Value(const char* s) : data_(std::string(s)) {}        // NOLINT implicit
  Value(std::string s) : data_(std::move(s)) {}          // NOLINT implicit
  Value(ValueList l)                                     // NOLINT implicit
      : data_(std::make_shared<ValueList>(std::move(l))) {}
  Value(ValueMap m)                                      // NOLINT implicit
      : data_(std::make_shared<ValueMap>(std::move(m))) {}

  /// Builds a map value from key/value pairs.
  static Value object(std::initializer_list<std::pair<std::string, Value>> kv);
  /// Builds a list value.
  static Value list(std::initializer_list<Value> items);

  ValueType type() const {
    // ValueType enumerators mirror the Storage alternative order; see the
    // static_asserts below the class.
    return static_cast<ValueType>(data_.index());
  }
  bool is_null() const { return type() == ValueType::kNull; }
  bool is_bool() const { return type() == ValueType::kBool; }
  bool is_int() const { return type() == ValueType::kInt; }
  bool is_double() const { return type() == ValueType::kDouble; }
  bool is_number() const { return is_int() || is_double(); }
  bool is_string() const { return type() == ValueType::kString; }
  bool is_list() const { return type() == ValueType::kList; }
  bool is_map() const { return type() == ValueType::kMap; }

  bool as_bool() const;
  std::int64_t as_int() const;
  /// Numeric coercion: int promotes to double.
  double as_double() const;
  const std::string& as_string() const;
  const ValueList& as_list() const;
  /// Mutable access detaches (clones the node) when the list is shared.
  ValueList& as_list();
  const ValueMap& as_map() const;
  /// Mutable access detaches (clones the node) when the map is shared.
  ValueMap& as_map();

  /// Map field access; returns null Value when absent or not a map.
  const Value& at(std::string_view key) const;
  /// Map field access with default.
  Value get_or(std::string_view key, Value fallback) const;
  /// Mutable map access; converts a null value into an empty map and
  /// detaches when the map is shared.
  Value& operator[](const std::string& key);
  bool contains(std::string_view key) const;

  /// List element access; precondition: is_list() && index < size().
  const Value& item(std::size_t index) const;
  std::size_t size() const;

  /// True when this value and `other` share the same container node (both
  /// are lists or maps and no copy-on-write detach has separated them).
  /// Diagnostic hook for the COW tests; scalars never share.
  bool shares_storage_with(const Value& other) const;

  /// Makes every container node in this tree exclusively owned (clones any
  /// node another Value still references, recursively).  Required before a
  /// Value crosses a shard/thread boundary: the copy-on-write detach
  /// heuristic reads shared_ptr use_count(), which is unreliable as a
  /// uniqueness test across concurrent threads — a deep-detached tree has
  /// no node shared with any other Value, so the receiving shard can read
  /// and mutate it without touching the sender's copies.
  void deep_detach();

  /// Deep structural equality.
  friend bool operator==(const Value& a, const Value& b);
  friend bool operator!=(const Value& a, const Value& b) { return !(a == b); }

  /// Compact JSON-ish rendering (for logs, tests and golden output).
  std::string to_string() const;

  /// Approximate heap footprint in bytes; used by the simulator to charge
  /// bandwidth for message payloads. Scalars resolve inline (the common
  /// case on relay paths); containers recurse out of line.
  std::size_t byte_size() const {
    switch (type()) {
      case ValueType::kNull:
      case ValueType::kBool: return 1;
      case ValueType::kInt:
      case ValueType::kDouble: return 8;
      default: return deep_byte_size();
    }
  }

 private:
  using ListPtr = std::shared_ptr<ValueList>;
  using MapPtr = std::shared_ptr<ValueMap>;
  using Storage = std::variant<std::monostate, bool, std::int64_t, double,
                               std::string, ListPtr, MapPtr>;

  ValueList& mutable_list();
  ValueMap& mutable_map();
  std::size_t deep_byte_size() const;

  Storage data_;
};

// type() casts the variant index directly; keep the enum and the Storage
// alternatives in lockstep.
static_assert(static_cast<int>(ValueType::kNull) == 0 &&
                  static_cast<int>(ValueType::kBool) == 1 &&
                  static_cast<int>(ValueType::kInt) == 2 &&
                  static_cast<int>(ValueType::kDouble) == 3 &&
                  static_cast<int>(ValueType::kString) == 4 &&
                  static_cast<int>(ValueType::kList) == 5 &&
                  static_cast<int>(ValueType::kMap) == 6,
              "ValueType enumerators must mirror Value::Storage order");

/// The canonical null value (used for absent map fields).
const Value& null_value();

}  // namespace aars::util
