// Simulated-time types.
//
// All experiment logic runs on a deterministic discrete-event clock.  Time
// is an integral count of microseconds since simulation start, which keeps
// arithmetic exact and event ordering reproducible.
#pragma once

#include <cstdint>

namespace aars::util {

/// A point in simulated time, in microseconds since simulation start.
using SimTime = std::int64_t;

/// A span of simulated time, in microseconds.
using Duration = std::int64_t;

constexpr Duration kMicrosecond = 1;
constexpr Duration kMillisecond = 1000;
constexpr Duration kSecond = 1000 * 1000;

constexpr Duration microseconds(std::int64_t n) { return n; }
constexpr Duration milliseconds(std::int64_t n) { return n * kMillisecond; }
constexpr Duration seconds(std::int64_t n) { return n * kSecond; }

/// Converts a duration to fractional seconds (for reporting only).
constexpr double to_seconds(Duration d) {
  return static_cast<double>(d) / static_cast<double>(kSecond);
}

/// Converts a duration to fractional milliseconds (for reporting only).
constexpr double to_millis(Duration d) {
  return static_cast<double>(d) / static_cast<double>(kMillisecond);
}

}  // namespace aars::util
