#include "telecom/admission.h"

namespace aars::telecom {

namespace {
/// Work/second a new session at `quality` would add.
double session_demand(const SessionManager& sessions, int quality) {
  return sessions.fps() * QualityLadder::at(quality).work_units;
}
}  // namespace

AdmissionDecision ArbitraryDropPolicy::admit(
    SessionManager& sessions, double capacity_work_per_second,
    const AdmissionRequest& request) {
  AdmissionDecision decision;
  const double projected = sessions.offered_work_per_second() +
                           session_demand(sessions, request.desired_quality);
  if (projected <= capacity_work_per_second) {
    decision.admitted = true;
    decision.quality = QualityLadder::clamp(request.desired_quality);
  }
  // Else: the call is dropped outright — no renegotiation, no degradation.
  return decision;
}

AdmissionDecision AdaptiveLadderPolicy::admit(
    SessionManager& sessions, double capacity_work_per_second,
    const AdmissionRequest& request) {
  AdmissionDecision decision;
  // Walk the ladder from the desired level downwards for the new call.
  for (int level = QualityLadder::clamp(request.desired_quality);
       level >= QualityLadder::kMin; --level) {
    const double projected = sessions.offered_work_per_second() +
                             session_demand(sessions, level);
    if (projected <= capacity_work_per_second) {
      decision.admitted = true;
      decision.quality = level;
      return decision;
    }
  }
  // Degrade existing sessions level by level to make room.
  int global = sessions.global_quality();
  while (global > QualityLadder::kMin) {
    --global;
    sessions.set_global_quality(global);
    decision.degraded_existing = true;
    const double projected = sessions.offered_work_per_second() +
                             session_demand(sessions, global);
    if (projected <= capacity_work_per_second) {
      decision.admitted = true;
      decision.quality = global;
      return decision;
    }
  }
  return decision;  // even audio-only does not fit: reject
}

}  // namespace aars::telecom
