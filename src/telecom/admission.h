// Call admission policies.
//
// The baseline the paper criticises — "dropping calls [or] rejecting
// packets arbitrarily with no care about the rendering" (§2) — versus the
// adaptive alternative that degrades quality along the ladder to admit
// more users.  Both policies see the same demand and the same capacity;
// E10 compares dropped calls and delivered utility.
#pragma once

#include <memory>
#include <string>

#include "telecom/session.h"

namespace aars::telecom {

struct AdmissionRequest {
  int desired_quality = QualityLadder::kMax;
};

struct AdmissionDecision {
  bool admitted = false;
  int quality = QualityLadder::kMin;  // granted quality when admitted
  /// True when admission required degrading existing sessions.
  bool degraded_existing = false;
};

class AdmissionPolicy {
 public:
  virtual ~AdmissionPolicy() = default;
  /// Decides on a new call given the manager's current demand and the
  /// server budget (work units/second the service may consume).
  virtual AdmissionDecision admit(SessionManager& sessions,
                                  double capacity_work_per_second,
                                  const AdmissionRequest& request) = 0;
  virtual std::string name() const = 0;
};

/// Arbitrary-drop baseline: every call demands its full desired quality;
/// when the remaining headroom cannot fit it, the call is dropped.
class ArbitraryDropPolicy final : public AdmissionPolicy {
 public:
  AdmissionDecision admit(SessionManager& sessions,
                          double capacity_work_per_second,
                          const AdmissionRequest& request) override;
  std::string name() const override { return "arbitrary_drop"; }
};

/// Adaptive ladder policy: first tries the desired quality, then walks the
/// ladder down; if even the lowest level does not fit, it degrades the
/// global quality of existing sessions to make room before rejecting.
class AdaptiveLadderPolicy final : public AdmissionPolicy {
 public:
  AdmissionDecision admit(SessionManager& sessions,
                          double capacity_work_per_second,
                          const AdmissionRequest& request) override;
  std::string name() const override { return "adaptive_ladder"; }
};

}  // namespace aars::telecom
