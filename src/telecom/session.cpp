#include "telecom/session.h"

namespace aars::telecom {

using util::Error;
using util::ErrorCode;
using util::Result;
using util::Status;
using util::Value;

SessionManager::SessionManager(runtime::Application& app, Options options)
    : app_(app), options_(options) {
  util::require(options_.service.valid(), "service connector required");
  util::require(options_.fps > 0.0, "fps must be positive");
}

SessionId SessionManager::start_session(int quality, NodeId origin,
                                        SimTime until) {
  const SessionId id = ids_.next();
  Session session;
  session.id = id;
  session.origin = origin;
  session.quality = QualityLadder::clamp(std::min(quality, global_quality_));
  session.until = until;
  session.streaming = true;
  sessions_.emplace(id, session);
  schedule_next_frame(id);
  return id;
}

Status SessionManager::end_session(SessionId id) {
  auto it = sessions_.find(id);
  if (it == sessions_.end()) {
    return Error{ErrorCode::kNotFound, "no such session"};
  }
  sessions_.erase(it);
  return Status::success();
}

bool SessionManager::active(SessionId id) const {
  return sessions_.count(id) > 0;
}

Status SessionManager::set_quality(SessionId id, int level) {
  auto it = sessions_.find(id);
  if (it == sessions_.end()) {
    return Error{ErrorCode::kNotFound, "no such session"};
  }
  it->second.quality = QualityLadder::clamp(level);
  return Status::success();
}

Result<int> SessionManager::quality(SessionId id) const {
  auto it = sessions_.find(id);
  if (it == sessions_.end()) {
    return Error{ErrorCode::kNotFound, "no such session"};
  }
  return it->second.quality;
}

void SessionManager::set_global_quality(int level) {
  global_quality_ = QualityLadder::clamp(level);
  for (auto& [id, session] : sessions_) {
    session.quality = std::min(session.quality, global_quality_);
    // Sessions degraded below the new ceiling may also recover up to it.
    session.quality = global_quality_;
  }
}

double SessionManager::offered_work_per_second() const {
  double total = 0.0;
  for (const auto& [id, session] : sessions_) {
    total += options_.fps * QualityLadder::at(session.quality).work_units;
  }
  return total;
}

void SessionManager::on_frame(FrameListener listener) {
  util::require(static_cast<bool>(listener), "listener required");
  listeners_.push_back(std::move(listener));
}

void SessionManager::schedule_next_frame(SessionId id) {
  auto it = sessions_.find(id);
  if (it == sessions_.end()) return;
  const auto gap =
      static_cast<Duration>(util::kSecond / options_.fps);
  const SimTime at = app_.loop().now() + std::max<Duration>(gap, 1);
  if (at > it->second.until) {
    sessions_.erase(it);
    return;
  }
  app_.loop().schedule_at(at, [this, id] { fire_frame(id); });
}

void SessionManager::fire_frame(SessionId id) {
  auto it = sessions_.find(id);
  if (it == sessions_.end()) return;
  const Session& session = it->second;
  ++frames_attempted_;
  const int quality = session.quality;
  const QualityLevel& q = QualityLadder::at(quality);
  const Value args = Value::object(
      {{"session", static_cast<std::int64_t>(id.raw())},
       {"quality", static_cast<std::int64_t>(quality)}});
  const Value headers = Value::object({{"__work_scale", q.work_units}});
  app_.invoke_async(
      options_.service, "frame", args, session.origin,
      [this, id, quality](Result<Value> result, Duration latency) {
        const bool ok = result.ok();
        if (ok) {
          ++frames_ok_;
          delivered_utility_ += QualityLadder::at(quality).utility;
        } else {
          ++frames_failed_;
        }
        for (const FrameListener& listener : listeners_) {
          listener(id, latency, ok, quality);
        }
      },
      headers);
  schedule_next_frame(id);
}

}  // namespace aars::telecom
