#include "telecom/session.h"

#include <algorithm>

namespace aars::telecom {

using util::Error;
using util::ErrorCode;
using util::Result;
using util::Status;
using util::Value;

SessionManager::SessionManager(runtime::Application& app, Options options)
    : app_(app), options_(options) {
  util::require(options_.service.valid(), "service connector required");
  util::require(options_.fps > 0.0, "fps must be positive");
  util::require(options_.frame_quantum >= 0, "frame quantum must be >= 0");
  if (options_.frame_quantum > 0) {
    // The ring spans two frame gaps plus slack: a rechain lands at most one
    // gap (+ one rounding bucket) ahead, and a phase-staggered first frame
    // reaches one further gap beyond that.
    const auto span = std::max<std::size_t>(
        static_cast<std::size_t>(frame_gap() / options_.frame_quantum), 1);
    wheel_.assign(2 * span + 3, kNil);
  }
}

Duration SessionManager::frame_gap() const {
  return std::max<Duration>(
      static_cast<Duration>(util::kSecond / options_.fps), 1);
}

std::uint32_t SessionManager::decode(SessionId id) const {
  const std::uint64_t raw = id.raw();
  const std::uint64_t low = raw & 0xffffffffu;
  if (low == 0 || low > slots_.size()) return kNil;
  const auto slot = static_cast<std::uint32_t>(low - 1);
  const Slot& s = slots_[slot];
  if (!s.live || s.gen != static_cast<std::uint32_t>(raw >> 32)) return kNil;
  return slot;
}

SessionId SessionManager::start_session(int quality, NodeId origin,
                                        SimTime until) {
  std::uint32_t slot;
  if (!free_.empty()) {
    slot = free_.back();
    free_.pop_back();
  } else {
    slot = static_cast<std::uint32_t>(slots_.size());
    slots_.emplace_back();
  }
  Slot& s = slots_[slot];
  s.origin = origin;
  s.until = until;
  s.quality = static_cast<std::int16_t>(
      QualityLadder::clamp(std::min(quality, global_quality_)));
  s.live = true;
  ++live_;
  const SessionId id = encode(slot);
  schedule_first_frame(slot);
  return id;
}

Status SessionManager::end_session(SessionId id) {
  const std::uint32_t slot = decode(id);
  if (slot == kNil) {
    return Error{ErrorCode::kNotFound, "no such session"};
  }
  retire(slot);
  return Status::success();
}

bool SessionManager::active(SessionId id) const { return decode(id) != kNil; }

Status SessionManager::set_quality(SessionId id, int level) {
  const std::uint32_t slot = decode(id);
  if (slot == kNil) {
    return Error{ErrorCode::kNotFound, "no such session"};
  }
  slots_[slot].quality =
      static_cast<std::int16_t>(QualityLadder::clamp(level));
  return Status::success();
}

Result<int> SessionManager::quality(SessionId id) const {
  const std::uint32_t slot = decode(id);
  if (slot == kNil) {
    return Error{ErrorCode::kNotFound, "no such session"};
  }
  return static_cast<int>(slots_[slot].quality);
}

void SessionManager::set_global_quality(int level) {
  global_quality_ = QualityLadder::clamp(level);
  for (Slot& s : slots_) {
    if (!s.live) continue;
    // Sessions above the new ceiling are clamped; sessions degraded below
    // it also recover up to it.
    s.quality = static_cast<std::int16_t>(global_quality_);
  }
}

double SessionManager::offered_work_per_second() const {
  double total = 0.0;
  for (const Slot& s : slots_) {
    if (!s.live) continue;
    total += options_.fps * QualityLadder::at(s.quality).work_units;
  }
  return total;
}

void SessionManager::on_frame(FrameListener listener) {
  util::require(static_cast<bool>(listener), "listener required");
  listeners_.push_back(std::move(listener));
}

void SessionManager::retire(std::uint32_t slot) {
  Slot& s = slots_[slot];
  if (s.live) {
    s.live = false;
    ++s.gen;  // stale handles to this slot stop resolving immediately
    --live_;
  }
  // A wheel-chained slot keeps its link until the bucket fires; the fire
  // path moves it to the free list then.
  if (!s.chained) free_.push_back(slot);
}

void SessionManager::schedule_first_frame(std::uint32_t slot) {
  const SimTime at = app_.loop().now() + frame_gap();
  if (options_.frame_quantum == 0) {
    // Exact mode: the session carries its own pending event.
    if (at > slots_[slot].until) {
      retire(slot);
      return;
    }
    const SessionId id = encode(slot);
    app_.loop().schedule_at(at, [this, id] { fire_frame_exact(id); });
    return;
  }
  // Wheel mode: quantize up to the bucket boundary so a frame never fires
  // before its exact-mode time would.  Quantization alone synchronizes
  // every session admitted in the same quantum onto one instant, and each
  // bucket then fires a frame *storm* — thousands of simultaneous in-flight
  // invocations whose transient state dwarfs the steady-state saving.  So
  // the first frame is phase-staggered deterministically across the gap's
  // buckets; the recurrence preserves the phase (gap rounds to a whole
  // number of buckets), keeping per-bucket load near population/span.
  const Duration q = options_.frame_quantum;
  const std::uint64_t base = (static_cast<std::uint64_t>(at) + q - 1) / q;
  const auto span =
      static_cast<std::uint64_t>(std::max<Duration>(frame_gap() / q, 1));
  const std::uint64_t bucket =
      base + (slot * 2654435761ull) % span;  // Knuth multiplicative hash
  if (static_cast<SimTime>(bucket * q) > slots_[slot].until) {
    retire(slot);
    return;
  }
  chain_into_bucket(slot, bucket);
}

// --- exact mode --------------------------------------------------------------

void SessionManager::fire_frame_exact(SessionId id) {
  const std::uint32_t slot = decode(id);
  if (slot == kNil) return;
  fire_frame(slot);
  // Schedule the follow-up; retire once the next frame would overrun.
  const SimTime at = app_.loop().now() + frame_gap();
  if (at > slots_[slot].until) {
    retire(slot);
    return;
  }
  app_.loop().schedule_at(at, [this, id] { fire_frame_exact(id); });
}

// --- wheel mode --------------------------------------------------------------

void SessionManager::chain_into_bucket(std::uint32_t slot,
                                       std::uint64_t bucket) {
  const std::size_t idx = bucket % wheel_.size();
  Slot& s = slots_[slot];
  s.next = wheel_[idx];
  s.chained = true;
  if (wheel_[idx] == kNil) {
    const SimTime at =
        static_cast<SimTime>(bucket) * options_.frame_quantum;
    app_.loop().schedule_at(at, [this, bucket] { fire_bucket(bucket); });
  }
  wheel_[idx] = slot;
}

void SessionManager::fire_bucket(std::uint64_t bucket) {
  const std::size_t idx = bucket % wheel_.size();
  std::uint32_t slot = wheel_[idx];
  wheel_[idx] = kNil;
  const Duration q = options_.frame_quantum;
  while (slot != kNil) {
    Slot& s = slots_[slot];
    const std::uint32_t next = s.next;
    s.next = kNil;
    s.chained = false;
    if (!s.live) {
      // Retired while chained: the link is free now, recycle the slot.
      free_.push_back(slot);
    } else {
      fire_frame(slot);
      const SimTime at = app_.loop().now() + frame_gap();
      const std::uint64_t next_bucket =
          (static_cast<std::uint64_t>(at) + q - 1) / q;
      if (static_cast<SimTime>(next_bucket * q) > s.until) {
        retire(slot);
      } else {
        chain_into_bucket(slot, next_bucket);
      }
    }
    slot = next;
  }
}

// --- the frame itself --------------------------------------------------------

void SessionManager::fire_frame(std::uint32_t slot) {
  const Slot& s = slots_[slot];
  ++frames_attempted_;
  const int quality = s.quality;
  const SessionId id = encode(slot);
  const QualityLevel& q = QualityLadder::at(quality);
  const Value args = Value::object(
      {{"session", static_cast<std::int64_t>(id.raw())},
       {"quality", static_cast<std::int64_t>(quality)}});
  const Value headers = Value::object({{"__work_scale", q.work_units}});
  app_.invoke_async(
      options_.service, "frame", args, s.origin,
      [this, id, quality](Result<Value> result, Duration latency) {
        const bool ok = result.ok();
        if (ok) {
          ++frames_ok_;
          delivered_utility_ += QualityLadder::at(quality).utility;
        } else {
          ++frames_failed_;
        }
        for (const FrameListener& listener : listeners_) {
          listener(id, latency, ok, quality);
        }
      },
      headers);
}

}  // namespace aars::telecom
