// Multimedia service components.
//
// The video pipeline the paper's composition-path example names —
// "extraction, coding and transferring infrastructure for video service"
// (§2) — plus the MediaServer used by the session/rush-hour experiments.
// All components register with a ComponentRegistry under their type names
// so they are deployable from the ADL.
#pragma once

#include <cstdint>
#include <vector>

#include "component/component.h"
#include "component/registry.h"

namespace aars::telecom {

/// The shared pipeline-stage interface: MediaStage v1 { process(data) }.
component::InterfaceDescription media_stage_interface();
/// The media service interface: MediaService v1 { frame(session, quality) }.
component::InterfaceDescription media_service_interface();

/// Stage 1: extracts raw frames from a source (cheap).
class FrameExtractor final : public component::Component {
 public:
  explicit FrameExtractor(const std::string& instance_name);
};

/// Stage 2: encodes frames. Attribute "codec" selects the algorithm and
/// its cost ("fast" vs "quality" — interchangeable implementations).
class VideoEncoder final : public component::Component {
 public:
  explicit VideoEncoder(const std::string& instance_name);

 protected:
  util::Status on_initialize(const util::Value& attributes) override;
  void save_state(util::Value& state) const override;
  util::Status load_state(const util::Value& state) override;

 private:
  std::string codec_ = "fast";
  std::int64_t frames_encoded_ = 0;
};

/// Stage 3: transfers encoded frames.
class Transmitter final : public component::Component {
 public:
  explicit Transmitter(const std::string& instance_name);

 private:
  std::int64_t bytes_sent_ = 0;

 protected:
  void save_state(util::Value& state) const override;
  util::Status load_state(const util::Value& state) override;
};

/// The stateful media server: serves "frame" requests whose work scales
/// with the session's quality level (via the "__work_scale" header).  Keeps
/// a per-session frame counter so strong reconfiguration is observable.
///
/// The counter table is bounded: a direct-mapped array of `session_slots`
/// entries (attribute, power of two) keyed by the raw session id.  A
/// colliding session evicts the slot's previous occupant, whose count
/// restarts — the same memory-bound trade the channel audit makes.  The
/// old string-keyed map grew one heap node per session ever seen and sank
/// million-user campaigns (E19).
class MediaServer final : public component::Component {
 public:
  explicit MediaServer(const std::string& instance_name);

  std::int64_t frames_served() const { return frames_served_; }
  /// Bound of the per-session counter table (attribute "session_slots").
  std::size_t session_slots() const { return session_slots_; }
  /// Sessions whose counter was evicted by a direct-map collision.
  std::uint64_t session_evictions() const { return session_evictions_; }

 protected:
  util::Status on_initialize(const util::Value& attributes) override;
  void save_state(util::Value& state) const override;
  util::Status load_state(const util::Value& state) override;

 private:
  struct SessionSlot {
    std::int64_t key = 0;
    std::int64_t count = 0;  // 0 = slot empty
  };
  /// Returns the slot for `session`, evicting a collider (table allocated
  /// on first use).
  SessionSlot& slot_for(std::int64_t session);

  std::int64_t frames_served_ = 0;
  std::size_t session_slots_ = 4096;
  std::uint64_t session_evictions_ = 0;
  std::vector<SessionSlot> per_session_;  // direct-mapped by session id
};

/// Registers all telecom component types ("FrameExtractor", "VideoEncoder",
/// "Transmitter", "MediaServer") in a registry.
void register_media_components(component::ComponentRegistry& registry);

}  // namespace aars::telecom
