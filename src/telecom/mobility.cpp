#include "telecom/mobility.h"

#include "util/errors.h"

namespace aars::telecom {

MobilityModel::MobilityModel(sim::EventLoop& loop, std::vector<NodeId> cells,
                             Duration mean_dwell, std::uint64_t seed)
    : loop_(loop),
      cells_(std::move(cells)),
      mean_dwell_(mean_dwell),
      rng_(seed) {
  util::require(cells_.size() >= 2, "mobility needs at least two cells");
  util::require(mean_dwell_ > 0, "dwell time must be positive");
}

MobilityModel::UserId MobilityModel::add_user() {
  const UserId id = next_user_++;
  const auto cell_index = static_cast<std::size_t>(
      rng_.uniform_int(0, static_cast<std::int64_t>(cells_.size()) - 1));
  users_[id] = cells_[cell_index];
  if (running_) schedule_move(id);
  return id;
}

NodeId MobilityModel::cell_of(UserId user) const {
  auto it = users_.find(user);
  util::require(it != users_.end(), "unknown user");
  return it->second;
}

void MobilityModel::on_handover(HandoverHook hook) {
  util::require(static_cast<bool>(hook), "hook required");
  hooks_.push_back(std::move(hook));
}

void MobilityModel::start(SimTime end) {
  util::require(!running_, "mobility already running");
  running_ = true;
  end_ = end;
  for (const auto& [user, cell] : users_) schedule_move(user);
}

void MobilityModel::schedule_move(UserId user) {
  const auto dwell = static_cast<Duration>(
      rng_.exponential(static_cast<double>(mean_dwell_)));
  const SimTime at = loop_.now() + std::max<Duration>(dwell, 1);
  if (at > end_) return;
  loop_.schedule_at(at, [this, user] {
    if (!running_) return;
    auto it = users_.find(user);
    if (it == users_.end()) return;
    const NodeId from = it->second;
    // Move to a different uniformly chosen cell.
    NodeId to = from;
    while (to == from && cells_.size() > 1) {
      const auto idx = static_cast<std::size_t>(rng_.uniform_int(
          0, static_cast<std::int64_t>(cells_.size()) - 1));
      to = cells_[idx];
    }
    it->second = to;
    ++handovers_;
    for (const HandoverHook& hook : hooks_) hook(user, from, to);
    schedule_move(user);
  });
}

}  // namespace aars::telecom
