#include "telecom/mobility.h"

#include <algorithm>

#include "util/errors.h"

namespace aars::telecom {

MobilityModel::MobilityModel(sim::EventLoop& loop, std::vector<NodeId> cells,
                             Duration mean_dwell, std::uint64_t seed,
                             Duration move_quantum)
    : loop_(loop),
      cells_(std::move(cells)),
      mean_dwell_(mean_dwell),
      move_quantum_(move_quantum),
      rng_(seed) {
  util::require(cells_.size() >= 2, "mobility needs at least two cells");
  util::require(mean_dwell_ > 0, "dwell time must be positive");
  util::require(move_quantum_ >= 0, "move quantum must be >= 0");
}

MobilityModel::UserId MobilityModel::add_user() {
  const UserId id = user_cell_.size();
  const auto cell_index = static_cast<std::uint32_t>(
      rng_.uniform_int(0, static_cast<std::int64_t>(cells_.size()) - 1));
  user_cell_.push_back(cell_index);
  move_link_.push_back(kNil);
  if (running_) schedule_move(id);
  return id;
}

NodeId MobilityModel::cell_of(UserId user) const {
  util::require(user < user_cell_.size(), "unknown user");
  return cells_[user_cell_[user]];
}

void MobilityModel::on_handover(HandoverHook hook) {
  util::require(static_cast<bool>(hook), "hook required");
  hooks_.push_back(std::move(hook));
}

void MobilityModel::start(SimTime end) {
  util::require(!running_, "mobility already running");
  running_ = true;
  end_ = end;
  for (UserId user = 0; user < user_cell_.size(); ++user) {
    schedule_move(user);
  }
}

void MobilityModel::schedule_move(UserId user) {
  const auto dwell = static_cast<Duration>(
      rng_.exponential(static_cast<double>(mean_dwell_)));
  const SimTime at = loop_.now() + std::max<Duration>(dwell, 1);
  if (move_quantum_ == 0) {
    // Exact mode: one pending event per user.
    if (at > end_) return;
    loop_.schedule_at(at, [this, user] {
      if (!running_) return;
      perform_move(user);
    });
    return;
  }
  // Wheel mode: quantize up to the bucket boundary (never move early).
  const std::uint64_t bucket =
      (static_cast<std::uint64_t>(at) + move_quantum_ - 1) /
      static_cast<std::uint64_t>(move_quantum_);
  if (static_cast<SimTime>(bucket) * move_quantum_ > end_) return;
  chain_into_bucket(user, bucket);
}

void MobilityModel::chain_into_bucket(UserId user, std::uint64_t bucket) {
  auto [it, fresh] =
      move_buckets_.emplace(bucket, static_cast<std::uint32_t>(user));
  if (fresh) {
    move_link_[user] = kNil;
    const SimTime at = static_cast<SimTime>(bucket) * move_quantum_;
    loop_.schedule_at(at, [this, bucket] { fire_bucket(bucket); });
  } else {
    move_link_[user] = it->second;
    it->second = static_cast<std::uint32_t>(user);
  }
}

void MobilityModel::fire_bucket(std::uint64_t bucket) {
  auto it = move_buckets_.find(bucket);
  if (it == move_buckets_.end()) return;
  std::uint32_t user = it->second;
  move_buckets_.erase(it);
  while (user != kNil) {
    const std::uint32_t next = move_link_[user];
    move_link_[user] = kNil;
    if (running_) perform_move(user);
    user = next;
  }
}

void MobilityModel::perform_move(UserId user) {
  const std::uint32_t from = user_cell_[user];
  // Move to a different uniformly chosen cell.
  std::uint32_t to = from;
  while (to == from && cells_.size() > 1) {
    to = static_cast<std::uint32_t>(rng_.uniform_int(
        0, static_cast<std::int64_t>(cells_.size()) - 1));
  }
  user_cell_[user] = to;
  ++handovers_;
  for (const HandoverHook& hook : hooks_) {
    hook(user, cells_[from], cells_[to]);
  }
  schedule_move(user);
}

}  // namespace aars::telecom
