// User mobility.
//
// Services should "be reconfigured automatically according to user's
// mobility, preferences, profiles and equipments" (Introduction).  The
// MobilityModel moves users between cells (edge nodes) at exponential dwell
// times; handover hooks let the application re-home sessions (rebind to a
// closer server or migrate components towards the demand, §1).
//
// Per-user state is a flat slab (4-byte cell index + 4-byte wheel link per
// user, ids are dense), and movement generation has two modes: exact
// per-user events (default, the behaviour the mobility tests pin), or a
// coarse move wheel (`move_quantum`) that batches every user due in a
// bucket behind one event-loop entry — the same footprint trade the
// session manager makes for million-user campaigns (E19).
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <vector>

#include "sim/event_loop.h"
#include "util/ids.h"
#include "util/rng.h"

namespace aars::telecom {

using util::Duration;
using util::NodeId;
using util::SimTime;

class MobilityModel {
 public:
  using UserId = std::size_t;
  using HandoverHook =
      std::function<void(UserId user, NodeId from, NodeId to)>;

  /// `move_quantum` 0 schedules every user's next move as its own event at
  /// its exact dwell expiry; positive batches moves into buckets of that
  /// width (move times quantized up to the bucket boundary).
  MobilityModel(sim::EventLoop& loop, std::vector<NodeId> cells,
                Duration mean_dwell, std::uint64_t seed,
                Duration move_quantum = 0);

  /// Adds a user in a uniformly chosen cell.
  UserId add_user();
  NodeId cell_of(UserId user) const;
  std::size_t user_count() const { return user_cell_.size(); }

  /// Starts generating movements until `end`.
  void start(SimTime end);
  void stop() { running_ = false; }

  void on_handover(HandoverHook hook);
  std::uint64_t handovers() const { return handovers_; }

 private:
  static constexpr std::uint32_t kNil = 0xffffffffu;

  void schedule_move(UserId user);
  void chain_into_bucket(UserId user, std::uint64_t bucket);
  void fire_bucket(std::uint64_t bucket);
  /// Moves the user to a different uniformly chosen cell, fires hooks and
  /// schedules the follow-up move.
  void perform_move(UserId user);

  sim::EventLoop& loop_;
  std::vector<NodeId> cells_;
  Duration mean_dwell_;
  Duration move_quantum_;
  util::Rng rng_;
  std::vector<std::uint32_t> user_cell_;  // cell index per user (dense ids)
  std::vector<std::uint32_t> move_link_;  // wheel chain per user
  /// Sparse calendar: absolute bucket -> chain head.  Dwells are unbounded
  /// (exponential), so the calendar is a map rather than a fixed ring; only
  /// buckets with pending movers hold an entry.
  std::map<std::uint64_t, std::uint32_t> move_buckets_;
  std::vector<HandoverHook> hooks_;
  bool running_ = false;
  SimTime end_ = 0;
  std::uint64_t handovers_ = 0;
};

}  // namespace aars::telecom
