// User mobility.
//
// Services should "be reconfigured automatically according to user's
// mobility, preferences, profiles and equipments" (Introduction).  The
// MobilityModel moves users between cells (edge nodes) at exponential dwell
// times; handover hooks let the application re-home sessions (rebind to a
// closer server or migrate components towards the demand, §1).
#pragma once

#include <functional>
#include <map>
#include <vector>

#include "sim/event_loop.h"
#include "util/ids.h"
#include "util/rng.h"

namespace aars::telecom {

using util::Duration;
using util::NodeId;
using util::SimTime;

class MobilityModel {
 public:
  using UserId = std::size_t;
  using HandoverHook =
      std::function<void(UserId user, NodeId from, NodeId to)>;

  MobilityModel(sim::EventLoop& loop, std::vector<NodeId> cells,
                Duration mean_dwell, std::uint64_t seed);

  /// Adds a user in a uniformly chosen cell.
  UserId add_user();
  NodeId cell_of(UserId user) const;
  std::size_t user_count() const { return users_.size(); }

  /// Starts generating movements until `end`.
  void start(SimTime end);
  void stop() { running_ = false; }

  void on_handover(HandoverHook hook);
  std::uint64_t handovers() const { return handovers_; }

 private:
  void schedule_move(UserId user);

  sim::EventLoop& loop_;
  std::vector<NodeId> cells_;
  Duration mean_dwell_;
  util::Rng rng_;
  std::map<UserId, NodeId> users_;
  std::vector<HandoverHook> hooks_;
  bool running_ = false;
  SimTime end_ = 0;
  std::uint64_t handovers_ = 0;
  UserId next_user_ = 0;
};

}  // namespace aars::telecom
