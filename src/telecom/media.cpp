#include "telecom/media.h"

#include "telecom/quality.h"

namespace aars::telecom {

using component::InterfaceDescription;
using component::ParamSpec;
using component::ServiceSignature;
using util::Error;
using util::ErrorCode;
using util::Result;
using util::Status;
using util::Value;
using util::ValueType;

InterfaceDescription media_stage_interface() {
  InterfaceDescription desc("MediaStage", 1);
  desc.add_service(ServiceSignature{
      "process", {ParamSpec{"data", ValueType::kNull, false}},
      ValueType::kMap});
  return desc;
}

InterfaceDescription media_service_interface() {
  InterfaceDescription desc("MediaService", 1);
  desc.add_service(ServiceSignature{
      "frame",
      {ParamSpec{"session", ValueType::kInt, false},
       ParamSpec{"quality", ValueType::kInt, true}},
      ValueType::kMap});
  return desc;
}

// --- FrameExtractor ---------------------------------------------------------

FrameExtractor::FrameExtractor(const std::string& instance_name)
    : Component("FrameExtractor", instance_name) {
  set_provided(media_stage_interface());
  register_operation("process", 0.3, [](const Value& args) -> Result<Value> {
    return Value::object({{"data", args.at("data")},
                          {"stage", "extracted"}});
  });
}

// --- VideoEncoder -----------------------------------------------------------

VideoEncoder::VideoEncoder(const std::string& instance_name)
    : Component("VideoEncoder", instance_name) {
  set_provided(media_stage_interface());
  register_operation("process", 2.0, [this](const Value& args)
                                         -> Result<Value> {
    ++frames_encoded_;
    return Value::object({{"data", args.at("data")},
                          {"stage", "encoded"},
                          {"codec", codec_},
                          {"frames", frames_encoded_}});
  });
}

Status VideoEncoder::on_initialize(const Value& attributes) {
  const Value codec = attributes.at("codec");
  if (codec.is_string()) {
    codec_ = codec.as_string();
    if (codec_ != "fast" && codec_ != "quality") {
      return Error{ErrorCode::kInvalidArgument,
                   instance_name() + ": unknown codec '" + codec_ + "'"};
    }
    // The "quality" codec doubles the per-frame work.
    const double cost = codec_ == "quality" ? 4.0 : 2.0;
    (void)replace_operation("process", operation_handler("process"), cost);
  }
  return Status::success();
}

void VideoEncoder::save_state(Value& state) const {
  state["codec"] = codec_;
  state["frames_encoded"] = frames_encoded_;
}

Status VideoEncoder::load_state(const Value& state) {
  if (state.contains("codec")) codec_ = state.at("codec").as_string();
  if (state.contains("frames_encoded")) {
    frames_encoded_ = state.at("frames_encoded").as_int();
  }
  return Status::success();
}

// --- Transmitter ------------------------------------------------------------

Transmitter::Transmitter(const std::string& instance_name)
    : Component("Transmitter", instance_name) {
  set_provided(media_stage_interface());
  register_operation("process", 0.5, [this](const Value& args)
                                         -> Result<Value> {
    bytes_sent_ += static_cast<std::int64_t>(args.at("data").byte_size());
    return Value::object({{"data", args.at("data")},
                          {"stage", "transmitted"},
                          {"bytes_total", bytes_sent_}});
  });
}

void Transmitter::save_state(Value& state) const {
  state["bytes_sent"] = bytes_sent_;
}

Status Transmitter::load_state(const Value& state) {
  if (state.contains("bytes_sent")) {
    bytes_sent_ = state.at("bytes_sent").as_int();
  }
  return Status::success();
}

// --- MediaServer ------------------------------------------------------------

MediaServer::MediaServer(const std::string& instance_name)
    : Component("MediaServer", instance_name) {
  set_provided(media_service_interface());
  register_operation("frame", 1.0, [this](const Value& args)
                                       -> Result<Value> {
    ++frames_served_;
    const std::string key = std::to_string(args.at("session").as_int());
    Value& count = per_session_[key];
    count = Value{count.is_int() ? count.as_int() + 1 : 1};
    const int quality = args.contains("quality")
                            ? static_cast<int>(args.at("quality").as_int())
                            : 2;
    const QualityLevel& q = QualityLadder::at(quality);
    set_resume_point("after_frame");
    return Value::object({{"session", args.at("session")},
                          {"quality", static_cast<std::int64_t>(q.level)},
                          {"bytes", static_cast<std::int64_t>(q.frame_bytes)},
                          {"frame_no", count}});
  });
}

void MediaServer::save_state(Value& state) const {
  state["frames_served"] = frames_served_;
  state["per_session"] = Value{per_session_};
}

Status MediaServer::load_state(const Value& state) {
  if (state.contains("frames_served")) {
    frames_served_ = state.at("frames_served").as_int();
  }
  if (state.at("per_session").is_map()) {
    per_session_ = state.at("per_session").as_map();
  }
  return Status::success();
}

void register_media_components(component::ComponentRegistry& registry) {
  registry.register_class<FrameExtractor>("FrameExtractor");
  registry.register_class<VideoEncoder>("VideoEncoder");
  registry.register_class<Transmitter>("Transmitter");
  registry.register_class<MediaServer>("MediaServer");
}

}  // namespace aars::telecom
