#include "telecom/media.h"

#include <cstdint>
#include <string>

#include "telecom/quality.h"

namespace aars::telecom {

using component::InterfaceDescription;
using component::ParamSpec;
using component::ServiceSignature;
using util::Error;
using util::ErrorCode;
using util::Result;
using util::Status;
using util::Value;
using util::ValueType;

InterfaceDescription media_stage_interface() {
  InterfaceDescription desc("MediaStage", 1);
  desc.add_service(ServiceSignature{
      "process", {ParamSpec{"data", ValueType::kNull, false}},
      ValueType::kMap});
  return desc;
}

InterfaceDescription media_service_interface() {
  InterfaceDescription desc("MediaService", 1);
  desc.add_service(ServiceSignature{
      "frame",
      {ParamSpec{"session", ValueType::kInt, false},
       ParamSpec{"quality", ValueType::kInt, true}},
      ValueType::kMap});
  return desc;
}

// --- FrameExtractor ---------------------------------------------------------

FrameExtractor::FrameExtractor(const std::string& instance_name)
    : Component("FrameExtractor", instance_name) {
  set_provided(media_stage_interface());
  register_operation("process", 0.3, [](const Value& args) -> Result<Value> {
    return Value::object({{"data", args.at("data")},
                          {"stage", "extracted"}});
  });
}

// --- VideoEncoder -----------------------------------------------------------

VideoEncoder::VideoEncoder(const std::string& instance_name)
    : Component("VideoEncoder", instance_name) {
  set_provided(media_stage_interface());
  register_operation("process", 2.0, [this](const Value& args)
                                         -> Result<Value> {
    ++frames_encoded_;
    return Value::object({{"data", args.at("data")},
                          {"stage", "encoded"},
                          {"codec", codec_},
                          {"frames", frames_encoded_}});
  });
}

Status VideoEncoder::on_initialize(const Value& attributes) {
  const Value codec = attributes.at("codec");
  if (codec.is_string()) {
    codec_ = codec.as_string();
    if (codec_ != "fast" && codec_ != "quality") {
      return Error{ErrorCode::kInvalidArgument,
                   instance_name() + ": unknown codec '" + codec_ + "'"};
    }
    // The "quality" codec doubles the per-frame work.
    const double cost = codec_ == "quality" ? 4.0 : 2.0;
    (void)replace_operation("process", operation_handler("process"), cost);
  }
  return Status::success();
}

void VideoEncoder::save_state(Value& state) const {
  state["codec"] = codec_;
  state["frames_encoded"] = frames_encoded_;
}

Status VideoEncoder::load_state(const Value& state) {
  if (state.contains("codec")) codec_ = state.at("codec").as_string();
  if (state.contains("frames_encoded")) {
    frames_encoded_ = state.at("frames_encoded").as_int();
  }
  return Status::success();
}

// --- Transmitter ------------------------------------------------------------

Transmitter::Transmitter(const std::string& instance_name)
    : Component("Transmitter", instance_name) {
  set_provided(media_stage_interface());
  register_operation("process", 0.5, [this](const Value& args)
                                         -> Result<Value> {
    bytes_sent_ += static_cast<std::int64_t>(args.at("data").byte_size());
    return Value::object({{"data", args.at("data")},
                          {"stage", "transmitted"},
                          {"bytes_total", bytes_sent_}});
  });
}

void Transmitter::save_state(Value& state) const {
  state["bytes_sent"] = bytes_sent_;
}

Status Transmitter::load_state(const Value& state) {
  if (state.contains("bytes_sent")) {
    bytes_sent_ = state.at("bytes_sent").as_int();
  }
  return Status::success();
}

// --- MediaServer ------------------------------------------------------------

namespace {
std::uint64_t mix_session_key(std::int64_t key) {
  auto x = static_cast<std::uint64_t>(key);
  x ^= x >> 33;
  x *= 0xff51afd7ed558ccdULL;
  x ^= x >> 33;
  x *= 0xc4ceb9fe1a85ec53ULL;
  x ^= x >> 33;
  return x;
}
}  // namespace

MediaServer::MediaServer(const std::string& instance_name)
    : Component("MediaServer", instance_name) {
  set_provided(media_service_interface());
  register_operation("frame", 1.0, [this](const Value& args)
                                       -> Result<Value> {
    ++frames_served_;
    SessionSlot& slot = slot_for(args.at("session").as_int());
    ++slot.count;
    const int quality = args.contains("quality")
                            ? static_cast<int>(args.at("quality").as_int())
                            : 2;
    const QualityLevel& q = QualityLadder::at(quality);
    set_resume_point("after_frame");
    return Value::object({{"session", args.at("session")},
                          {"quality", static_cast<std::int64_t>(q.level)},
                          {"bytes", static_cast<std::int64_t>(q.frame_bytes)},
                          {"frame_no", slot.count}});
  });
}

Status MediaServer::on_initialize(const Value& attributes) {
  const Value slots = attributes.at("session_slots");
  if (slots.is_int()) {
    if (slots.as_int() < 1) {
      return Error{ErrorCode::kInvalidArgument,
                   instance_name() + ": session_slots must be positive"};
    }
    // Round up to a power of two so the direct map can mask.
    std::size_t n = 1;
    while (n < static_cast<std::size_t>(slots.as_int())) n <<= 1;
    session_slots_ = n;
    per_session_.clear();
  }
  return Status::success();
}

MediaServer::SessionSlot& MediaServer::slot_for(std::int64_t session) {
  if (per_session_.empty()) per_session_.assign(session_slots_, SessionSlot{});
  SessionSlot& slot =
      per_session_[mix_session_key(session) & (session_slots_ - 1)];
  if (slot.count != 0 && slot.key != session) {
    ++session_evictions_;
    slot.count = 0;
  }
  slot.key = session;
  return slot;
}

void MediaServer::save_state(Value& state) const {
  state["frames_served"] = frames_served_;
  // Exported in the historical JSON shape (session id as string -> count)
  // so snapshots cross the overhaul unchanged.
  util::ValueMap sessions;
  for (const SessionSlot& slot : per_session_) {
    if (slot.count != 0) {
      sessions[std::to_string(slot.key)] = Value{slot.count};
    }
  }
  state["per_session"] = Value{sessions};
}

Status MediaServer::load_state(const Value& state) {
  if (state.contains("frames_served")) {
    frames_served_ = state.at("frames_served").as_int();
  }
  if (state.at("per_session").is_map()) {
    per_session_.clear();
    for (const auto& [key, count] : state.at("per_session").as_map()) {
      if (!count.is_int()) continue;
      SessionSlot& slot = slot_for(std::stoll(key));
      slot.count = count.as_int();
    }
  }
  return Status::success();
}

void register_media_components(component::ComponentRegistry& registry) {
  registry.register_class<FrameExtractor>("FrameExtractor");
  registry.register_class<VideoEncoder>("VideoEncoder");
  registry.register_class<Transmitter>("Transmitter");
  registry.register_class<MediaServer>("MediaServer");
}

}  // namespace aars::telecom
