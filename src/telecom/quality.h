// Media quality ladder.
//
// The adaptation currency of the paper's motivating scenario: instead of
// "dropping calls [or] rejecting packets arbitrarily with no care about the
// rendering" (§2), sessions move up and down a ladder of quality levels,
// trading CPU work and frame bytes against perceived utility.
#pragma once

#include <cstddef>
#include <vector>

namespace aars::telecom {

struct QualityLevel {
  int level = 0;           // 0 = lowest
  const char* label = "";  // e.g. "audio-only"
  double work_units = 0;   // per-frame server work multiplier
  std::size_t frame_bytes = 0;
  double utility = 0;      // perceived value in [0,1]
};

class QualityLadder {
 public:
  static constexpr int kMin = 0;
  static constexpr int kMax = 4;

  /// The standard 5-level ladder (audio-only .. HD).
  static const std::vector<QualityLevel>& standard();
  /// Level accessor with clamping to [kMin, kMax].
  static const QualityLevel& at(int level);
  static int clamp(int level);
};

}  // namespace aars::telecom
