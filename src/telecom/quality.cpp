#include "telecom/quality.h"

#include <algorithm>

namespace aars::telecom {

const std::vector<QualityLevel>& QualityLadder::standard() {
  static const std::vector<QualityLevel> kLadder{
      {0, "audio-only", 0.2, 2 * 1024, 0.25},
      {1, "thumbnail", 0.5, 8 * 1024, 0.45},
      {2, "sd", 1.0, 24 * 1024, 0.65},
      {3, "hq", 2.0, 64 * 1024, 0.85},
      {4, "hd", 4.0, 160 * 1024, 1.0},
  };
  return kLadder;
}

int QualityLadder::clamp(int level) {
  return std::clamp(level, kMin, kMax);
}

const QualityLevel& QualityLadder::at(int level) {
  return standard()[static_cast<std::size_t>(clamp(level))];
}

}  // namespace aars::telecom
