// Media sessions.
//
// A session models one connected user: a stream of frame requests at a
// fixed rate towards a MediaService connector.  The session's quality level
// is the adaptation actuator — controllers (E6) and admission policies
// (E10) turn it up and down while QoS monitors watch latency and failures.
//
// Storage is a slot/generation slab sized for million-user campaigns
// (E19): one packed 32-byte slot per live session, recycled through a free
// list, with the generation folded into the SessionId so a stale handle to
// a recycled slot is detected instead of aliasing the new occupant.  Frame
// scheduling has two modes (Options::frame_quantum): exact per-session
// events (the legacy behaviour every control/admission experiment pins), or
// a coarse timing wheel that batches every session due in a quantum behind
// one event-loop entry — at scale, pending frame events would otherwise
// dominate the per-user footprint.
#pragma once

#include <functional>
#include <vector>

#include "runtime/application.h"
#include "telecom/quality.h"

namespace aars::telecom {

using util::Duration;
using util::NodeId;
using util::SessionId;
using util::SimTime;

class SessionManager {
 public:
  struct Options {
    util::ConnectorId service;  // connector to the MediaService
    double fps = 10.0;          // frame requests per second per session
    /// 0 (default): every session schedules its next frame as its own
    /// event-loop entry at its exact per-session phase.  Positive: frames
    /// are batched into a timing wheel of this bucket width — one pending
    /// event per non-empty bucket instead of one per session, with frame
    /// times quantized up to the bucket boundary.  Pick a quantum no
    /// larger than the frame gap (1/fps).
    Duration frame_quantum = 0;
  };

  SessionManager(runtime::Application& app, Options options);

  /// Starts a session streaming until `until` (absolute sim time).
  SessionId start_session(int quality, NodeId origin, SimTime until);
  util::Status end_session(SessionId session);
  bool active(SessionId session) const;
  std::size_t active_count() const { return live_; }

  /// Per-session quality actuation.
  util::Status set_quality(SessionId session, int level);
  util::Result<int> quality(SessionId session) const;
  /// Global quality actuation (the controller's knob): clamps every
  /// session (and the default for new ones) to `level`.
  void set_global_quality(int level);
  int global_quality() const { return global_quality_; }

  /// Aggregate demand in work units per second at current qualities.
  double offered_work_per_second() const;
  /// Frame rate shared by all sessions.
  double fps() const { return options_.fps; }

  /// Slots currently allocated (live sessions plus free-list capacity);
  /// exposed so capacity tests can assert the slab recycles instead of
  /// growing without bound.
  std::size_t slot_count() const { return slots_.size(); }

  // --- statistics -----------------------------------------------------------
  std::uint64_t frames_attempted() const { return frames_attempted_; }
  std::uint64_t frames_ok() const { return frames_ok_; }
  std::uint64_t frames_failed() const { return frames_failed_; }
  /// Sum of utility over delivered frames (the "care about rendering"
  /// metric).
  double delivered_utility() const { return delivered_utility_; }

  using FrameListener =
      std::function<void(SessionId, Duration latency, bool ok, int quality)>;
  void on_frame(FrameListener listener);

 private:
  static constexpr std::uint32_t kNil = 0xffffffffu;

  /// One session, packed.  `gen` brands the slot's current occupant: the
  /// SessionId carries (gen << 32) | (slot + 1), so handles to retired
  /// occupants stop resolving the moment the slot is recycled.  `next`
  /// doubles as the free-list link and the wheel-bucket chain.
  struct Slot {
    SimTime until = 0;
    NodeId origin;
    std::uint32_t gen = 1;
    std::uint32_t next = kNil;
    std::int16_t quality = 0;
    bool live = false;
    bool chained = false;  // linked into a wheel bucket (wheel mode only)
  };

  SessionId encode(std::uint32_t slot) const {
    return SessionId{(static_cast<std::uint64_t>(slots_[slot].gen) << 32) |
                     (slot + 1)};
  }
  /// Decodes a handle to a live slot index, or kNil for stale/forged ids.
  std::uint32_t decode(SessionId id) const;

  Duration frame_gap() const;
  void schedule_first_frame(std::uint32_t slot);
  /// Retires a slot; wheel-chained slots stay out of the free list until
  /// their bucket fires (the chain link lives inside the slot).
  void retire(std::uint32_t slot);

  // Exact mode: one event per session.
  void schedule_next_frame_exact(SessionId id);
  void fire_frame_exact(SessionId id);

  // Wheel mode: one event per non-empty bucket.
  void chain_into_bucket(std::uint32_t slot, std::uint64_t bucket);
  void fire_bucket(std::uint64_t bucket);
  void fire_frame(std::uint32_t slot);

  runtime::Application& app_;
  Options options_;
  std::vector<Slot> slots_;
  std::vector<std::uint32_t> free_;
  std::size_t live_ = 0;
  /// Wheel ring: head slot index per bucket, indexed by absolute bucket
  /// number modulo the ring size.  The ring spans two frame gaps plus
  /// slack (rechains reach one gap ahead, phase-staggered first frames one
  /// gap further), and a bucket is re-armed only after it fired, so an
  /// absolute bucket never collides with a pending one.
  std::vector<std::uint32_t> wheel_;
  int global_quality_ = QualityLadder::kMax;
  std::uint64_t frames_attempted_ = 0;
  std::uint64_t frames_ok_ = 0;
  std::uint64_t frames_failed_ = 0;
  double delivered_utility_ = 0.0;
  std::vector<FrameListener> listeners_;
};

}  // namespace aars::telecom
