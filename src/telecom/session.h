// Media sessions.
//
// A session models one connected user: a stream of frame requests at a
// fixed rate towards a MediaService connector.  The session's quality level
// is the adaptation actuator — controllers (E6) and admission policies
// (E10) turn it up and down while QoS monitors watch latency and failures.
#pragma once

#include <functional>
#include <map>

#include "runtime/application.h"
#include "telecom/quality.h"

namespace aars::telecom {

using util::Duration;
using util::NodeId;
using util::SessionId;
using util::SimTime;

class SessionManager {
 public:
  struct Options {
    util::ConnectorId service;  // connector to the MediaService
    double fps = 10.0;          // frame requests per second per session
  };

  SessionManager(runtime::Application& app, Options options);

  /// Starts a session streaming until `until` (absolute sim time).
  SessionId start_session(int quality, NodeId origin, SimTime until);
  util::Status end_session(SessionId session);
  bool active(SessionId session) const;
  std::size_t active_count() const { return sessions_.size(); }

  /// Per-session quality actuation.
  util::Status set_quality(SessionId session, int level);
  util::Result<int> quality(SessionId session) const;
  /// Global quality actuation (the controller's knob): clamps every
  /// session (and the default for new ones) to `level`.
  void set_global_quality(int level);
  int global_quality() const { return global_quality_; }

  /// Aggregate demand in work units per second at current qualities.
  double offered_work_per_second() const;
  /// Frame rate shared by all sessions.
  double fps() const { return options_.fps; }

  // --- statistics -----------------------------------------------------------
  std::uint64_t frames_attempted() const { return frames_attempted_; }
  std::uint64_t frames_ok() const { return frames_ok_; }
  std::uint64_t frames_failed() const { return frames_failed_; }
  /// Sum of utility over delivered frames (the "care about rendering"
  /// metric).
  double delivered_utility() const { return delivered_utility_; }

  using FrameListener =
      std::function<void(SessionId, Duration latency, bool ok, int quality)>;
  void on_frame(FrameListener listener);

 private:
  struct Session {
    SessionId id;
    NodeId origin;
    int quality;
    SimTime until;
    bool streaming = false;
  };

  void schedule_next_frame(SessionId id);
  void fire_frame(SessionId id);

  runtime::Application& app_;
  Options options_;
  util::IdGenerator<SessionId> ids_;
  std::map<SessionId, Session> sessions_;
  int global_quality_ = QualityLadder::kMax;
  std::uint64_t frames_attempted_ = 0;
  std::uint64_t frames_ok_ = 0;
  std::uint64_t frames_failed_ = 0;
  double delivered_utility_ = 0.0;
  std::vector<FrameListener> listeners_;
};

}  // namespace aars::telecom
