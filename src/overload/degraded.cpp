#include "overload/degraded.h"

#include <algorithm>

namespace aars::overload {

DegradedModeController::DegradedModeController(
    runtime::Application& app, reconfig::ReconfigurationEngine& engine,
    DegradedMode mode, OverloadTrigger trigger)
    : app_(app),
      engine_(engine),
      mode_(std::move(mode)),
      trigger_(std::move(trigger)) {
  obs::Registry& reg = obs::Registry::global();
  const obs::Labels labels{{"mode", mode_.name}};
  obs_degraded_ = &reg.gauge("overload.degraded", labels);
  obs_pressure_ = &reg.gauge("overload.pressure", labels);
  obs_enters_ = &reg.counter("overload.mode_enter", labels);
  obs_exits_ = &reg.counter("overload.mode_exit", labels);
}

void DegradedModeController::notify(const char* event, double pressure) {
  for (const TransitionHook& hook : hooks_) hook(event, pressure);
}

void DegradedModeController::evaluate(util::SimTime now) {
  if (!trigger_.pressure) return;
  last_pressure_ = trigger_.pressure();
  obs_pressure_->set(last_pressure_);
  switch (state_) {
    case State::kNominal:
      if (last_pressure_ >= trigger_.enter_above &&
          now - last_transition_ >= trigger_.min_dwell) {
        enter(now, last_pressure_);
      }
      break;
    case State::kDegraded:
      if (last_pressure_ <= trigger_.exit_below &&
          now - last_transition_ >= trigger_.min_dwell) {
        exit(now, last_pressure_);
      }
      break;
    case State::kEntering:
    case State::kExiting:
      break;  // waiting for swap protocols to settle
  }
}

void DegradedModeController::enter(util::SimTime now, double pressure) {
  ++enters_;
  obs_enters_->inc();
  obs_degraded_->set(1.0);
  last_transition_ = now;
  obs::Registry::global().trace(
      now, obs::TraceKind::kDecision, "overload." + mode_.name,
      "enter pressure=" + std::to_string(pressure));

  if (mode_.admission) {
    saved_rate_scale_ = mode_.admission->rate_scale();
    mode_.admission->set_rate_scale(mode_.admission_rate_scale);
  }
  if (mode_.monitor && mode_.contract_scale > 0.0) {
    saved_contract_ = mode_.monitor->contract();
    qos::QosContract widened = saved_contract_;
    const double s = mode_.contract_scale;
    widened.max_mean_latency = static_cast<util::Duration>(
        static_cast<double>(widened.max_mean_latency) * s);
    widened.max_peak_latency = static_cast<util::Duration>(
        static_cast<double>(widened.max_peak_latency) * s);
    widened.min_throughput /= s;
    widened.max_failure_rate = std::min(1.0, widened.max_failure_rate * s);
    mode_.monitor->set_contract(widened);
  }

  state_ = State::kEntering;
  original_types_.clear();
  std::size_t launched = 0;
  for (const DegradedSwap& swap : mode_.swaps) {
    const util::ComponentId id = app_.component_id(swap.instance);
    const component::Component* comp = app_.find_component(id);
    if (comp == nullptr) {
      ++swap_failures_;
      continue;
    }
    original_types_[swap.instance] = comp->type_name();
    ++pending_;
    ++launched;
    const std::string instance = swap.instance;
    engine_.replace_component(
        id, swap.degraded_type, instance + "~deg",
        [this](const reconfig::ReconfigReport& report) {
          if (!report.ok()) ++swap_failures_;
          if (--pending_ == 0) state_ = State::kDegraded;
        });
  }
  if (launched == 0) state_ = State::kDegraded;
  notify("enter", pressure);
}

void DegradedModeController::exit(util::SimTime now, double pressure) {
  ++exits_;
  obs_exits_->inc();
  obs_degraded_->set(0.0);
  last_transition_ = now;
  obs::Registry::global().trace(
      now, obs::TraceKind::kDecision, "overload." + mode_.name,
      "exit pressure=" + std::to_string(pressure));

  if (mode_.admission) mode_.admission->set_rate_scale(saved_rate_scale_);
  if (mode_.monitor && mode_.contract_scale > 0.0) {
    mode_.monitor->set_contract(saved_contract_);
  }

  state_ = State::kExiting;
  std::size_t launched = 0;
  for (const DegradedSwap& swap : mode_.swaps) {
    const auto original = original_types_.find(swap.instance);
    if (original == original_types_.end()) continue;  // never swapped in
    const util::ComponentId id = app_.component_id(swap.instance + "~deg");
    if (app_.find_component(id) == nullptr) {
      ++swap_failures_;
      continue;
    }
    ++pending_;
    ++launched;
    engine_.replace_component(
        id, original->second, swap.instance,
        [this](const reconfig::ReconfigReport& report) {
          if (!report.ok()) ++swap_failures_;
          if (--pending_ == 0) state_ = State::kNominal;
        });
  }
  if (launched == 0) state_ = State::kNominal;
  notify("exit", pressure);
}

}  // namespace aars::overload
