// Admission control with priority load shedding.
//
// The paper's motivating scenario is rush-hour overload: "a telecommunication
// network may be dynamically adapted to cope with the changing requests of
// mobile users" (§1).  The first line of defence is refusing work at the
// door instead of queueing it: AdmissionInterceptor sits at connector
// ingress (earliest in the chain) and combines a token bucket with a
// queue-depth gate.  Traffic classes (component::Priority) are shed lowest
// first, and kControl — quiescence and reconfiguration traffic — is always
// admitted, so the meta-level can still act on a saturated system.
#pragma once

#include <cstdint>
#include <functional>
#include <string>

#include "component/message.h"
#include "connector/connector.h"
#include "obs/metrics.h"
#include "util/time.h"

namespace aars::overload {

using component::Priority;

/// Knobs for AdmissionInterceptor. Zero disables the corresponding gate.
struct AdmissionPolicy {
  /// Sustained admission rate (requests/second); 0 disables the bucket.
  double rate_per_sec = 0.0;
  /// Bucket capacity in tokens; <= 0 defaults to one tenth of the rate.
  double burst = 0.0;
  /// Fraction of the bucket reserved for kNormal-and-above traffic:
  /// kBestEffort is only admitted while the bucket holds more than this
  /// reserve, so bursts of background traffic cannot drain it dry.
  double reserve_fraction = 0.2;
  /// Queue-depth gate: entering overload at >= queue_high, leaving at
  /// <= queue_low (hysteresis). 0 disables the gate.
  std::size_t queue_high = 0;
  /// <= 0 defaults to queue_high / 2.
  std::size_t queue_low = 0;
  /// While the depth gate reports overload, priorities strictly below this
  /// are shed. kControl can never be named here (it is always admitted).
  Priority shed_below = Priority::kHigh;
};

/// Token-bucket + queue-depth admission gate, installed as the earliest
/// interceptor on a connector. Shed requests fail with kOverloaded (not
/// kRejected) so callers can distinguish backpressure from policy denial;
/// kOverloaded is deliberately not retryable.
class AdmissionInterceptor : public connector::Interceptor {
 public:
  using Clock = std::function<util::SimTime()>;
  using DepthProbe = std::function<std::size_t()>;

  /// `clock` drives token refill (simulated time); `depth_probe` reports
  /// the backlog the queue gate watches (may be empty when queue_high = 0).
  AdmissionInterceptor(AdmissionPolicy policy, Clock clock,
                       DepthProbe depth_probe = {},
                       std::string label = "admission");

  std::string name() const override { return "admission"; }
  Verdict before(component::Message& request,
                 util::Result<util::Value>* reply_out) override;
  void after(const component::Message& request,
             util::Result<util::Value>& reply) override;

  const AdmissionPolicy& policy() const { return policy_; }
  /// Degraded modes tighten admission by scaling the effective rate
  /// (scale < 1 sheds more); restored to 1 when pressure subsides.
  void set_rate_scale(double scale) { rate_scale_ = scale; }
  double rate_scale() const { return rate_scale_; }

  std::uint64_t admitted() const { return admitted_; }
  std::uint64_t shed(Priority priority) const {
    return shed_[static_cast<std::size_t>(priority)];
  }
  std::uint64_t shed_total() const;
  /// True while the queue-depth gate is in its overloaded (shedding) band.
  bool overloaded() const { return overloaded_; }
  std::uint64_t pressure_transitions() const { return pressure_transitions_; }
  double tokens() const { return tokens_; }

 private:
  double effective_burst() const;
  void refill(util::SimTime now);
  Verdict shed_request(component::Message& request, Priority priority,
                       const char* reason,
                       util::Result<util::Value>* reply_out);

  AdmissionPolicy policy_;
  Clock clock_;
  DepthProbe depth_probe_;
  std::string label_;
  double rate_scale_ = 1.0;
  double tokens_;
  util::SimTime last_refill_ = 0;
  bool overloaded_ = false;
  std::uint64_t admitted_ = 0;
  std::uint64_t shed_[4] = {0, 0, 0, 0};
  std::uint64_t pressure_transitions_ = 0;
  // Observability mirrors (no-ops while the global registry is disabled).
  obs::Counter* obs_admitted_;
  obs::Counter* obs_shed_[4];
  obs::Gauge* obs_queue_depth_;
  obs::Gauge* obs_state_;
  obs::Counter* obs_transitions_;
};

}  // namespace aars::overload
