#include "overload/breaker.h"

#include "util/errors.h"

namespace aars::overload {

CircuitBreakerInterceptor::CircuitBreakerInterceptor(BreakerPolicy policy,
                                                     Clock clock,
                                                     std::string label)
    : policy_(policy), clock_(std::move(clock)), label_(std::move(label)) {
  if (clock_) window_start_ = clock_();
  obs::Registry& reg = obs::Registry::global();
  const obs::Labels gate{{"breaker", label_}};
  obs_state_ = &reg.gauge("breaker.state", gate);
  // Register every transition series up front so exports show them at zero
  // instead of materialising series mid-run.
  obs_to_open_ =
      &reg.counter("breaker.transitions", {{"breaker", label_}, {"to", "open"}});
  obs_to_half_open_ = &reg.counter("breaker.transitions",
                                   {{"breaker", label_}, {"to", "half_open"}});
  obs_to_closed_ = &reg.counter("breaker.transitions",
                                {{"breaker", label_}, {"to", "closed"}});
  obs_short_circuit_ = &reg.counter("breaker.short_circuit", gate);
  obs_state_->set(0.0);
}

void CircuitBreakerInterceptor::transition(BreakerState to, util::SimTime now) {
  if (state_ == to) return;
  state_ = to;
  ++transitions_;
  switch (to) {
    case BreakerState::kOpen:
      opened_at_ = now;
      obs_to_open_->inc();
      obs_state_->set(1.0);
      break;
    case BreakerState::kHalfOpen:
      probes_left_ = policy_.half_open_probes;
      probe_successes_ = 0;
      obs_to_half_open_->inc();
      obs_state_->set(2.0);
      break;
    case BreakerState::kClosed:
      samples_ = 0;
      failures_ = 0;
      window_start_ = now;
      obs_to_closed_->inc();
      obs_state_->set(0.0);
      break;
  }
  obs::Registry::global().trace(now, obs::TraceKind::kCustom,
                                "breaker." + label_, to_string(to));
}

void CircuitBreakerInterceptor::trip(util::SimTime now) {
  transition(BreakerState::kOpen, now);
}

connector::Interceptor::Verdict CircuitBreakerInterceptor::reject(
    component::Message& request, const char* reason,
    util::Result<util::Value>* reply_out) {
  request.headers[kHeaderBreakerRejected] = true;
  ++short_circuits_;
  obs_short_circuit_->inc();
  if (reply_out != nullptr) {
    *reply_out = util::Error{util::ErrorCode::kOverloaded,
                             label_ + ": " + reason};
  }
  return Verdict::kBlock;
}

void CircuitBreakerInterceptor::roll_window(util::SimTime now) {
  if (now - window_start_ >= policy_.window) {
    window_start_ = now;
    samples_ = 0;
    failures_ = 0;
  }
}

connector::Interceptor::Verdict CircuitBreakerInterceptor::before(
    component::Message& request, util::Result<util::Value>* reply_out) {
  const util::SimTime now = clock_ ? clock_() : 0;
  if (policy_.protect_control &&
      component::message_priority(request) == component::Priority::kControl) {
    request.headers[kHeaderBreakerExempt] = true;
    return Verdict::kPass;
  }
  if (state_ == BreakerState::kOpen &&
      now - opened_at_ >= policy_.open_cooldown) {
    transition(BreakerState::kHalfOpen, now);
  }
  switch (state_) {
    case BreakerState::kOpen:
      return reject(request, "breaker open", reply_out);
    case BreakerState::kHalfOpen:
      if (probes_left_ <= 0) {
        return reject(request, "breaker half-open, probe quota spent",
                      reply_out);
      }
      --probes_left_;
      request.headers[kHeaderBreakerProbe] = true;
      return Verdict::kPass;
    case BreakerState::kClosed:
      roll_window(now);
      return Verdict::kPass;
  }
  return Verdict::kPass;
}

void CircuitBreakerInterceptor::after(const component::Message& request,
                                      util::Result<util::Value>& reply) {
  // Our own short-circuits and exempt control traffic are not samples.
  if (request.headers.contains(kHeaderBreakerRejected) ||
      request.headers.contains(kHeaderBreakerExempt)) {
    return;
  }
  const util::SimTime now = clock_ ? clock_() : 0;
  const bool slow = policy_.latency_to_open > 0 && request.sent_at > 0 &&
                    now - request.sent_at > policy_.latency_to_open;
  const bool failure = !reply.ok() || slow;

  if (request.headers.contains(kHeaderBreakerProbe)) {
    if (state_ != BreakerState::kHalfOpen) return;  // stale probe reply
    if (failure) {
      transition(BreakerState::kOpen, now);
    } else if (++probe_successes_ >= policy_.half_open_probes) {
      transition(BreakerState::kClosed, now);
    }
    return;
  }

  if (state_ != BreakerState::kClosed) return;
  roll_window(now);
  ++samples_;
  if (failure) ++failures_;
  if (samples_ >= policy_.min_samples &&
      static_cast<double>(failures_) >=
          policy_.failure_rate_to_open * static_cast<double>(samples_)) {
    transition(BreakerState::kOpen, now);
  }
}

}  // namespace aars::overload
