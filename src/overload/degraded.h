// RAML-driven degraded modes.
//
// Shedding and breaking protect the system but serve nobody; the paper's
// answer to sustained pressure is *adaptation*: "interchanging the
// components ... of the targeted application" (§3).  A DegradedMode is a
// declared cheaper configuration — swap named instances for lightweight
// implementations (via the reconfiguration engine's strong replacement
// protocol, so state carries over), tighten admission, widen the QoS
// contract — and DegradedModeController moves the application into it when
// a pressure signal crosses the enter threshold and back out when pressure
// subsides, with dwell-time hysteresis so the system does not flap.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "obs/metrics.h"
#include "overload/admission.h"
#include "qos/contract.h"
#include "qos/monitor.h"
#include "reconfig/engine.h"
#include "runtime/application.h"
#include "util/time.h"

namespace aars::overload {

/// One component substitution in a degraded configuration.
struct DegradedSwap {
  std::string instance;       // instance to replace while degraded
  std::string degraded_type;  // cheaper implementation type
};

/// A declared degraded configuration.
struct DegradedMode {
  std::string name = "degraded";
  std::vector<DegradedSwap> swaps;
  /// Multiplies the admission rate while degraded (< 1 sheds more).
  double admission_rate_scale = 1.0;
  /// Widens the QoS contract while degraded: latency bounds multiply by
  /// this, throughput floors divide by it (> 1 loosens).
  double contract_scale = 1.0;
  /// Admission gate to scale (optional).
  std::shared_ptr<AdmissionInterceptor> admission;
  /// Monitor whose contract is widened (optional).
  std::shared_ptr<qos::QosMonitor> monitor;
};

/// When to enter/leave the degraded configuration.
struct OverloadTrigger {
  /// Pressure signal, e.g. a connector queue depth or shed rate.
  std::function<double()> pressure;
  double enter_above = 0.0;
  double exit_below = 0.0;
  /// Minimum time in a state before switching again (anti-flap).
  util::Duration min_dwell = 0;
};

/// Drives an application between its nominal and degraded configurations.
/// evaluate() is called periodically (Raml::tick via watch_overload, or
/// directly from tests/benches).
class DegradedModeController {
 public:
  enum class State { kNominal, kEntering, kDegraded, kExiting };

  using TransitionHook = std::function<void(const char* event, double pressure)>;

  DegradedModeController(runtime::Application& app,
                         reconfig::ReconfigurationEngine& engine,
                         DegradedMode mode, OverloadTrigger trigger);

  /// Samples pressure and advances the state machine. Swap protocols run
  /// asynchronously; the controller stays in kEntering/kExiting until every
  /// replacement completes.
  void evaluate(util::SimTime now);

  const DegradedMode& mode() const { return mode_; }
  State state() const { return state_; }
  bool degraded() const {
    return state_ == State::kDegraded || state_ == State::kExiting;
  }
  double last_pressure() const { return last_pressure_; }
  std::uint64_t enters() const { return enters_; }
  std::uint64_t exits() const { return exits_; }
  std::uint64_t swap_failures() const { return swap_failures_; }
  /// Replacement protocols still in flight.
  std::size_t pending() const { return pending_; }

  /// Fired on "enter" and "exit" (after the transition is initiated).
  void on_transition(TransitionHook hook) { hooks_.push_back(std::move(hook)); }

 private:
  void enter(util::SimTime now, double pressure);
  void exit(util::SimTime now, double pressure);
  void notify(const char* event, double pressure);

  runtime::Application& app_;
  reconfig::ReconfigurationEngine& engine_;
  DegradedMode mode_;
  OverloadTrigger trigger_;
  State state_ = State::kNominal;
  util::SimTime last_transition_ = 0;
  double last_pressure_ = 0.0;
  double saved_rate_scale_ = 1.0;
  qos::QosContract saved_contract_;
  /// instance -> original type, recorded at enter so exit can swap back.
  std::map<std::string, std::string> original_types_;
  std::size_t pending_ = 0;
  std::uint64_t enters_ = 0;
  std::uint64_t exits_ = 0;
  std::uint64_t swap_failures_ = 0;
  std::vector<TransitionHook> hooks_;
  // Observability mirrors (no-ops while the global registry is disabled).
  obs::Gauge* obs_degraded_;
  obs::Gauge* obs_pressure_;
  obs::Counter* obs_enters_;
  obs::Counter* obs_exits_;
};

}  // namespace aars::overload
