#include "overload/admission.h"

#include <algorithm>

#include "util/errors.h"

namespace aars::overload {

namespace {

constexpr double kMicrosPerSecond = 1e6;

}  // namespace

AdmissionInterceptor::AdmissionInterceptor(AdmissionPolicy policy, Clock clock,
                                           DepthProbe depth_probe,
                                           std::string label)
    : policy_(policy),
      clock_(std::move(clock)),
      depth_probe_(std::move(depth_probe)),
      label_(std::move(label)) {
  tokens_ = effective_burst();
  if (clock_) last_refill_ = clock_();
  obs::Registry& reg = obs::Registry::global();
  const obs::Labels gate{{"gate", label_}};
  obs_admitted_ = &reg.counter("overload.admitted", gate);
  for (int p = 0; p <= static_cast<int>(Priority::kControl); ++p) {
    obs_shed_[p] = &reg.counter(
        "overload.shed",
        {{"gate", label_},
         {"priority", component::to_string(static_cast<Priority>(p))}});
  }
  obs_queue_depth_ = &reg.gauge("overload.queue_depth", gate);
  obs_state_ = &reg.gauge("overload.state", gate);
  obs_transitions_ = &reg.counter("overload.pressure_transitions", gate);
}

double AdmissionInterceptor::effective_burst() const {
  if (policy_.burst > 0.0) return policy_.burst;
  return std::max(1.0, policy_.rate_per_sec / 10.0);
}

void AdmissionInterceptor::refill(util::SimTime now) {
  if (now <= last_refill_) return;
  const double elapsed_s =
      static_cast<double>(now - last_refill_) / kMicrosPerSecond;
  tokens_ = std::min(effective_burst(),
                     tokens_ + elapsed_s * policy_.rate_per_sec * rate_scale_);
  last_refill_ = now;
}

connector::Interceptor::Verdict AdmissionInterceptor::shed_request(
    component::Message& request, Priority priority, const char* reason,
    util::Result<util::Value>* reply_out) {
  ++shed_[static_cast<std::size_t>(priority)];
  obs_shed_[static_cast<std::size_t>(priority)]->inc();
  obs::Registry::global().trace(
      clock_ ? clock_() : 0, obs::TraceKind::kCustom, "overload." + label_,
      std::string("shed ") + component::to_string(priority) + " (" + reason +
          ") op=" + request.operation);
  if (reply_out != nullptr) {
    *reply_out = util::Error{util::ErrorCode::kOverloaded,
                             label_ + ": shed (" + reason + ")"};
  }
  return Verdict::kBlock;
}

connector::Interceptor::Verdict AdmissionInterceptor::before(
    component::Message& request, util::Result<util::Value>* reply_out) {
  const Priority priority = component::message_priority(request);
  // Control traffic (quiescence, reconfiguration) is admitted
  // unconditionally: the meta-level must be able to act under overload.
  if (priority == Priority::kControl) {
    ++admitted_;
    obs_admitted_->inc();
    return Verdict::kPass;
  }

  // Queue-depth gate with hysteresis.
  if (policy_.queue_high > 0 && depth_probe_) {
    const std::size_t depth = depth_probe_();
    obs_queue_depth_->set(static_cast<double>(depth));
    const std::size_t low =
        policy_.queue_low > 0 ? policy_.queue_low : policy_.queue_high / 2;
    if (!overloaded_ && depth >= policy_.queue_high) {
      overloaded_ = true;
      ++pressure_transitions_;
      obs_transitions_->inc();
      obs_state_->set(1.0);
    } else if (overloaded_ && depth <= low) {
      overloaded_ = false;
      ++pressure_transitions_;
      obs_transitions_->inc();
      obs_state_->set(0.0);
    }
    if (overloaded_ && priority < policy_.shed_below) {
      return shed_request(request, priority, "queue depth", reply_out);
    }
  }

  // Token bucket. kHigh bypasses it (the bucket polices bulk traffic);
  // kBestEffort additionally may not dip into the reserved fraction.
  if (policy_.rate_per_sec > 0.0 && priority < Priority::kHigh) {
    refill(clock_ ? clock_() : last_refill_);
    const double floor = priority == Priority::kBestEffort
                             ? policy_.reserve_fraction * effective_burst()
                             : 0.0;
    if (tokens_ - 1.0 < floor) {
      return shed_request(request, priority, "rate", reply_out);
    }
    tokens_ -= 1.0;
  }

  ++admitted_;
  obs_admitted_->inc();
  return Verdict::kPass;
}

void AdmissionInterceptor::after(const component::Message&,
                                 util::Result<util::Value>&) {}

std::uint64_t AdmissionInterceptor::shed_total() const {
  std::uint64_t total = 0;
  for (std::uint64_t s : shed_) total += s;
  return total;
}

}  // namespace aars::overload
