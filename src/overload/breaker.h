// Circuit breakers for connector bindings.
//
// Retries (fault::RetryInterceptor) repair transient failures but amplify
// sustained ones: every retry against a saturated provider adds load.  The
// breaker composes with retry by sitting *earlier* in the chain (lower
// attach priority): while open it answers kOverloaded before the retry
// interceptor ever stamps its headers, so a tripped binding generates zero
// provider traffic and zero retry attempts.  Classic three-state machine:
//
//   closed --(failure rate / latency over a tumbling window)--> open
//   open --(cooldown elapsed)--> half-open (admits a fixed probe quota)
//   half-open --(all probes succeed)--> closed;  --(any probe fails)--> open
#pragma once

#include <cstdint>
#include <functional>
#include <string>

#include "component/message.h"
#include "connector/connector.h"
#include "obs/metrics.h"
#include "util/time.h"

namespace aars::overload {

enum class BreakerState { kClosed, kOpen, kHalfOpen };

constexpr const char* to_string(BreakerState s) {
  switch (s) {
    case BreakerState::kClosed: return "closed";
    case BreakerState::kOpen: return "open";
    case BreakerState::kHalfOpen: return "half_open";
  }
  return "?";
}

/// Knobs for CircuitBreakerInterceptor.
struct BreakerPolicy {
  /// Replies observed in the current window before the failure rate is
  /// trusted (avoids tripping on one unlucky call).
  std::size_t min_samples = 10;
  /// Open when window failures / samples reaches this fraction.
  double failure_rate_to_open = 0.5;
  /// When > 0, a reply slower than this counts as a failure even if it
  /// succeeded (latency-threshold trigger). Microseconds.
  util::Duration latency_to_open = 0;
  /// Tumbling statistics window.
  util::Duration window = util::milliseconds(100);
  /// How long an open breaker rejects before probing again.
  util::Duration open_cooldown = util::milliseconds(500);
  /// Probes admitted in half-open; all must succeed to close.
  int half_open_probes = 3;
  /// Control traffic passes an open breaker (the meta-level may need the
  /// binding to execute a repair).
  bool protect_control = true;
};

// Headers the breaker stamps so its after() can classify replies without
// guessing: short-circuited requests are not samples, probe replies drive
// the half-open transition, exempt (control) traffic is untracked.
inline constexpr const char* kHeaderBreakerRejected = "__breaker_rejected";
inline constexpr const char* kHeaderBreakerProbe = "__breaker_probe";
inline constexpr const char* kHeaderBreakerExempt = "__breaker_exempt";

/// Per-binding circuit breaker, attached earlier than retry on the
/// connector chain. While open, requests fail with kOverloaded without
/// touching the provider (and without being retried — kOverloaded is not a
/// retryable code).
class CircuitBreakerInterceptor : public connector::Interceptor {
 public:
  using Clock = std::function<util::SimTime()>;

  CircuitBreakerInterceptor(BreakerPolicy policy, Clock clock,
                            std::string label = "breaker");

  std::string name() const override { return "breaker"; }
  Verdict before(component::Message& request,
                 util::Result<util::Value>* reply_out) override;
  void after(const component::Message& request,
             util::Result<util::Value>& reply) override;

  const BreakerPolicy& policy() const { return policy_; }
  BreakerState state() const { return state_; }
  std::uint64_t transitions() const { return transitions_; }
  /// Requests rejected without reaching the provider (open / probe quota).
  std::uint64_t short_circuits() const { return short_circuits_; }
  std::size_t window_samples() const { return samples_; }
  std::size_t window_failures() const { return failures_; }

  /// Force-opens the breaker (RAML intercession: isolate a binding).
  void trip(util::SimTime now);

 private:
  void transition(BreakerState to, util::SimTime now);
  Verdict reject(component::Message& request, const char* reason,
                 util::Result<util::Value>* reply_out);
  void roll_window(util::SimTime now);

  BreakerPolicy policy_;
  Clock clock_;
  std::string label_;
  BreakerState state_ = BreakerState::kClosed;
  util::SimTime opened_at_ = 0;
  util::SimTime window_start_ = 0;
  std::size_t samples_ = 0;
  std::size_t failures_ = 0;
  int probes_left_ = 0;
  int probe_successes_ = 0;
  std::uint64_t transitions_ = 0;
  std::uint64_t short_circuits_ = 0;
  // Observability mirrors (no-ops while the global registry is disabled).
  obs::Gauge* obs_state_;
  obs::Counter* obs_to_open_;
  obs::Counter* obs_to_half_open_;
  obs::Counter* obs_to_closed_;
  obs::Counter* obs_short_circuit_;
};

}  // namespace aars::overload
