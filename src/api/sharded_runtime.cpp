#include "api/sharded_runtime.h"

#include <utility>

#include "analysis/adl_screen.h"

namespace aars {

using util::Error;
using util::ErrorCode;
using util::Result;
using util::Status;
using util::Value;

ShardedRuntime::Builder ShardedRuntime::builder() { return Builder{}; }

// --- invocation ----------------------------------------------------------------

namespace {

/// Origin node for a call entering a connector's home world from the
/// fabric: the first provider's own node, so the fabric latency (already
/// charged by the mailbox schedule time) is the only cross-shard cost.
util::NodeId fabric_origin(runtime::Application& app,
                           const connector::Connector& conn) {
  return app.placement(conn.providers().front());
}

}  // namespace

void ShardedRuntime::call(std::size_t from, const std::string& connector_name,
                          const std::string& operation, Value args,
                          ResponseCallback callback) {
  const auto home_opt = router_->connector_shard(connector_name);
  util::require(home_opt.has_value(), "connector not assigned to any shard");
  const std::size_t home = *home_opt;
  const util::Symbol op{operation};

  if (home == from) {
    runtime::Application& app = runtimes_[home]->app();
    const auto cid = app.connector_id(connector_name);
    const connector::Connector* conn = app.find_connector(cid);
    util::require(conn != nullptr && !conn->providers().empty(),
                  "connector has no providers");
    app.invoke_async(cid, op, args, fabric_origin(app, *conn),
                     std::move(callback));
    return;
  }

  // Crossing the fabric: detach the payload (COW buffers must not be
  // shared across shard threads), ship the request one link latency out,
  // and route the reply back the same way.  The callback is moved across
  // twice but only ever *runs* on shard `from`; end-to-end latency is
  // measured on the origin shard's clock.
  args.deep_detach();
  const util::SimTime depart = runtimes_[from]->loop().now();
  const util::Duration lat = link_latency_;
  ShardedRuntime* self = this;
  shard_set_->post(
      from, home, depart + lat,
      [self, from, home, op, lat, depart, name = connector_name,
       args = std::move(args), callback = std::move(callback)]() mutable {
        runtime::Application& app = self->runtimes_[home]->app();
        sim::EventLoop& home_loop = self->runtimes_[home]->loop();
        const auto cid = app.connector_id(name);
        const connector::Connector* conn = app.find_connector(cid);
        if (conn == nullptr || conn->providers().empty()) {
          self->shard_set_->post(
              home, from, home_loop.now() + lat,
              [self, from, depart, callback = std::move(callback)]() mutable {
                callback(Error{ErrorCode::kUnavailable,
                               "connector unavailable on its home shard"},
                         self->runtimes_[from]->loop().now() - depart);
              });
          return;
        }
        app.invoke_async(
            cid, op, args, fabric_origin(app, *conn),
            [self, from, home, lat, depart,
             callback = std::move(callback)](Result<Value> result,
                                             util::Duration) mutable {
              if (result.ok()) result.value().deep_detach();
              sim::EventLoop& reply_loop = self->runtimes_[home]->loop();
              self->shard_set_->post(
                  home, from, reply_loop.now() + lat,
                  [self, from, depart, result = std::move(result),
                   callback = std::move(callback)]() mutable {
                    callback(std::move(result),
                             self->runtimes_[from]->loop().now() - depart);
                  });
            });
      });
}

Status ShardedRuntime::post_event(std::size_t from,
                                  const std::string& connector_name,
                                  const std::string& operation, Value args) {
  const auto home_opt = router_->connector_shard(connector_name);
  if (!home_opt.has_value()) {
    return Error{ErrorCode::kNotFound,
                 "connector not assigned to any shard: " + connector_name};
  }
  const std::size_t home = *home_opt;
  const util::Symbol op{operation};
  if (home == from) {
    runtime::Application& app = runtimes_[home]->app();
    const auto cid = app.connector_id(connector_name);
    const connector::Connector* conn = app.find_connector(cid);
    if (conn == nullptr || conn->providers().empty()) {
      return Error{ErrorCode::kUnavailable, "connector has no providers"};
    }
    return app.send_event(cid, op, args, fabric_origin(app, *conn));
  }
  args.deep_detach();
  const util::SimTime depart = runtimes_[from]->loop().now();
  ShardedRuntime* self = this;
  shard_set_->post(
      from, home, depart + link_latency_,
      [self, home, op, name = connector_name,
       args = std::move(args)]() mutable {
        runtime::Application& app = self->runtimes_[home]->app();
        const auto cid = app.connector_id(name);
        const connector::Connector* conn = app.find_connector(cid);
        if (conn == nullptr || conn->providers().empty()) return;
        (void)app.send_event(cid, op, args, fabric_origin(app, *conn));
      });
  return Status::success();
}

// --- reconfiguration -----------------------------------------------------------

void ShardedRuntime::migrate_across(const std::string& instance,
                                    const std::string& target_host,
                                    reconfig::Done done) {
  const auto src = router_->component_shard(instance);
  const auto dst = router_->host_shard(target_host);
  util::require(src.has_value(), "component not assigned to any shard");
  util::require(dst.has_value(), "host not assigned to any shard");
  if (*src == *dst) {
    Runtime& rt = *runtimes_[*src];
    const auto component = rt.app().component_id(instance);
    const auto node = rt.network().node_id(target_host);
    rt.engine().migrate_component(component, node, std::move(done));
    return;
  }
  reconfig::CrossShardMigrator::Shard source{*src, &runtimes_[*src]->app(),
                                             &runtimes_[*src]->engine()};
  reconfig::CrossShardMigrator::Shard target{*dst, &runtimes_[*dst]->app(),
                                             &runtimes_[*dst]->engine()};
  reconfig::CrossShardMigrator::Request request;
  request.instance = instance;
  request.target_host = target_host;
  reconfig::CrossShardMigrator::start(*shard_set_, *router_, source, target,
                                      std::move(request), std::move(done));
}

// --- Builder -------------------------------------------------------------------

ShardedRuntime::Builder& ShardedRuntime::Builder::with_shards(std::size_t n) {
  shards_ = n;
  return *this;
}

ShardedRuntime::Builder& ShardedRuntime::Builder::cross_shard_link(
    sim::LinkSpec spec) {
  fabric_ = spec;
  return *this;
}

ShardedRuntime::Builder& ShardedRuntime::Builder::mailbox_capacity(
    std::size_t capacity) {
  mailbox_capacity_ = capacity;
  return *this;
}

ShardedRuntime::Builder& ShardedRuntime::Builder::host(const std::string& name,
                                                       double capacity,
                                                       std::size_t shard) {
  hosts_.push_back(HostDecl{name, capacity, shard});
  return *this;
}

ShardedRuntime::Builder& ShardedRuntime::Builder::link(const std::string& a,
                                                       const std::string& b,
                                                       sim::LinkSpec spec) {
  links_.push_back(LinkDecl{a, b, spec});
  return *this;
}

ShardedRuntime::Builder& ShardedRuntime::Builder::link_all(sim::LinkSpec spec) {
  mesh_ = spec;
  return *this;
}

ShardedRuntime::Builder& ShardedRuntime::Builder::component_type(
    const std::string& name, component::ComponentRegistry::Factory factory) {
  types_.emplace_back(name, std::move(factory));
  return *this;
}

ShardedRuntime::Builder& ShardedRuntime::Builder::deploy(
    const std::string& type, const std::string& instance,
    const std::string& host, Value attributes) {
  deploys_.push_back(DeployDecl{type, instance, host, std::move(attributes)});
  return *this;
}

ShardedRuntime::Builder& ShardedRuntime::Builder::connect(
    connector::ConnectorSpec spec, std::vector<std::string> providers) {
  connects_.push_back(ConnectDecl{std::move(spec), std::move(providers)});
  return *this;
}

Result<std::unique_ptr<ShardedRuntime>> ShardedRuntime::Builder::build() {
  if (shards_ == 0) {
    return Error{ErrorCode::kInvalidArgument, "need at least one shard"};
  }
  if (fabric_.latency <= 0) {
    return Error{ErrorCode::kInvalidArgument,
                 "cross-shard link latency must be positive (it is the "
                 "conservative window lookahead)"};
  }
  auto router = std::make_unique<runtime::ShardRouter>(shards_);

  // Resolve every name to its home shard up front (and catch conflicts).
  for (const HostDecl& h : hosts_) {
    if (h.shard >= shards_) {
      return Error{ErrorCode::kInvalidArgument,
                   "host '" + h.name + "' assigned to unknown shard"};
    }
    if (router->host_shard(h.name).has_value()) {
      return Error{ErrorCode::kAlreadyExists,
                   "host declared twice: " + h.name};
    }
    router->assign_host(h.name, h.shard);
  }
  for (const DeployDecl& d : deploys_) {
    const auto shard = router->host_shard(d.host);
    if (!shard.has_value()) {
      return Error{ErrorCode::kNotFound,
                   "deploy of '" + d.instance + "': unknown host " + d.host};
    }
    if (router->component_shard(d.instance).has_value()) {
      return Error{ErrorCode::kAlreadyExists,
                   "instance declared twice: " + d.instance};
    }
    router->assign_component(d.instance, *shard);
  }
  for (const ConnectDecl& c : connects_) {
    if (c.providers.empty()) {
      return Error{ErrorCode::kInvalidArgument,
                   "connector '" + c.spec.name + "' needs providers"};
    }
    std::optional<std::size_t> home;
    for (const std::string& provider : c.providers) {
      const auto shard = router->component_shard(provider);
      if (!shard.has_value()) {
        return Error{ErrorCode::kNotFound, "connector '" + c.spec.name +
                                               "': unknown provider " +
                                               provider};
      }
      if (home.has_value() && *home != *shard) {
        return Error{ErrorCode::kInvalidArgument,
                     "connector '" + c.spec.name +
                         "': providers span shards (a connector is homed "
                         "on exactly one shard)"};
      }
      home = *shard;
    }
    if (router->connector_shard(c.spec.name).has_value()) {
      return Error{ErrorCode::kAlreadyExists,
                   "connector declared twice: " + c.spec.name};
    }
    router->assign_connector(c.spec.name, *home);
  }

  // ADL worlds are homed on shard 0.  Compile each source up front so the
  // router learns every declared name (cross-shard calls may target ADL
  // connectors); shard 0's own builder recompiles and deploys them.
  constexpr std::size_t kAdlShard = 0;
  std::vector<adl::CompilationResult> adl_compiled;
  if (!options_.adl_sources.empty() || !options_.adl_files.empty()) {
    analysis::VerifierOptions screen_options;
    screen_options.max_states = options_.verify_max_states;
    for (const std::string& source : options_.adl_sources) {
      adl_compiled.push_back(analysis::compile_adl(source, screen_options));
    }
    for (const std::string& path : options_.adl_files) {
      adl_compiled.push_back(
          analysis::compile_adl_file(path, screen_options));
    }
    for (adl::CompilationResult& result : adl_compiled) {
      if (!result.ok()) return result.diagnostics.to_error();
      for (const adl::AstNode& node : result.config.ast.nodes) {
        if (router->host_shard(node.name).has_value()) {
          return Error{ErrorCode::kAlreadyExists,
                       "host declared twice: " + node.name};
        }
        router->assign_host(node.name, kAdlShard);
      }
      for (const adl::AstInstance& inst : result.config.ast.instances) {
        if (router->component_shard(inst.name).has_value()) {
          return Error{ErrorCode::kAlreadyExists,
                       "instance declared twice: " + inst.name};
        }
        router->assign_component(inst.name, kAdlShard);
      }
      for (const adl::AstConnector& conn : result.config.ast.connectors) {
        if (router->connector_shard(conn.name).has_value()) {
          return Error{ErrorCode::kAlreadyExists,
                       "connector declared twice: " + conn.name};
        }
        router->assign_connector(conn.name, kAdlShard);
      }
    }
  }

  // Declare each shard's world through the ordinary Runtime builder, in
  // declaration order, so a 1-shard world is built exactly like the
  // equivalent unsharded Runtime (byte-identical execution).
  auto sharded = std::unique_ptr<ShardedRuntime>(new ShardedRuntime());
  sharded->link_latency_ = fabric_.latency;
  for (std::size_t s = 0; s < shards_; ++s) {
    Runtime::Builder rb = Runtime::builder();
    // Config first, seed after: config() replaces the whole struct and
    // would clobber the per-shard seed offset.
    rb.config(options_.config);
    rb.seed(options_.config.seed + s);
    if (options_.metrics && s == 0) rb.metrics();
    if (options_.trace_capacity && s == 0) {
      rb.trace_ring(*options_.trace_capacity);
    }
    if (s == kAdlShard) {
      for (const std::string& source : options_.adl_sources) rb.adl(source);
      for (const std::string& path : options_.adl_files) rb.with_adl(path);
      if (options_.raml_period.has_value()) {
        rb.with_raml(*options_.raml_period);
      }
    }
    for (const HostDecl& h : hosts_) {
      if (h.shard == s) rb.host(h.name, h.capacity);
    }
    for (const LinkDecl& l : links_) {
      const auto sa = router->host_shard(l.a);
      const auto sb = router->host_shard(l.b);
      if (!sa.has_value() || !sb.has_value()) {
        return Error{ErrorCode::kNotFound, "link references unknown host"};
      }
      if (*sa != *sb) {
        return Error{ErrorCode::kInvalidArgument,
                     "link '" + l.a + "' <-> '" + l.b +
                         "' spans shards; cross-shard reachability comes "
                         "from the fabric (cross_shard_link)"};
      }
      if (*sa == s) rb.link(l.a, l.b, l.spec);
    }
    if (mesh_.has_value()) rb.link_all(*mesh_);
    for (const auto& [name, factory] : types_) rb.component_type(name, factory);
    for (const DeployDecl& d : deploys_) {
      if (*router->host_shard(d.host) == s) {
        rb.deploy(d.type, d.instance, d.host, d.attributes);
      }
    }
    for (const ConnectDecl& c : connects_) {
      if (*router->connector_shard(c.spec.name) == s) {
        rb.connect(c.spec, c.providers);
      }
    }
    if (options_.engine_options.has_value()) {
      rb.with_reconfig(*options_.engine_options);
    }
    if (options_.verify_mode.has_value()) {
      rb.with_verification(*options_.verify_mode, options_.verify_max_states);
    }
    auto built = rb.build();
    if (!built.ok()) return built.error();
    sharded->runtimes_.push_back(std::move(built).value());
  }

  // Stamp connector home shards now that the connectors exist.
  for (const ConnectDecl& c : connects_) {
    const std::size_t home = *router->connector_shard(c.spec.name);
    Runtime& rt = *sharded->runtimes_[home];
    rt.app().find_connector(rt.connector(c.spec.name))->set_home_shard(home);
  }
  for (const adl::CompilationResult& result : adl_compiled) {
    Runtime& rt = *sharded->runtimes_[kAdlShard];
    for (const adl::AstConnector& conn : result.config.ast.connectors) {
      rt.app()
          .find_connector(rt.connector(conn.name))
          ->set_home_shard(kAdlShard);
    }
  }

  std::vector<sim::EventLoop*> loops;
  loops.reserve(shards_);
  for (auto& rt : sharded->runtimes_) loops.push_back(&rt->loop());
  sim::ShardSet::Options options;
  options.lookahead = fabric_.latency;
  options.mailbox_capacity = mailbox_capacity_;
  sharded->router_ = std::move(router);
  sharded->shard_set_ =
      std::make_unique<sim::ShardSet>(std::move(loops), options);
  return sharded;
}

}  // namespace aars
