#include "api/runtime.h"

#include "analysis/adl_screen.h"
#include "reconfig/rules.h"
#include "runtime/deployer.h"

namespace aars {

using util::Error;
using util::ErrorCode;
using util::Result;
using util::Status;

Runtime::Runtime() = default;

Runtime::Builder Runtime::builder() { return Builder{}; }

meta::Raml& Runtime::raml() {
  util::require(raml_ != nullptr, "Runtime built without with_raml()");
  return *raml_;
}

util::NodeId Runtime::host(const std::string& name) const {
  return network_.node_id(name);
}

util::ComponentId Runtime::component(const std::string& instance) const {
  return app_->component_id(instance);
}

util::ConnectorId Runtime::connector(const std::string& name) const {
  return app_->connector_id(name);
}

std::shared_ptr<overload::AdmissionInterceptor> Runtime::admission(
    const std::string& connector_name) const {
  auto it = admissions_.find(connector_name);
  return it == admissions_.end() ? nullptr : it->second;
}

std::shared_ptr<overload::CircuitBreakerInterceptor> Runtime::breaker(
    const std::string& connector_name) const {
  auto it = breakers_.find(connector_name);
  return it == breakers_.end() ? nullptr : it->second;
}

// --- Builder -----------------------------------------------------------------

Runtime::Builder& Runtime::Builder::host(const std::string& name,
                                         double capacity) {
  hosts_.push_back(HostDecl{name, capacity});
  return *this;
}

Runtime::Builder& Runtime::Builder::link(const std::string& a,
                                         const std::string& b,
                                         sim::LinkSpec spec) {
  links_.push_back(LinkDecl{a, b, spec});
  return *this;
}

Runtime::Builder& Runtime::Builder::link_all(sim::LinkSpec spec) {
  mesh_ = spec;
  return *this;
}

Runtime::Builder& Runtime::Builder::component_type(
    const std::string& name, component::ComponentRegistry::Factory factory) {
  installers_.push_back(
      [name, factory = std::move(factory)](
          component::ComponentRegistry& registry) mutable {
        registry.register_type(name, std::move(factory));
      });
  return *this;
}

Runtime::Builder& Runtime::Builder::install_types(
    std::function<void(component::ComponentRegistry&)> installer) {
  installers_.push_back(std::move(installer));
  return *this;
}

Runtime::Builder& Runtime::Builder::deploy(const std::string& type,
                                           const std::string& instance,
                                           const std::string& host,
                                           util::Value attributes) {
  deploys_.push_back(
      DeployDecl{type, instance, host, std::move(attributes)});
  return *this;
}

Runtime::Builder& Runtime::Builder::connect(
    connector::ConnectorSpec spec, std::vector<std::string> providers,
    std::vector<std::string> aspects) {
  connects_.push_back(
      ConnectDecl{std::move(spec), std::move(providers), std::move(aspects)});
  return *this;
}

Runtime::Builder& Runtime::Builder::bind(const std::string& caller_instance,
                                         const std::string& port,
                                         const std::string& connector_name) {
  binds_.push_back(BindDecl{caller_instance, port, connector_name});
  return *this;
}

Runtime::Builder& Runtime::Builder::with_retry(
    const std::string& connector_name, fault::RetryPolicy policy) {
  retries_.push_back(RetryDecl{connector_name, policy});
  return *this;
}

Runtime::Builder& Runtime::Builder::with_admission(
    const std::string& connector_name, overload::AdmissionPolicy policy) {
  admissions_.push_back(AdmissionDecl{connector_name, policy});
  return *this;
}

Runtime::Builder& Runtime::Builder::with_breaker(
    const std::string& connector_name, overload::BreakerPolicy policy) {
  breakers_.push_back(BreakerDecl{connector_name, policy});
  return *this;
}

Runtime::Builder& Runtime::Builder::with_degraded_mode(
    const std::string& connector_name, overload::OverloadTrigger trigger,
    overload::DegradedMode mode) {
  degraded_modes_.push_back(
      DegradedDecl{connector_name, std::move(trigger), std::move(mode)});
  return *this;
}

Runtime::Builder& Runtime::Builder::with_self_repair() {
  self_repair_ = true;
  return *this;
}

Runtime::Builder& Runtime::Builder::with_faults(
    fault::FaultScenario scenario) {
  scenarios_.push_back(std::move(scenario));
  return *this;
}

Runtime::Builder& Runtime::Builder::with_fault_text(
    std::string scenario_text) {
  scenario_texts_.push_back(std::move(scenario_text));
  return *this;
}

Result<std::unique_ptr<Runtime>> Runtime::Builder::build() {
  if (options_.metrics) obs::Registry::global().set_enabled(true);
  if (options_.trace_capacity) {
    obs::Registry::global().set_trace_capacity(*options_.trace_capacity);
  }

  auto rt = std::unique_ptr<Runtime>(new Runtime());
  for (auto& installer : installers_) installer(rt->types_);

  for (const HostDecl& decl : hosts_) {
    if (rt->network_.node_id(decl.name).valid()) {
      return Error{ErrorCode::kAlreadyExists,
                   "duplicate host '" + decl.name + "'"};
    }
    rt->network_.add_node(decl.name, decl.capacity);
  }
  for (const LinkDecl& decl : links_) {
    const util::NodeId a = rt->network_.node_id(decl.a);
    const util::NodeId b = rt->network_.node_id(decl.b);
    if (!a.valid() || !b.valid()) {
      return Error{ErrorCode::kNotFound, "link references unknown host '" +
                                             (a.valid() ? decl.b : decl.a) +
                                             "'"};
    }
    rt->network_.add_duplex_link(a, b, decl.spec);
  }
  if (mesh_.has_value()) {
    const std::vector<util::NodeId> nodes = rt->network_.node_ids();
    for (std::size_t i = 0; i < nodes.size(); ++i) {
      for (std::size_t j = i + 1; j < nodes.size(); ++j) {
        if (!rt->network_.has_link(nodes[i], nodes[j])) {
          rt->network_.add_duplex_link(nodes[i], nodes[j], *mesh_);
        }
      }
    }
  }

  rt->app_ = std::make_unique<runtime::Application>(rt->loop_, rt->network_,
                                                    rt->types_, options_.config);
  fault::register_fault_aspects(rt->app_->connector_factory());

  // ADL sources run the full five-stage compiler (parse -> sema -> emit ->
  // analysis screen), so an unverifiable rule or infeasible goal fails the
  // build here, not mid-simulation.  Rule programs from every source merge
  // into one set, installed into RAML after the world is complete.
  analysis::VerifierOptions screen_options;
  screen_options.max_states = options_.verify_max_states;
  adl::RuleProgram rule_program;
  auto take_program = [&rule_program](adl::CompilationResult& result) {
    std::move(result.program.rules.begin(), result.program.rules.end(),
              std::back_inserter(rule_program.rules));
    std::move(result.program.goals.begin(), result.program.goals.end(),
              std::back_inserter(rule_program.goals));
    std::move(result.program.scenarios.begin(),
              result.program.scenarios.end(),
              std::back_inserter(rule_program.scenarios));
  };
  for (const std::string& source : options_.adl_sources) {
    adl::CompilationResult result =
        analysis::compile_adl(source, screen_options);
    if (!result.ok()) return result.diagnostics.to_error();
    auto deployment = runtime::deploy(result.config, *rt->app_);
    if (!deployment.ok()) return deployment.error();
    take_program(result);
  }
  for (const std::string& path : options_.adl_files) {
    adl::CompilationResult result =
        analysis::compile_adl_file(path, screen_options);
    if (!result.ok()) return result.diagnostics.to_error();
    auto deployment = runtime::deploy(result.config, *rt->app_);
    if (!deployment.ok()) return deployment.error();
    take_program(result);
  }

  for (const DeployDecl& decl : deploys_) {
    const util::NodeId node = rt->network_.node_id(decl.host);
    if (!node.valid()) {
      return Error{ErrorCode::kNotFound, "deploy '" + decl.instance +
                                             "': unknown host '" + decl.host +
                                             "'"};
    }
    auto created = rt->app_->instantiate(decl.type, decl.instance, node,
                                         decl.attributes);
    if (!created.ok()) return created.error();
  }

  for (const ConnectDecl& decl : connects_) {
    auto conn = rt->app_->create_connector(decl.spec, decl.aspects);
    if (!conn.ok()) return conn.error();
    for (const std::string& provider : decl.providers) {
      const util::ComponentId id = rt->app_->component_id(provider);
      if (!id.valid()) {
        return Error{ErrorCode::kNotFound, "connector '" + decl.spec.name +
                                               "': unknown provider '" +
                                               provider + "'"};
      }
      if (Status s = rt->app_->add_provider(conn.value(), id); !s.ok()) {
        return s.error();
      }
    }
  }

  for (const BindDecl& decl : binds_) {
    const util::ComponentId caller = rt->app_->component_id(decl.caller);
    const util::ConnectorId conn = rt->app_->connector_id(decl.connector);
    if (!caller.valid()) {
      return Error{ErrorCode::kNotFound,
                   "bind: unknown caller '" + decl.caller + "'"};
    }
    if (!conn.valid()) {
      return Error{ErrorCode::kNotFound,
                   "bind: unknown connector '" + decl.connector + "'"};
    }
    if (Status s = rt->app_->bind(caller, decl.port, conn); !s.ok()) {
      return s.error();
    }
  }

  for (const RetryDecl& decl : retries_) {
    const util::ConnectorId id = rt->app_->connector_id(decl.connector);
    connector::Connector* conn =
        id.valid() ? rt->app_->find_connector(id) : nullptr;
    if (conn == nullptr) {
      return Error{ErrorCode::kNotFound,
                   "with_retry: unknown connector '" + decl.connector + "'"};
    }
    if (Status s = conn->attach_interceptor(
            std::make_shared<fault::RetryInterceptor>(decl.policy));
        !s.ok()) {
      return s.error();
    }
  }

  // Overload protection chain ordering: admission (-20) runs first, the
  // breaker (-10) second, retry (0, with_retry's default) last — so shed
  // traffic never pollutes breaker statistics and an open breaker
  // short-circuits before any retry header is stamped.
  for (const AdmissionDecl& decl : admissions_) {
    const util::ConnectorId id = rt->app_->connector_id(decl.connector);
    connector::Connector* conn =
        id.valid() ? rt->app_->find_connector(id) : nullptr;
    if (conn == nullptr) {
      return Error{ErrorCode::kNotFound, "with_admission: unknown connector '" +
                                             decl.connector + "'"};
    }
    runtime::Application* app = rt->app_.get();
    sim::EventLoop* loop = &rt->loop_;
    auto gate = std::make_shared<overload::AdmissionInterceptor>(
        decl.policy, [loop] { return loop->now(); },
        [app, id] { return app->queue_depth(id); }, decl.connector);
    if (Status s = conn->attach_interceptor(gate, -20); !s.ok()) {
      return s.error();
    }
    rt->admissions_[decl.connector] = std::move(gate);
  }
  for (const BreakerDecl& decl : breakers_) {
    const util::ConnectorId id = rt->app_->connector_id(decl.connector);
    connector::Connector* conn =
        id.valid() ? rt->app_->find_connector(id) : nullptr;
    if (conn == nullptr) {
      return Error{ErrorCode::kNotFound,
                   "with_breaker: unknown connector '" + decl.connector + "'"};
    }
    sim::EventLoop* loop = &rt->loop_;
    auto breaker = std::make_shared<overload::CircuitBreakerInterceptor>(
        decl.policy, [loop] { return loop->now(); }, decl.connector);
    if (Status s = conn->attach_interceptor(breaker, -10); !s.ok()) {
      return s.error();
    }
    rt->breakers_[decl.connector] = std::move(breaker);
  }

  reconfig::ReconfigurationEngine::Options engine_options =
      options_.engine_options.value_or(
          reconfig::ReconfigurationEngine::Options{});
  if (options_.verify_mode.has_value()) {
    engine_options.verify_mode = *options_.verify_mode;
    engine_options.verify_max_states = options_.verify_max_states;
  }
  rt->engine_ = std::make_unique<reconfig::ReconfigurationEngine>(
      *rt->app_, engine_options);
  rt->injector_ = std::make_unique<fault::FaultInjector>(*rt->app_);

  // ADL-declared rules need the MAPE clock to poll their conditions; an ADL
  // world that declares rules gets RAML even without an explicit
  // with_raml() (default period: 10ms).
  const bool needs_raml =
      options_.raml_period.has_value() || !rule_program.rules.empty();
  if (needs_raml) {
    rt->raml_ = std::make_unique<meta::Raml>(
        *rt->app_, *rt->engine_,
        options_.raml_period.value_or(util::milliseconds(10)));
    if (self_repair_) rt->raml_->enable_self_repair(*rt->injector_);
  } else if (self_repair_) {
    return Error{ErrorCode::kInvalidArgument,
                 "with_self_repair() requires with_raml()"};
  }

  for (DegradedDecl& decl : degraded_modes_) {
    if (rt->raml_ == nullptr) {
      return Error{ErrorCode::kInvalidArgument,
                   "with_degraded_mode() requires with_raml()"};
    }
    const util::ConnectorId id = rt->app_->connector_id(decl.connector);
    if (!id.valid()) {
      return Error{ErrorCode::kNotFound,
                   "with_degraded_mode: unknown connector '" + decl.connector +
                       "'"};
    }
    if (!decl.trigger.pressure) {
      runtime::Application* app = rt->app_.get();
      decl.trigger.pressure = [app, id] {
        return static_cast<double>(app->queue_depth(id));
      };
    }
    if (decl.mode.admission == nullptr) {
      auto it = rt->admissions_.find(decl.connector);
      if (it != rt->admissions_.end()) decl.mode.admission = it->second;
    }
    rt->raml_->watch_overload(std::move(decl.trigger), std::move(decl.mode));
  }

  if (!rule_program.rules.empty()) {
    // Bind after the whole world exists so rules may target builder-declared
    // instances too.  watch_faults so "fault.*" triggers and the
    // fault.active metric reach the rules.
    rt->raml_->watch_faults(*rt->injector_);
    auto rules = reconfig::RuleSet::install(
        rule_program, *rt->app_, *rt->engine_, rt->injector_.get(),
        options_.txn_policy, options_.explore_gate);
    if (!rules.ok()) return rules.error();
    rt->raml_->install_rule_set(std::move(rules).value());
  }

  for (const std::string& text : scenario_texts_) {
    auto scenario = fault::FaultScenario::parse(text);
    if (!scenario.ok()) return scenario.error();
    scenarios_.push_back(std::move(scenario).value());
  }
  scenario_texts_.clear();
  for (const fault::FaultScenario& scenario : scenarios_) {
    if (Status s = rt->injector_->arm(scenario); !s.ok()) return s.error();
  }

  return rt;
}

}  // namespace aars
