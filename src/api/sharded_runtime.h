// aars::ShardedRuntime — multi-core execution of a partitioned world.
//
// A ShardedRuntime owns N complete per-shard stacks (each an aars::Runtime:
// loop + network + application + engine) plus the machinery that binds them
// into one simulation: a sim::ShardSet running the shards on worker threads
// under conservative time windows, a runtime::ShardRouter directory mapping
// hosts/components/connectors to their home shard, and a cross-shard link
// whose latency sets the window lookahead.
//
//   auto srt = aars::ShardedRuntime::builder()
//                  .with_shards(4)
//                  .seed(7)
//                  .cross_shard_link(link)          // latency >= lookahead
//                  .host("edge-0", 10000, /*shard=*/0)
//                  .host("core-1", 10000, /*shard=*/1)
//                  .component_class<EchoServer>("EchoServer")
//                  .deploy("EchoServer", "svc", "core-1")
//                  .connect(spec, {"svc"})          // homed on shard 1
//                  .build()
//                  .value();
//   srt->call(0, "svc", "echo", args, callback);   // cross-shard RPC
//   srt->run();
//
// Ownership rules at the shard boundary (see DESIGN.md "Threading and
// ownership under sharding"): payload Values crossing shards are
// deep-detached (COW sharing never spans threads), operation names travel
// as interned Symbols (immortal storage, safe to read anywhere), and
// callbacks are *moved* across but only ever executed on their origin
// shard.  with_shards(1) degrades to plain single-threaded execution,
// byte-identical to an equivalent aars::Runtime.
#pragma once

#include <cstddef>
#include <memory>
#include <string>
#include <vector>

#include "api/runtime.h"
#include "reconfig/cross_shard.h"
#include "runtime/shard_router.h"
#include "sim/shard_set.h"

namespace aars {

class ShardedRuntime {
 public:
  class Builder;
  /// Starts a fluent sharded-world declaration.
  static Builder builder();

  // --- the owned stacks --------------------------------------------------------
  std::size_t shard_count() const { return runtimes_.size(); }
  /// Shard i's complete runtime stack.
  Runtime& shard(std::size_t i) { return *runtimes_[i]; }
  sim::ShardSet& shards() { return *shard_set_; }
  runtime::ShardRouter& router() { return *router_; }
  /// One-way latency of the cross-shard fabric (== window lookahead).
  util::Duration cross_shard_latency() const { return link_latency_; }

  using ResponseCallback = runtime::Application::ResponseCallback;

  // --- cross-shard invocation --------------------------------------------------
  /// Calls `operation` on the named connector from shard `from`.  Local
  /// when the connector is homed on `from`; otherwise the request crosses
  /// the fabric (one link latency each way), `args` is deep-detached, and
  /// `callback` fires on shard `from` with the end-to-end latency.
  /// Callable mid-window from shard `from`'s worker, or from the
  /// coordinator thread between runs.
  void call(std::size_t from, const std::string& connector_name,
            const std::string& operation, util::Value args,
            ResponseCallback callback);
  /// One-way event through the named connector; cross-shard delivery costs
  /// one link latency.  kNotFound when the connector is unknown.
  util::Status post_event(std::size_t from, const std::string& connector_name,
                          const std::string& operation, util::Value args);

  // --- reconfiguration ---------------------------------------------------------
  /// Moves `instance` to `target_host`.  Same shard: the shard engine's
  /// geographical migrate.  Different shard: the barrier-driven
  /// reconfig::CrossShardMigrator protocol (screened by each shard's plan
  /// verifier).  `done` fires on the coordinator thread.
  void migrate_across(const std::string& instance,
                      const std::string& target_host, reconfig::Done done);

  // --- run ---------------------------------------------------------------------
  std::size_t run() { return shard_set_->run(); }
  std::size_t run_until(util::SimTime t) { return shard_set_->run_until(t); }
  std::size_t run_for(util::Duration d) { return shard_set_->run_for(d); }
  util::SimTime now() const { return shard_set_->now(); }

 private:
  friend class Builder;
  ShardedRuntime() = default;

  std::vector<std::unique_ptr<Runtime>> runtimes_;
  std::unique_ptr<runtime::ShardRouter> router_;
  std::unique_ptr<sim::ShardSet> shard_set_;
  util::Duration link_latency_ = util::kMillisecond;
};

class ShardedRuntime::Builder
    : public api::OptionsBuilder<ShardedRuntime::Builder> {
 public:
  // Shared verbs (seed/config/metrics, adl/with_adl, with_reconfig,
  // with_verification, with_raml) come from the api::OptionsBuilder mixin.
  // Shard semantics: seed is the base RNG seed — shard i's stack seeds with
  // (seed + i), so shard 0 of a 1-shard world matches an unsharded Runtime
  // with the same seed.  ADL worlds are homed on shard 0: sources compile
  // up front (full five-stage pipeline, analysis screen included) so the
  // router learns every declared host/instance/connector, then shard 0's
  // builder deploys them and installs any `when … reconfigure` rules into
  // its RAML.  with_raml() applies to shard 0.  Engine/verification options
  // apply to every shard.

  /// Number of shards (worker threads). 1 = single-threaded fast path.
  Builder& with_shards(std::size_t n);
  /// The fabric connecting shards; its latency becomes the conservative
  /// window lookahead (so it lower-bounds every cross-shard delivery).
  Builder& cross_shard_link(sim::LinkSpec spec);
  /// Per shard-pair SPSC mailbox capacity (overflow degrades gracefully).
  Builder& mailbox_capacity(std::size_t capacity);

  // --- topology ----------------------------------------------------------------
  /// Declares a host on a shard.
  Builder& host(const std::string& name, double capacity, std::size_t shard);
  /// Intra-shard link (both hosts must live on the same shard; cross-shard
  /// reachability comes from the fabric, not explicit links).
  Builder& link(const std::string& a, const std::string& b,
                sim::LinkSpec spec);
  /// Full mesh between the hosts of each shard.
  Builder& link_all(sim::LinkSpec spec);

  // --- component types (registered on every shard) ----------------------------
  Builder& component_type(const std::string& name,
                          component::ComponentRegistry::Factory factory);
  template <typename T>
  Builder& component_class(const std::string& name) {
    return component_type(name, [](const std::string& instance) {
      return std::make_unique<T>(instance);
    });
  }

  // --- instances & connectors --------------------------------------------------
  /// Deploys onto a declared host; the instance's home shard is the
  /// host's.
  Builder& deploy(const std::string& type, const std::string& instance,
                  const std::string& host, util::Value attributes = {});
  /// Declares a connector homed where its providers live (all providers
  /// must share one shard).
  Builder& connect(connector::ConnectorSpec spec,
                   std::vector<std::string> providers);

  /// Materialises the sharded world.
  util::Result<std::unique_ptr<ShardedRuntime>> build();

 private:
  struct HostDecl {
    std::string name;
    double capacity;
    std::size_t shard;
  };
  struct LinkDecl {
    std::string a;
    std::string b;
    sim::LinkSpec spec;
  };
  struct DeployDecl {
    std::string type;
    std::string instance;
    std::string host;
    util::Value attributes;
  };
  struct ConnectDecl {
    connector::ConnectorSpec spec;
    std::vector<std::string> providers;
  };

  std::size_t shards_ = 1;
  sim::LinkSpec fabric_;
  std::size_t mailbox_capacity_ = 4096;
  std::vector<HostDecl> hosts_;
  std::vector<LinkDecl> links_;
  std::optional<sim::LinkSpec> mesh_;
  std::vector<std::pair<std::string, component::ComponentRegistry::Factory>>
      types_;
  std::vector<DeployDecl> deploys_;
  std::vector<ConnectDecl> connects_;
};

}  // namespace aars
