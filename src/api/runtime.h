// aars::Runtime — the canonical entry point.
//
// Every experiment in this repo needs the same cast: an event loop, a
// simulated network, a component registry, an Application, a
// reconfiguration engine and (optionally) RAML and a fault injector.
// Before this facade existed, each bench binary and example wired those by
// hand.  Runtime owns the whole stack in correct construction order and the
// fluent Builder declares a world in a few lines:
//
//   auto rt = aars::Runtime::builder()
//                 .metrics()
//                 .seed(7)
//                 .host("server", 10000)
//                 .host("client", 10000)
//                 .link_all(link)
//                 .component_class<EchoServer>("EchoServer")
//                 .deploy("EchoServer", "svc", "server")
//                 .connect(spec, {"svc"})
//                 .with_raml(util::milliseconds(100))
//                 .build()
//                 .value();
//
// build() returns Result<std::unique_ptr<Runtime>> — a misdeclared world
// (unknown host, duplicate instance, bad ADL) reports an aars::Status-style
// error instead of half-constructing.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "api/options.h"
#include "component/registry.h"
#include "fault/injector.h"
#include "fault/policies.h"
#include "fault/scenario.h"
#include "meta/raml.h"
#include "overload/admission.h"
#include "overload/breaker.h"
#include "overload/degraded.h"
#include "reconfig/engine.h"
#include "runtime/application.h"
#include "runtime/deployer.h"
#include "sim/event_loop.h"
#include "sim/network.h"
#include "util/errors.h"

namespace aars {

class Runtime {
 public:
  class Builder;
  /// Starts a fluent world declaration.
  static Builder builder();

  // --- the owned stack ---------------------------------------------------------
  sim::EventLoop& loop() { return loop_; }
  sim::Network& network() { return network_; }
  component::ComponentRegistry& types() { return types_; }
  runtime::Application& app() { return *app_; }
  reconfig::ReconfigurationEngine& engine() { return *engine_; }
  fault::FaultInjector& faults() { return *injector_; }
  bool has_raml() const { return raml_ != nullptr; }
  /// Precondition: built with with_raml() (or an ADL source declaring
  /// `when … reconfigure` rules, which auto-creates RAML).
  meta::Raml& raml();
  /// The installed ADL rule set; null when no ADL source declared rules.
  reconfig::RuleSet* adl_rules() {
    return raml_ == nullptr ? nullptr : raml_->rule_set().get();
  }

  // --- name lookups ------------------------------------------------------------
  util::NodeId host(const std::string& name) const;
  util::ComponentId component(const std::string& instance) const;
  util::ConnectorId connector(const std::string& name) const;

  // --- overload protection ----------------------------------------------------
  /// Admission gate attached via with_admission(); null when none.
  std::shared_ptr<overload::AdmissionInterceptor> admission(
      const std::string& connector_name) const;
  /// Circuit breaker attached via with_breaker(); null when none.
  std::shared_ptr<overload::CircuitBreakerInterceptor> breaker(
      const std::string& connector_name) const;

  // --- run conveniences --------------------------------------------------------
  void run() { loop_.run(); }
  void run_until(util::SimTime t) { loop_.run_until(t); }
  void run_for(util::Duration d) { loop_.run_for(d); }

 private:
  friend class Builder;
  Runtime();

  sim::EventLoop loop_;
  sim::Network network_;
  component::ComponentRegistry types_;
  std::unique_ptr<runtime::Application> app_;
  std::unique_ptr<reconfig::ReconfigurationEngine> engine_;
  std::unique_ptr<fault::FaultInjector> injector_;
  std::unique_ptr<meta::Raml> raml_;
  std::map<std::string, std::shared_ptr<overload::AdmissionInterceptor>>
      admissions_;
  std::map<std::string, std::shared_ptr<overload::CircuitBreakerInterceptor>>
      breakers_;
};

class Runtime::Builder : public api::OptionsBuilder<Runtime::Builder> {
 public:
  // World configuration (seed/config/metrics), ADL sources (adl/with_adl),
  // managers (with_reconfig/with_verification/with_raml) come from the
  // shared api::OptionsBuilder mixin.

  // --- topology ----------------------------------------------------------------
  Builder& host(const std::string& name, double capacity);
  /// Duplex link between two declared hosts.
  Builder& link(const std::string& a, const std::string& b,
                sim::LinkSpec spec);
  /// Full mesh between every declared host (applied at build time).
  Builder& link_all(sim::LinkSpec spec);

  // --- component types ---------------------------------------------------------
  Builder& component_type(const std::string& name,
                          component::ComponentRegistry::Factory factory);
  template <typename T>
  Builder& component_class(const std::string& name) {
    return component_type(name, [](const std::string& instance) {
      return std::make_unique<T>(instance);
    });
  }
  /// Escape hatch for domain helpers that register whole families
  /// (e.g. telecom::register_media_components).
  Builder& install_types(
      std::function<void(component::ComponentRegistry&)> installer);

  // --- instances, connectors, bindings ------------------------------------------
  Builder& deploy(const std::string& type, const std::string& instance,
                  const std::string& host, util::Value attributes = {});
  Builder& connect(connector::ConnectorSpec spec,
                   std::vector<std::string> providers,
                   std::vector<std::string> aspects = {});
  Builder& bind(const std::string& caller_instance, const std::string& port,
                const std::string& connector_name);
  /// Attaches a fault::RetryInterceptor to a declared connector.
  Builder& with_retry(const std::string& connector_name,
                      fault::RetryPolicy policy);
  /// Attaches an overload::AdmissionInterceptor at connector ingress
  /// (earliest in the chain). The queue-depth gate probes the connector's
  /// own backlog; the token bucket runs on the simulated clock.
  Builder& with_admission(const std::string& connector_name,
                          overload::AdmissionPolicy policy);
  /// Attaches an overload::CircuitBreakerInterceptor between admission and
  /// retry, so an open breaker short-circuits before any retry attempt.
  Builder& with_breaker(const std::string& connector_name,
                        overload::BreakerPolicy policy);
  /// Requires with_raml(): installs a degraded-mode controller for the
  /// connector. When `trigger.pressure` is empty it defaults to the
  /// connector's queue depth; when `mode.admission` is unset it defaults to
  /// the admission gate declared for the same connector (if any).
  Builder& with_degraded_mode(const std::string& connector_name,
                              overload::OverloadTrigger trigger,
                              overload::DegradedMode mode);

  // --- managers ----------------------------------------------------------------
  /// Requires with_raml(): wires the fault injector into RAML's rule engine
  /// and enables the built-in host-down repair rule.
  Builder& with_self_repair();
  /// Arms a fault scenario on the timeline at build time.
  Builder& with_faults(fault::FaultScenario scenario);
  /// Parses and arms the text scenario format.
  Builder& with_fault_text(std::string scenario_text);

  /// Materialises the declared world.
  util::Result<std::unique_ptr<Runtime>> build();

 private:
  struct HostDecl {
    std::string name;
    double capacity;
  };
  struct LinkDecl {
    std::string a;
    std::string b;
    sim::LinkSpec spec;
  };
  struct DeployDecl {
    std::string type;
    std::string instance;
    std::string host;
    util::Value attributes;
  };
  struct ConnectDecl {
    connector::ConnectorSpec spec;
    std::vector<std::string> providers;
    std::vector<std::string> aspects;
  };
  struct BindDecl {
    std::string caller;
    std::string port;
    std::string connector;
  };
  struct RetryDecl {
    std::string connector;
    fault::RetryPolicy policy;
  };
  struct AdmissionDecl {
    std::string connector;
    overload::AdmissionPolicy policy;
  };
  struct BreakerDecl {
    std::string connector;
    overload::BreakerPolicy policy;
  };
  struct DegradedDecl {
    std::string connector;
    overload::OverloadTrigger trigger;
    overload::DegradedMode mode;
  };

  std::vector<HostDecl> hosts_;
  std::vector<LinkDecl> links_;
  std::optional<sim::LinkSpec> mesh_;
  std::vector<std::function<void(component::ComponentRegistry&)>>
      installers_;
  std::vector<DeployDecl> deploys_;
  std::vector<ConnectDecl> connects_;
  std::vector<BindDecl> binds_;
  std::vector<RetryDecl> retries_;
  std::vector<AdmissionDecl> admissions_;
  std::vector<BreakerDecl> breakers_;
  std::vector<DegradedDecl> degraded_modes_;
  bool self_repair_ = false;
  std::vector<fault::FaultScenario> scenarios_;
  std::vector<std::string> scenario_texts_;
};

}  // namespace aars
