// Builder verbs shared by every runtime flavour.
//
// aars::Runtime::Builder and aars::ShardedRuntime::Builder used to
// re-declare the same configuration verbs (seed, metrics, ADL sources,
// engine options, verification, RAML period) with separate member fields
// that drifted independently.  The shared state now lives in one
// RuntimeOptions struct and the verbs in one CRTP mixin, so both builders
// expose an identical surface and a new verb is added exactly once.
//
//   class Runtime::Builder : public api::OptionsBuilder<Builder> { ... };
//
// Topology verbs (host/link/deploy/connect/bind) stay on the concrete
// builders — their signatures genuinely differ (sharded hosts carry a shard
// index; sharded links must not span shards).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "reconfig/engine.h"
#include "reconfig/rules.h"
#include "runtime/application.h"
#include "util/time.h"

namespace aars::api {

/// Declarative state common to Runtime and ShardedRuntime builders.
struct RuntimeOptions {
  runtime::Application::Config config;
  bool metrics = false;
  /// Inline ADL sources, compiled and deployed at build() in order.
  std::vector<std::string> adl_sources;
  /// ADL files, compiled and deployed at build() after the inline sources.
  std::vector<std::string> adl_files;
  std::optional<reconfig::ReconfigurationEngine::Options> engine_options;
  std::optional<analysis::VerifyMode> verify_mode;
  std::size_t verify_max_states = 100000;
  std::optional<util::Duration> raml_period;
  /// How ADL rule firings are enacted: transactional (undo journal +
  /// rollback) with an optional default whole-firing deadline.
  reconfig::TxnPolicy txn_policy;
  /// Install-time model checking of ADL rule programs (off by default):
  /// explore the reachable-configuration graph before any rule can fire.
  reconfig::ExploreGate explore_gate;
  /// Rebounds the global trace ring at build() (unset = keep the default).
  std::optional<std::size_t> trace_capacity;
};

/// CRTP mixin providing the shared fluent verbs.  `Derived` is the concrete
/// builder; every verb returns `Derived&` so chains stay fluent across the
/// mixin boundary.
template <typename Derived>
class OptionsBuilder {
 public:
  Derived& seed(std::uint64_t seed) {
    options_.config.seed = seed;
    return self();
  }
  Derived& config(runtime::Application::Config config) {
    options_.config = std::move(config);
    return self();
  }
  /// Enables the global obs registry (metrics + traces).
  Derived& metrics(bool on = true) {
    options_.metrics = on;
    return self();
  }
  /// Bounds per-channel memory: `hold_limit` caps the quiescence hold
  /// buffer (0 keeps the per-connector queue_capacity rule) and
  /// `audit_window` bounds the out-of-order span the duplicate audit
  /// tracks exactly.  Capacity campaigns shrink both so channel state
  /// scales with the declared bound, not with traffic.
  Derived& channel_limits(std::size_t hold_limit, std::size_t audit_window) {
    options_.config.channel_hold_limit = hold_limit;
    options_.config.channel_audit_window = audit_window;
    return self();
  }
  /// Rebounds the global trace ring at build() — the observability side of
  /// the footprint budget (events beyond the capacity overwrite oldest).
  Derived& trace_ring(std::size_t capacity) {
    options_.trace_capacity = capacity;
    return self();
  }
  /// Compiles and deploys an ADL source on top of the declared world.
  /// `when … reconfigure` rules are installed into RAML (created with a
  /// default period when with_raml() was not called).
  Derived& adl(std::string source) {
    options_.adl_sources.push_back(std::move(source));
    return self();
  }
  /// Like adl(), reading the source from `path` at build() time.
  Derived& with_adl(std::string path) {
    options_.adl_files.push_back(std::move(path));
    return self();
  }
  Derived& with_reconfig(reconfig::ReconfigurationEngine::Options options) {
    options_.engine_options = options;
    return self();
  }
  /// Gates every engine mutation (and RAML self-repair) behind the static
  /// plan verifier: off (default), warn (log findings, proceed) or enforce
  /// (reject with kVerificationFailed + "verify.rejected" metric).
  /// Overrides the verify fields of with_reconfig() options.
  Derived& with_verification(analysis::VerifyMode mode,
                             std::size_t max_states = 100000) {
    options_.verify_mode = mode;
    options_.verify_max_states = max_states;
    return self();
  }
  /// Model-checks every ADL rule program at install: the analysis explorer
  /// enumerates the configurations the rules can reach from the deployed
  /// architecture (bounded by `max_configs`/`max_depth`) and checks the
  /// per-state verifier plus declared `property` blocks. enforce rejects
  /// an unsafe program at build(); warn counts findings and proceeds.
  Derived& explore_rules(analysis::VerifyMode mode,
                         std::size_t max_configs = 4096,
                         std::size_t max_depth = 64) {
    options_.explore_gate.mode = mode;
    options_.explore_gate.options.max_configs = max_configs;
    options_.explore_gate.options.max_depth = max_depth;
    return self();
  }
  Derived& with_raml(util::Duration period) {
    options_.raml_period = period;
    return self();
  }
  /// Transactional enactment of rule firings (the default): a failed step
  /// or an expired whole-firing deadline rolls the applied prefix back.
  /// `default_deadline` bounds firings whose rule declares no `deadline`
  /// property (0 = unbounded).
  Derived& transactional_rules(bool on = true,
                               util::Duration default_deadline = 0) {
    options_.txn_policy.transactional = on;
    options_.txn_policy.default_deadline = default_deadline;
    return self();
  }

  const RuntimeOptions& options() const { return options_; }

 protected:
  RuntimeOptions options_;

 private:
  Derived& self() { return static_cast<Derived&>(*this); }
};

}  // namespace aars::api
