// RAML — the Reconfiguration and Adaptation Meta-Level.
//
// "An appropriate approach consists of setting up a Reconfiguration and
// Adaptation Meta-Level (RAML) which is in charge of observing the system,
// checking the compliancy of each application with its behavioral
// constraints and properties, and undertaking adaptation or reconfiguration
// actions.  These actions consist of interchanging the components or
// modifying the connections between the components of the targeted
// application" (§3).
//
// Raml runs a MAPE loop on the simulated clock:
//   Monitor  — named sensors sampled every `period` (periodical
//              measurements, §1) + QoS monitors checking contract
//              compliancy;
//   Analyze  — policy conditions over the sample;
//   Plan/Execute — policy actions with access to the intercession surface
//              (the Application + ReconfigurationEngine + rule engine).
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "fault/injector.h"
#include "meta/introspection.h"
#include "meta/rules.h"
#include "reconfig/rules.h"
#include "obs/metrics.h"
#include "overload/degraded.h"
#include "qos/monitor.h"
#include "reconfig/engine.h"
#include "runtime/application.h"

namespace aars::meta {

/// One periodic measurement: sensor name -> value.
struct MetricSample {
  util::SimTime at = 0;
  std::map<std::string, double> values;

  double get(const std::string& name, double fallback = 0.0) const {
    auto it = values.find(name);
    return it == values.end() ? fallback : it->second;
  }
};

/// A reactive management policy (the "specified criteria" of §1).
struct Policy {
  std::string name;
  /// Fires the action when true for a sample.
  std::function<bool(const MetricSample&)> condition;
  /// The adaptation/reconfiguration action.
  std::function<void(class Raml&)> action;
  /// Minimum spacing between firings (hysteresis); 0 = every tick.
  util::Duration cooldown = 0;
};

class Raml {
 public:
  Raml(runtime::Application& app, reconfig::ReconfigurationEngine& engine,
       util::Duration period);

  // --- observation surface ------------------------------------------------------
  SystemView& view() { return view_; }
  RuleEngine& rules() { return rule_engine_; }
  /// Registers a named sensor sampled every period.
  void add_sensor(const std::string& name, std::function<double()> sensor);
  /// Attaches a QoS monitor whose compliance is checked every tick; a
  /// violation emits the rule-engine event "qos_violation" with the
  /// compliance rendering as data.
  void watch(std::shared_ptr<qos::QosMonitor> monitor);

  // --- analysis/planning -----------------------------------------------------
  void add_policy(Policy policy);

  // --- failure awareness ------------------------------------------------------
  /// Forwards fault injector transitions into the rule engine as events:
  /// "fault.host_down"/"fault.host_up", "fault.link_down"/"fault.link_up",
  /// "fault.degrade_start"/"fault.degrade_end", "fault.loss_start"/
  /// "fault.loss_end"; data carries {subject, host, began_at}.  Also adds a
  /// "fault.active" sensor.
  void watch_faults(fault::FaultInjector& injector);
  /// watch_faults + the built-in repair rule: when a host goes down, every
  /// component placed on it is redeployed onto the least-loaded up host.
  /// Each completed repair records the host_down -> healthy interval in the
  /// "fault.mttr_us" histogram and emits "repair.done" ("repair.failed"
  /// otherwise).
  void enable_self_repair(fault::FaultInjector& injector);
  std::uint64_t repairs_started() const { return repairs_started_; }
  std::uint64_t repairs_succeeded() const { return repairs_succeeded_; }

  // --- overload awareness -----------------------------------------------------
  /// Installs a degraded-mode controller evaluated every tick: when the
  /// trigger's pressure signal crosses `enter_above`, the application is
  /// switched into the declared degraded configuration (component swaps,
  /// tighter admission, wider contract) and back when pressure falls below
  /// `exit_below`.  Adds "overload.<mode>.pressure"/".degraded" sensors and
  /// emits "overload.enter"/"overload.exit" rule-engine events.  Returns
  /// the controller for direct inspection.
  overload::DegradedModeController& watch_overload(
      overload::OverloadTrigger trigger, overload::DegradedMode mode);
  const std::vector<std::unique_ptr<overload::DegradedModeController>>&
  overload_controllers() const {
    return overload_controllers_;
  }

  // --- ADL-declared rules -----------------------------------------------------
  /// Installs a compiled `when … reconfigure` rule set: metric-conditioned
  /// rules are evaluated every MAPE tick (same hysteresis clock as the
  /// policies); event-conditioned rules subscribe to the FLO/C rule engine
  /// and fire when their trigger event arrives.  Pair with watch_faults()
  /// so "fault.*" triggers are actually emitted.
  void install_rule_set(std::shared_ptr<reconfig::RuleSet> rules);
  const std::shared_ptr<reconfig::RuleSet>& rule_set() const {
    return adl_rules_;
  }

  // --- execution (intercession surface) -----------------------------------------
  runtime::Application& app() { return app_; }
  reconfig::ReconfigurationEngine& engine() { return engine_; }

  // --- loop -------------------------------------------------------------------
  void start();
  void stop();
  bool running() const { return running_; }
  util::Duration period() const { return period_; }

  const MetricSample& last_sample() const { return last_sample_; }
  std::uint64_t ticks() const { return ticks_; }
  std::uint64_t actions_taken() const { return actions_taken_; }

  /// Runs one MAPE iteration immediately (also used by the periodic tick).
  void tick();

 private:
  void tick_and_next();

  runtime::Application& app_;
  reconfig::ReconfigurationEngine& engine_;
  util::Duration period_;
  SystemView view_;
  RuleEngine rule_engine_;
  std::vector<std::pair<std::string, std::function<double()>>> sensors_;
  std::vector<std::shared_ptr<qos::QosMonitor>> monitors_;
  std::vector<Policy> policies_;
  std::map<std::string, util::SimTime> last_fired_;
  MetricSample last_sample_;
  bool running_ = false;
  sim::EventHandle pending_;
  std::uint64_t ticks_ = 0;
  std::uint64_t actions_taken_ = 0;
  std::shared_ptr<reconfig::RuleSet> adl_rules_;
  fault::FaultInjector* injector_ = nullptr;
  std::uint64_t repairs_started_ = 0;
  std::uint64_t repairs_succeeded_ = 0;
  std::vector<std::unique_ptr<overload::DegradedModeController>>
      overload_controllers_;
  // Observability mirrors (no-ops while the global registry is disabled).
  obs::Counter* obs_ticks_;
  obs::Counter* obs_actions_;
  obs::HistogramMetric* obs_decision_ns_;
};

}  // namespace aars::meta
