#include "meta/rules.h"

#include <set>

namespace aars::meta {

using util::Error;
using util::ErrorCode;
using util::Result;
using util::Status;
using util::Value;

RuleEngine::RuleEngine(sim::EventLoop& loop) : loop_(loop) {}

bool RuleEngine::would_create_cycle(const Rule& candidate) const {
  if (candidate.action_event.empty()) return false;
  // Build trigger -> action edges including the candidate, then DFS from
  // the candidate's action looking for a path back to its trigger.
  std::map<std::string, std::set<std::string>> edges;
  for (const Stored& stored : rules_) {
    if (!stored.rule.action_event.empty()) {
      edges[stored.rule.trigger_event].insert(stored.rule.action_event);
    }
  }
  edges[candidate.trigger_event].insert(candidate.action_event);

  // A cycle exists iff candidate.trigger_event is reachable from
  // candidate.action_event (or the rule is directly self-triggering).
  std::set<std::string> seen;
  std::vector<std::string> stack{candidate.action_event};
  while (!stack.empty()) {
    const std::string current = stack.back();
    stack.pop_back();
    if (current == candidate.trigger_event) return true;
    if (!seen.insert(current).second) continue;
    auto it = edges.find(current);
    if (it == edges.end()) continue;
    for (const std::string& next : it->second) stack.push_back(next);
  }
  return false;
}

Result<RuleId> RuleEngine::add_rule(Rule rule) {
  if (rule.trigger_event.empty()) {
    return Error{ErrorCode::kInvalidArgument, "rule needs a trigger event"};
  }
  if (!rule.action && rule.op != RuleOperator::kPermittedIf &&
      rule.op != RuleOperator::kWaitUntil) {
    return Error{ErrorCode::kInvalidArgument,
                 "rule '" + rule.name + "' needs an action"};
  }
  if ((rule.op == RuleOperator::kPermittedIf ||
       rule.op == RuleOperator::kWaitUntil) &&
      !rule.guard) {
    return Error{ErrorCode::kInvalidArgument,
                 "rule '" + rule.name + "' needs a guard"};
  }
  if (rule.op == RuleOperator::kImpliesLater && rule.delay <= 0) {
    return Error{ErrorCode::kInvalidArgument,
                 "impliesLater rule '" + rule.name + "' needs a delay"};
  }
  if (would_create_cycle(rule)) {
    return Error{ErrorCode::kCycleDetected,
                 "rule '" + rule.name + "' creates a cycle in the calling "
                 "tree (" + rule.trigger_event + " -> " + rule.action_event +
                 ")"};
  }
  const RuleId id = ids_.next();
  rules_.push_back(Stored{id, std::move(rule)});
  return id;
}

Status RuleEngine::remove_rule(RuleId id) {
  for (auto it = rules_.begin(); it != rules_.end(); ++it) {
    if (it->id == id) {
      rules_.erase(it);
      return Status::success();
    }
  }
  return Error{ErrorCode::kNotFound, "no such rule"};
}

void RuleEngine::subscribe(const std::string& event_name,
                           std::function<void(const Event&)> handler) {
  util::require(static_cast<bool>(handler), "handler required");
  subscribers_[event_name].push_back(std::move(handler));
}

void RuleEngine::run_action(const Stored& stored, const Event& event) {
  ++fired_;
  if (stored.rule.action) stored.rule.action(event);
  if (!stored.rule.action_event.empty()) {
    emit(stored.rule.action_event, event.data);
  }
}

void RuleEngine::dispatch(const Event& event) {
  auto it = subscribers_.find(event.name);
  if (it == subscribers_.end()) return;
  for (const auto& handler : it->second) handler(event);
}

void RuleEngine::emit(const std::string& name, Value data) {
  util::require(depth_ < 64, "rule emission depth exceeded");
  ++depth_;
  Event event{name, std::move(data), loop_.now()};

  // Gate: permittedIf — all matching guards must allow the event.
  for (const Stored& stored : rules_) {
    if (stored.rule.op != RuleOperator::kPermittedIf) continue;
    if (stored.rule.trigger_event != name) continue;
    if (!stored.rule.guard(event)) {
      ++rejected_;
      --depth_;
      return;
    }
  }
  // Gate: waitUntil — a failing guard parks the event.
  for (const Stored& stored : rules_) {
    if (stored.rule.op != RuleOperator::kWaitUntil) continue;
    if (stored.rule.trigger_event != name) continue;
    if (!stored.rule.guard(event)) {
      waiting_.push_back(event);
      --depth_;
      return;
    }
  }
  // impliesBefore actions precede delivery.
  for (const Stored& stored : rules_) {
    if (stored.rule.op != RuleOperator::kImpliesBefore) continue;
    if (stored.rule.trigger_event != name) continue;
    if (stored.rule.guard && !stored.rule.guard(event)) continue;
    run_action(stored, event);
  }
  dispatch(event);
  // implies / impliesLater actions follow delivery.
  for (const Stored& stored : rules_) {
    if (stored.rule.trigger_event != name) continue;
    if (stored.rule.guard && !stored.rule.guard(event)) continue;
    if (stored.rule.op == RuleOperator::kImplies) {
      run_action(stored, event);
    } else if (stored.rule.op == RuleOperator::kImpliesLater) {
      const Stored stored_copy = stored;
      loop_.schedule_after(stored.rule.delay, [this, stored_copy, event] {
        run_action(stored_copy, event);
      });
    }
  }
  --depth_;
}

void RuleEngine::poll_waiting() {
  std::vector<Event> parked = std::move(waiting_);
  waiting_.clear();
  for (Event& event : parked) {
    // Re-run the full emission pipeline; still-failing guards re-park.
    emit(event.name, std::move(event.data));
  }
}

}  // namespace aars::meta
