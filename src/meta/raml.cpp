#include "meta/raml.h"

#include <chrono>

namespace aars::meta {

using util::Duration;
using util::SimTime;

Raml::Raml(runtime::Application& app, reconfig::ReconfigurationEngine& engine,
           Duration period)
    : app_(app),
      engine_(engine),
      period_(period),
      view_(app),
      rule_engine_(app.loop()) {
  util::require(period > 0, "period must be positive");
  obs::Registry& reg = obs::Registry::global();
  obs_ticks_ = &reg.counter("raml.ticks");
  obs_actions_ = &reg.counter("raml.actions");
  obs_decision_ns_ = &reg.histogram("raml.decision_latency_ns");
}

void Raml::add_sensor(const std::string& name,
                      std::function<double()> sensor) {
  util::require(static_cast<bool>(sensor), "sensor required");
  sensors_.emplace_back(name, std::move(sensor));
}

void Raml::watch(std::shared_ptr<qos::QosMonitor> monitor) {
  util::require(monitor != nullptr, "monitor required");
  monitors_.push_back(std::move(monitor));
}

void Raml::add_policy(Policy policy) {
  util::require(static_cast<bool>(policy.condition), "condition required");
  util::require(static_cast<bool>(policy.action), "action required");
  policies_.push_back(std::move(policy));
}

namespace {

const char* fault_event_name(const fault::FaultEvent& event) {
  const bool begin = event.phase == fault::FaultEvent::Phase::kBegin;
  switch (event.kind) {
    case fault::FaultKind::kHostCrash:
      return begin ? "fault.host_down" : "fault.host_up";
    case fault::FaultKind::kLinkPartition:
      return begin ? "fault.link_down" : "fault.link_up";
    case fault::FaultKind::kLinkDegrade:
      return begin ? "fault.degrade_start" : "fault.degrade_end";
    case fault::FaultKind::kLinkLoss:
      return begin ? "fault.loss_start" : "fault.loss_end";
    case fault::FaultKind::kStepFault:
      return begin ? "fault.step_armed" : "fault.step_cleared";
  }
  return "fault.unknown";
}

}  // namespace

void Raml::watch_faults(fault::FaultInjector& injector) {
  if (injector_ == &injector) return;
  injector_ = &injector;
  injector.on_fault([this](const fault::FaultEvent& event) {
    rule_engine_.emit(
        fault_event_name(event),
        util::Value::object(
            {{"subject", event.subject},
             {"host", static_cast<std::int64_t>(event.host.raw())},
             {"began_at", static_cast<std::int64_t>(event.began_at)}}));
  });
  add_sensor("fault.active", [&injector] {
    return static_cast<double>(injector.active_faults());
  });
}

void Raml::install_rule_set(std::shared_ptr<reconfig::RuleSet> rules) {
  util::require(rules != nullptr, "rule set required");
  util::require(adl_rules_ == nullptr, "rule set already installed");
  adl_rules_ = std::move(rules);
  // Event-conditioned rules don't poll: route each trigger through the
  // FLO/C engine so they fire the instant the event is emitted.
  for (const auto& [event, index] : adl_rules_->event_rules()) {
    const std::size_t idx = index;
    rule_engine_.subscribe(event.str(), [this, idx](const Event& event) {
      adl_rules_->fire_event_rule(idx, event.at);
    });
  }
}

void Raml::enable_self_repair(fault::FaultInjector& injector) {
  watch_faults(injector);
  Rule repair;
  repair.name = "self_repair";
  repair.trigger_event = "fault.host_down";
  repair.op = RuleOperator::kImplies;
  repair.action = [this, &injector](const Event& event) {
    const util::NodeId down{
        static_cast<std::uint64_t>(event.data.at("host").as_int())};
    const SimTime began = event.data.at("began_at").as_int();
    // Strand assessment: every component placed on the dead host.
    for (util::ComponentId comp : app_.component_ids()) {
      if (app_.placement(comp) != down) continue;
      // Pick the least-loaded surviving host as the repair target.
      util::NodeId best;
      util::Duration best_backlog = 0;
      bool any_up = false;
      for (util::NodeId candidate : injector.up_hosts()) {
        if (candidate == down) continue;
        any_up = true;
        // Pre-screen against the static plan verifier: a candidate it
        // rejects would only bounce off the engine in enforce mode (or
        // ship a known-bad plan in warn mode), so spend the repair on a
        // destination that actually verifies.
        if (!engine_.redeploy_would_verify(comp, candidate)) continue;
        const util::Duration backlog =
            app_.network().node(candidate).backlog(app_.loop().now());
        if (!best.valid() || backlog < best_backlog) {
          best = candidate;
          best_backlog = backlog;
        }
      }
      if (!best.valid()) {
        rule_engine_.emit(
            "repair.failed",
            util::Value::object(
                {{"reason",
                  any_up ? "no host passes verification" : "no host up"}}));
        continue;
      }
      ++repairs_started_;
      engine_.redeploy_component(
          comp, best, [this, began](const reconfig::ReconfigReport& report) {
            if (report.ok()) {
              ++repairs_succeeded_;
              const SimTime healthy_at = app_.loop().now();
              obs::Registry::global()
                  .histogram("fault.mttr_us")
                  .observe(static_cast<double>(healthy_at - began));
              obs::Registry::global().trace(
                  healthy_at, obs::TraceKind::kFault, report.op,
                  "repair done");
              rule_engine_.emit(
                  "repair.done",
                  util::Value::object(
                      {{"component",
                        static_cast<std::int64_t>(
                            report.new_component.raw())},
                       {"mttr_us",
                        static_cast<std::int64_t>(healthy_at - began)}}));
            } else {
              rule_engine_.emit(
                  "repair.failed",
                  util::Value::object(
                      {{"reason", report.error_message()}}));
            }
          });
    }
  };
  (void)rule_engine_.add_rule(std::move(repair));
}

overload::DegradedModeController& Raml::watch_overload(
    overload::OverloadTrigger trigger, overload::DegradedMode mode) {
  util::require(static_cast<bool>(trigger.pressure),
                "overload trigger needs a pressure signal");
  auto controller = std::make_unique<overload::DegradedModeController>(
      app_, engine_, std::move(mode), std::move(trigger));
  overload::DegradedModeController* raw = controller.get();
  controller->on_transition([this](const char* event, double pressure) {
    rule_engine_.emit(std::string("overload.") + event,
                      util::Value::object({{"pressure", pressure}}));
  });
  const std::string& name = raw->mode().name;
  add_sensor("overload." + name + ".pressure",
             [raw] { return raw->last_pressure(); });
  add_sensor("overload." + name + ".degraded",
             [raw] { return raw->degraded() ? 1.0 : 0.0; });
  overload_controllers_.push_back(std::move(controller));
  return *raw;
}

void Raml::tick() {
  ++ticks_;
  obs_ticks_->inc();
  // Wall-clock cost of one full MAPE iteration (monitor -> analyze ->
  // plan -> execute): the meta-level's own decision latency, which the
  // sim clock cannot see because the whole tick runs inside one event.
  const bool timed = obs::Registry::global().enabled();
  const auto wall_start = timed ? std::chrono::steady_clock::now()
                                : std::chrono::steady_clock::time_point{};
  // Degraded-mode controllers advance first so the overload sensors below
  // report this tick's pressure, not last tick's.
  for (const auto& controller : overload_controllers_) {
    controller->evaluate(app_.loop().now());
  }
  // Monitor: sample every sensor.
  MetricSample sample;
  sample.at = app_.loop().now();
  for (const auto& [name, sensor] : sensors_) {
    sample.values[name] = sensor();
  }
  // Compliancy checking of watched contracts.
  for (const auto& monitor : monitors_) {
    const qos::Compliance compliance = monitor->evaluate();
    sample.values["qos." + monitor->contract().name + ".compliant"] =
        compliance.compliant ? 1.0 : 0.0;
    if (!compliance.compliant) {
      rule_engine_.emit("qos_violation", compliance.describe());
    }
  }
  last_sample_ = sample;
  // ADL-declared metric rules sample live application state through
  // pre-bound ids — no strings, no allocation on the steady-state path.
  if (adl_rules_ != nullptr) {
    adl_rules_->evaluate(sample.at);
  }
  // Analyze + plan + execute.
  for (const Policy& policy : policies_) {
    if (policy.cooldown > 0) {
      auto it = last_fired_.find(policy.name);
      if (it != last_fired_.end() &&
          sample.at - it->second < policy.cooldown) {
        continue;
      }
    }
    if (policy.condition(sample)) {
      last_fired_[policy.name] = sample.at;
      ++actions_taken_;
      obs_actions_->inc();
      obs::Registry::global().trace(sample.at, obs::TraceKind::kDecision,
                                    policy.name, "policy fired");
      rule_engine_.emit("policy_fired",
                        util::Value::object({{"policy", policy.name}}));
      policy.action(*this);
    }
  }
  // Parked waitUntil events get a periodic chance to proceed.
  rule_engine_.poll_waiting();
  if (timed) {
    const auto elapsed = std::chrono::steady_clock::now() - wall_start;
    obs_decision_ns_->observe(static_cast<double>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(elapsed)
            .count()));
  }
}

void Raml::tick_and_next() {
  if (!running_) return;
  tick();
  pending_ = app_.loop().schedule_after(period_, [this] { tick_and_next(); });
}

void Raml::start() {
  if (running_) return;
  running_ = true;
  pending_ = app_.loop().schedule_after(period_, [this] { tick_and_next(); });
}

void Raml::stop() {
  running_ = false;
  pending_.cancel();
}

}  // namespace aars::meta
