#include "meta/raml.h"

#include <chrono>

namespace aars::meta {

using util::Duration;
using util::SimTime;

Raml::Raml(runtime::Application& app, reconfig::ReconfigurationEngine& engine,
           Duration period)
    : app_(app),
      engine_(engine),
      period_(period),
      view_(app),
      rule_engine_(app.loop()) {
  util::require(period > 0, "period must be positive");
  obs::Registry& reg = obs::Registry::global();
  obs_ticks_ = &reg.counter("raml.ticks");
  obs_actions_ = &reg.counter("raml.actions");
  obs_decision_ns_ = &reg.histogram("raml.decision_latency_ns");
}

void Raml::add_sensor(const std::string& name,
                      std::function<double()> sensor) {
  util::require(static_cast<bool>(sensor), "sensor required");
  sensors_.emplace_back(name, std::move(sensor));
}

void Raml::watch(std::shared_ptr<qos::QosMonitor> monitor) {
  util::require(monitor != nullptr, "monitor required");
  monitors_.push_back(std::move(monitor));
}

void Raml::add_policy(Policy policy) {
  util::require(static_cast<bool>(policy.condition), "condition required");
  util::require(static_cast<bool>(policy.action), "action required");
  policies_.push_back(std::move(policy));
}

void Raml::tick() {
  ++ticks_;
  obs_ticks_->inc();
  // Wall-clock cost of one full MAPE iteration (monitor -> analyze ->
  // plan -> execute): the meta-level's own decision latency, which the
  // sim clock cannot see because the whole tick runs inside one event.
  const bool timed = obs::Registry::global().enabled();
  const auto wall_start = timed ? std::chrono::steady_clock::now()
                                : std::chrono::steady_clock::time_point{};
  // Monitor: sample every sensor.
  MetricSample sample;
  sample.at = app_.loop().now();
  for (const auto& [name, sensor] : sensors_) {
    sample.values[name] = sensor();
  }
  // Compliancy checking of watched contracts.
  for (const auto& monitor : monitors_) {
    const qos::Compliance compliance = monitor->evaluate();
    sample.values["qos." + monitor->contract().name + ".compliant"] =
        compliance.compliant ? 1.0 : 0.0;
    if (!compliance.compliant) {
      rule_engine_.emit("qos_violation", compliance.describe());
    }
  }
  last_sample_ = sample;
  // Analyze + plan + execute.
  for (const Policy& policy : policies_) {
    if (policy.cooldown > 0) {
      auto it = last_fired_.find(policy.name);
      if (it != last_fired_.end() &&
          sample.at - it->second < policy.cooldown) {
        continue;
      }
    }
    if (policy.condition(sample)) {
      last_fired_[policy.name] = sample.at;
      ++actions_taken_;
      obs_actions_->inc();
      obs::Registry::global().trace(sample.at, obs::TraceKind::kDecision,
                                    policy.name, "policy fired");
      rule_engine_.emit("policy_fired",
                        util::Value::object({{"policy", policy.name}}));
      policy.action(*this);
    }
  }
  // Parked waitUntil events get a periodic chance to proceed.
  rule_engine_.poll_waiting();
  if (timed) {
    const auto elapsed = std::chrono::steady_clock::now() - wall_start;
    obs_decision_ns_->observe(static_cast<double>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(elapsed)
            .count()));
  }
}

void Raml::tick_and_next() {
  if (!running_) return;
  tick();
  pending_ = app_.loop().schedule_after(period_, [this] { tick_and_next(); });
}

void Raml::start() {
  if (running_) return;
  running_ = true;
  pending_ = app_.loop().schedule_after(period_, [this] { tick_and_next(); });
}

void Raml::stop() {
  running_ = false;
  pending_.cancel();
}

}  // namespace aars::meta
