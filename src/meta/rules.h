// FLO/C-style rule engine.
//
// "FLO/C allows the operator to specify rules that should govern the
// interaction between components or activities, and preserve the integrity
// of the system ... The grammar of FLO/C contains preconditions, which may
// trigger some function according to the used operator.  The system
// provides the following operators: impliesLater, implies, impliesBefore,
// permittedIf, and waitUntil.  To guarantee that there is no occurrence of
// a cycle in the calling tree, rules are parsed and semantically checked"
// (§1, [Gunt98]).
//
// Events carry a name and a Value payload.  Each rule binds a trigger event
// to an action through one of the five operators.  Actions themselves emit
// an event named after the rule's `action_event`, so rule chains are
// expressible — and the add_rule() semantic check rejects rule sets whose
// trigger→action graph contains a cycle (kCycleDetected), mirroring FLO/C.
#pragma once

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "sim/event_loop.h"
#include "util/errors.h"
#include "util/ids.h"
#include "util/value.h"

namespace aars::meta {

using util::RuleId;

enum class RuleOperator {
  kImplies,        // trigger & guard  -> run action now
  kImpliesLater,   // trigger & guard  -> run action after `delay`
  kImpliesBefore,  // action runs before the event reaches subscribers
  kPermittedIf,    // event is delivered only when guard holds
  kWaitUntil,      // event is parked until guard holds, then delivered
};

constexpr const char* to_string(RuleOperator op) {
  switch (op) {
    case RuleOperator::kImplies: return "implies";
    case RuleOperator::kImpliesLater: return "impliesLater";
    case RuleOperator::kImpliesBefore: return "impliesBefore";
    case RuleOperator::kPermittedIf: return "permittedIf";
    case RuleOperator::kWaitUntil: return "waitUntil";
  }
  return "?";
}

struct Event {
  std::string name;
  util::Value data;
  util::SimTime at = 0;
};

struct Rule {
  std::string name;
  std::string trigger_event;
  /// Precondition; empty guard means "always".
  std::function<bool(const Event&)> guard;
  RuleOperator op = RuleOperator::kImplies;
  /// The action body.
  std::function<void(const Event&)> action;
  /// Event emitted when the action runs (names the action in the calling
  /// graph; may be empty for leaf actions).
  std::string action_event;
  /// Delay for kImpliesLater.
  util::Duration delay = 0;
};

class RuleEngine {
 public:
  explicit RuleEngine(sim::EventLoop& loop);

  /// Adds a rule after semantically checking that the rule graph —
  /// edges trigger_event -> action_event over all rules — stays acyclic.
  util::Result<RuleId> add_rule(Rule rule);
  util::Status remove_rule(RuleId id);
  std::size_t rule_count() const { return rules_.size(); }

  /// Registers an event consumer (the base-level observer).
  void subscribe(const std::string& event_name,
                 std::function<void(const Event&)> handler);

  /// Emits an event: applies permittedIf/waitUntil gates, runs
  /// impliesBefore actions, delivers to subscribers, then runs implies /
  /// impliesLater actions.
  void emit(const std::string& name, util::Value data);

  /// Re-checks parked waitUntil events (also re-checked on every emit).
  void poll_waiting();

  std::uint64_t fired() const { return fired_; }
  std::uint64_t rejected() const { return rejected_; }
  std::size_t waiting() const { return waiting_.size(); }

 private:
  struct Stored {
    RuleId id;
    Rule rule;
  };

  bool would_create_cycle(const Rule& candidate) const;
  void dispatch(const Event& event);
  void run_action(const Stored& stored, const Event& event);

  sim::EventLoop& loop_;
  util::IdGenerator<RuleId> ids_;
  std::vector<Stored> rules_;
  std::map<std::string, std::vector<std::function<void(const Event&)>>>
      subscribers_;
  std::vector<Event> waiting_;
  std::uint64_t fired_ = 0;
  std::uint64_t rejected_ = 0;
  /// Emission depth guard against runaway recursive chains.
  int depth_ = 0;
};

}  // namespace aars::meta
