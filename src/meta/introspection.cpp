#include "meta/introspection.h"

// GCC 12's -Wmaybe-uninitialized fires a known false positive deep inside
// std::variant copy construction materialised from Value::object
// initializer lists in this translation unit.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic ignored "-Wmaybe-uninitialized"
#endif

namespace aars::meta {

using component::Component;
using connector::Connector;
using util::ComponentId;
using util::ConnectorId;
using util::NodeId;
using util::Value;

SystemView::SystemView(runtime::Application& app) : app_(app) {}

Value SystemView::describe_component(ComponentId id) {
  const Component* comp = app_.find_component(id);
  if (comp == nullptr) return Value{};
  Value ops{util::ValueList{}};
  for (const std::string& op : comp->operations()) {
    ops.as_list().push_back(Value{op});
  }
  const NodeId node = app_.placement(id);
  return Value::object({
      {"id", static_cast<std::int64_t>(id.raw())},
      {"instance", comp->instance_name()},
      {"type", comp->type_name()},
      {"lifecycle", std::string(component::to_string(comp->lifecycle()))},
      {"provided", comp->provided().name()},
      {"version", static_cast<std::int64_t>(comp->provided().version())},
      {"operations", ops},
      {"node", static_cast<std::int64_t>(node.raw())},
      {"handled", static_cast<std::int64_t>(comp->handled_count())},
      {"quiescent", comp->quiescent()},
  });
}

Value SystemView::describe_connector(ConnectorId id) {
  Connector* conn = app_.find_connector(id);
  if (conn == nullptr) return Value{};
  Value providers{util::ValueList{}};
  for (ComponentId provider : conn->providers()) {
    providers.as_list().push_back(
        Value{static_cast<std::int64_t>(provider.raw())});
  }
  Value interceptors{util::ValueList{}};
  for (const std::string& name : conn->interceptor_names()) {
    interceptors.as_list().push_back(Value{name});
  }
  return Value::object({
      {"id", static_cast<std::int64_t>(id.raw())},
      {"name", conn->name()},
      {"routing", std::string(connector::to_string(conn->routing()))},
      {"providers", providers},
      {"interceptors", interceptors},
      {"relayed", static_cast<std::int64_t>(conn->relayed())},
  });
}

Value SystemView::describe_node(NodeId id) {
  const sim::Node& node = app_.network().node(id);
  const util::SimTime now = app_.loop().now();
  return Value::object({
      {"id", static_cast<std::int64_t>(id.raw())},
      {"name", node.name()},
      {"capacity", node.capacity()},
      {"utilization", node.utilization(now)},
      {"backlog_us", node.backlog(now)},
      {"jobs", static_cast<std::int64_t>(node.jobs())},
  });
}

Value SystemView::describe_system() {
  Value components{util::ValueList{}};
  for (ComponentId id : app_.component_ids()) {
    components.as_list().push_back(describe_component(id));
  }
  Value connectors{util::ValueList{}};
  for (ConnectorId id : app_.connector_ids()) {
    connectors.as_list().push_back(describe_connector(id));
  }
  Value nodes{util::ValueList{}};
  for (NodeId id : app_.network().node_ids()) {
    nodes.as_list().push_back(describe_node(id));
  }
  return Value::object({
      {"components", components},
      {"connectors", connectors},
      {"nodes", nodes},
      {"total_calls", static_cast<std::int64_t>(app_.total_calls())},
      {"failed_calls", static_cast<std::int64_t>(app_.failed_calls())},
  });
}

Value SystemView::channel_report() {
  std::uint64_t sent = 0;
  std::uint64_t delivered = 0;
  std::uint64_t dropped = 0;
  std::uint64_t duplicated = 0;
  std::uint64_t in_flight = 0;
  std::uint64_t held = 0;
  for (ComponentId id : app_.component_ids()) {
    for (runtime::Channel* chan : app_.channels_to(id)) {
      sent += chan->sent();
      delivered += chan->delivered();
      dropped += chan->dropped();
      duplicated += chan->duplicated();
      in_flight += chan->in_flight();
      held += chan->held_count();
    }
  }
  return Value::object({
      {"sent", static_cast<std::int64_t>(sent)},
      {"delivered", static_cast<std::int64_t>(delivered)},
      {"dropped", static_cast<std::int64_t>(dropped)},
      {"duplicated", static_cast<std::int64_t>(duplicated)},
      {"in_flight", static_cast<std::int64_t>(in_flight)},
      {"held", static_cast<std::int64_t>(held)},
  });
}

NodeId SystemView::busiest_node() {
  NodeId best = NodeId::invalid();
  std::int64_t worst_backlog = -1;
  const util::SimTime now = app_.loop().now();
  for (NodeId id : app_.network().node_ids()) {
    const std::int64_t backlog = app_.network().node(id).backlog(now);
    if (backlog > worst_backlog) {
      worst_backlog = backlog;
      best = id;
    }
  }
  return best;
}

NodeId SystemView::calmest_node() {
  NodeId best = NodeId::invalid();
  std::int64_t least = std::numeric_limits<std::int64_t>::max();
  const util::SimTime now = app_.loop().now();
  for (NodeId id : app_.network().node_ids()) {
    const std::int64_t backlog = app_.network().node(id).backlog(now);
    if (backlog < least) {
      least = backlog;
      best = id;
    }
  }
  return best;
}

}  // namespace aars::meta
