// Introspection: the observation half of RAML.
//
// "Dynamic adaptability may be reached using introspection (observing
// behavior) and intercession (changing behavior) at run-time" (§3).
// SystemView renders the running application — components, connectors,
// bindings, placement, channel integrity counters, node load — as Value
// trees that rules and operators can inspect without touching the runtime's
// internals.
#pragma once

#include "runtime/application.h"
#include "util/value.h"

namespace aars::meta {

class SystemView {
 public:
  explicit SystemView(runtime::Application& app);

  /// Reflective description of one component (type, lifecycle, operations,
  /// placement, counters).
  util::Value describe_component(util::ComponentId id);
  /// One connector: spec, providers, interceptors, relay count.
  util::Value describe_connector(util::ConnectorId id);
  /// One node: capacity, utilisation, backlog.
  util::Value describe_node(util::NodeId id);
  /// The whole configuration (the architecture as currently running).
  util::Value describe_system();

  /// Channel integrity summary (sent/delivered/dropped/duplicated).
  util::Value channel_report();

  /// Hottest node by backlog at the current instant.
  util::NodeId busiest_node();
  /// Least-loaded node by backlog.
  util::NodeId calmest_node();

 private:
  runtime::Application& app_;
};

}  // namespace aars::meta
