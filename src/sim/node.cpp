#include "sim/node.h"

#include <algorithm>

#include "util/errors.h"

namespace aars::sim {

Node::Node(NodeId id, std::string name, double capacity)
    : id_(id), name_(std::move(name)), capacity_(capacity) {
  util::require(capacity > 0.0, "node capacity must be positive");
}

void Node::set_capacity(double capacity) {
  util::require(capacity > 0.0, "node capacity must be positive");
  capacity_ = capacity;
}

SimTime Node::execute(SimTime now, double work) {
  util::require(work >= 0.0, "work must be non-negative");
  const auto service =
      static_cast<Duration>(work / capacity_ * util::kSecond);
  const SimTime start = std::max(now, busy_until_);
  busy_until_ = start + std::max<Duration>(service, 0);
  busy_time_ += busy_until_ - start;
  total_work_ += work;
  ++jobs_;
  return busy_until_;
}

Duration Node::backlog(SimTime now) const {
  return std::max<Duration>(busy_until_ - now, 0);
}

double Node::utilization(SimTime now) const {
  const Duration span = now - accounting_start_;
  if (span <= 0) return 0.0;
  // Count only busy time that has already elapsed.
  const Duration elapsed_busy =
      busy_time_ - std::max<Duration>(busy_until_ - now, 0);
  return std::clamp(static_cast<double>(elapsed_busy) /
                        static_cast<double>(span),
                    0.0, 1.0);
}

void Node::reset_accounting(SimTime now) {
  accounting_start_ = now;
  busy_time_ = std::max<Duration>(busy_until_ - now, 0);
  total_work_ = 0.0;
  jobs_ = 0;
}

}  // namespace aars::sim
