// Bounded lock-free single-producer/single-consumer ring.
//
// The cross-shard mailbox fabric (sim/shard_set.h) gives every ordered pair
// of shards one of these: the sending worker is the unique producer, the
// coordinator (draining at the time barrier, while workers are parked) is
// the unique consumer.  That pairing is what makes SPSC sufficient — no
// two threads ever push to, or pop from, the same ring concurrently.
//
// Classic Lamport queue with C++11 atomics: `head_` is written only by the
// consumer, `tail_` only by the producer; each side reads the other's index
// with acquire and publishes its own with release, so the element payload
// written before the release-store of `tail_` is visible after the
// acquire-load on the consumer side (and symmetrically for slot reuse).
// Capacity is rounded up to a power of two so index masking is a single
// AND.  Both indices live on their own cache line to prevent false sharing
// between the producer and consumer cores.
//
// push() is non-blocking and returns false when full — the mailbox layer
// diverts to a sender-local overflow vector instead of spinning, because
// the consumer only drains at barriers (spinning would deadlock the
// window).  Elements are moved in and out; T needs to be movable, nothing
// more.
#pragma once

#include <atomic>
#include <cstddef>
#include <optional>
#include <utility>
#include <vector>

#include "util/errors.h"

namespace aars::sim {

/// Destructive-interference granularity.  A fixed 64 (right for every
/// mainstream x86/ARM target) rather than
/// std::hardware_destructive_interference_size, whose value shifts with
/// tuning flags and triggers -Winterference-size in headers.
inline constexpr std::size_t kCacheLineSize = 64;

template <typename T>
class SpscRing {
 public:
  /// `capacity` is a minimum; the ring rounds it up to a power of two.
  explicit SpscRing(std::size_t capacity)
      : mask_(round_up_pow2(capacity) - 1),
        buffer_(round_up_pow2(capacity)) {
    util::require(capacity > 0, "ring capacity must be positive");
  }
  SpscRing(const SpscRing&) = delete;
  SpscRing& operator=(const SpscRing&) = delete;

  /// Producer side. Returns false (value untouched) when the ring is full.
  bool push(T& value) {
    const std::size_t tail = tail_.load(std::memory_order_relaxed);
    const std::size_t head = head_.load(std::memory_order_acquire);
    if (tail - head > mask_) return false;  // full
    buffer_[tail & mask_] = std::move(value);
    tail_.store(tail + 1, std::memory_order_release);
    return true;
  }
  bool push(T&& value) { return push(value); }

  /// Consumer side. Empty optional when the ring is empty.
  std::optional<T> pop() {
    const std::size_t head = head_.load(std::memory_order_relaxed);
    const std::size_t tail = tail_.load(std::memory_order_acquire);
    if (head == tail) return std::nullopt;
    std::optional<T> out(std::move(buffer_[head & mask_]));
    head_.store(head + 1, std::memory_order_release);
    return out;
  }

  /// Consumer-side size estimate (exact when the producer is quiescent).
  std::size_t size() const {
    return tail_.load(std::memory_order_acquire) -
           head_.load(std::memory_order_relaxed);
  }
  bool empty() const { return size() == 0; }
  std::size_t capacity() const { return mask_ + 1; }

 private:
  static std::size_t round_up_pow2(std::size_t n) {
    std::size_t p = 1;
    while (p < n) p <<= 1;
    return p;
  }

  const std::size_t mask_;
  std::vector<T> buffer_;
  alignas(kCacheLineSize) std::atomic<std::size_t> head_{0};  // consumer-owned
  alignas(kCacheLineSize) std::atomic<std::size_t> tail_{0};  // producer-owned
};

}  // namespace aars::sim
