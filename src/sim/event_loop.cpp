#include "sim/event_loop.h"

#include <utility>

namespace aars::sim {

EventLoop::EventLoop()
    : anchor_(std::make_shared<EventLoop*>(this)),
      obs_executed_(&obs::Registry::global().counter("sim.events_executed")),
      obs_cancelled_(&obs::Registry::global().counter("sim.events_cancelled")),
      obs_queue_depth_(&obs::Registry::global().gauge("sim.queue_depth")) {}

EventLoop::~EventLoop() { *anchor_ = nullptr; }

std::uint32_t EventLoop::acquire_slot(Callback fn) {
  std::uint32_t index;
  if (free_head_ != kNoSlot) {
    index = free_head_;
    free_head_ = slots_[index].next_free;
  } else {
    index = static_cast<std::uint32_t>(slots_.size());
    slots_.emplace_back();
  }
  Slot& slot = slots_[index];
  slot.fn = std::move(fn);
  slot.in_use = true;
  slot.next_free = kNoSlot;
  return index;
}

void EventLoop::release_slot(std::uint32_t index) {
  Slot& slot = slots_[index];
  slot.fn = nullptr;
  slot.in_use = false;
  ++slot.generation;
  slot.next_free = free_head_;
  free_head_ = index;
}

void EventLoop::cancel_slot(std::uint32_t index, std::uint32_t generation) {
  if (index >= slots_.size() || !slot_matches(index, generation)) return;
  // The queue entry stays behind; its (slot, generation) no longer matches,
  // so the pop loop skips it and decrements this count.
  release_slot(index);
  ++cancelled_in_queue_;
}

EventHandle EventLoop::schedule_at(SimTime at, Callback fn) {
  util::require(static_cast<bool>(fn), "scheduled callback must be callable");
  util::require(at >= now_, "cannot schedule an event in the past");
  const std::uint32_t index = acquire_slot(std::move(fn));
  const std::uint32_t generation = slots_[index].generation;
  queue_.push(Entry{at, next_seq_++, index, generation});
  obs_queue_depth_->set(static_cast<double>(queue_.size()));
  return EventHandle{anchor_, index, generation};
}

EventHandle EventLoop::schedule_after(Duration delay, Callback fn) {
  util::require(delay >= 0, "delay must be non-negative");
  return schedule_at(now_ + delay, std::move(fn));
}

bool EventLoop::pop_and_run() {
  while (!queue_.empty()) {
    const Entry entry = queue_.top();
    queue_.pop();
    obs_queue_depth_->set(static_cast<double>(queue_.size()));
    if (!slot_matches(entry.slot, entry.generation)) {
      --cancelled_in_queue_;
      obs_cancelled_->inc();
      continue;
    }
    now_ = entry.at;
    ++executed_;
    // Release the slot *before* running the callback: the handle now reads
    // inactive ("no longer scheduled"), and a cancel() issued from inside
    // the callback or any time after the event fired sees a generation
    // mismatch and is a no-op rather than corrupting the cancelled-entry
    // accounting for an entry that already left the queue.
    Callback fn = std::move(slots_[entry.slot].fn);
    release_slot(entry.slot);
    obs_executed_->inc();
    fn();
    return true;
  }
  return false;
}

std::size_t EventLoop::run(std::size_t limit) {
  std::size_t ran = 0;
  while (ran < limit && pop_and_run()) ++ran;
  return ran;
}

std::size_t EventLoop::run_until(SimTime deadline) {
  util::require(deadline >= now_, "deadline is in the past");
  std::size_t ran = 0;
  while (!queue_.empty()) {
    // Skip over cancelled entries at the head.
    const Entry& head = queue_.top();
    if (!slot_matches(head.slot, head.generation)) {
      queue_.pop();
      --cancelled_in_queue_;
      obs_cancelled_->inc();
      obs_queue_depth_->set(static_cast<double>(queue_.size()));
      continue;
    }
    if (head.at > deadline) break;
    if (pop_and_run()) ++ran;
  }
  now_ = deadline;
  return ran;
}

bool EventLoop::step() { return pop_and_run(); }

}  // namespace aars::sim
