#include "sim/event_loop.h"

#include <utility>

namespace aars::sim {

EventLoop::EventLoop()
    : obs_executed_(&obs::Registry::global().counter("sim.events_executed")),
      obs_cancelled_(&obs::Registry::global().counter("sim.events_cancelled")),
      obs_queue_depth_(&obs::Registry::global().gauge("sim.queue_depth")) {}

EventHandle EventLoop::schedule_at(SimTime at, Callback fn) {
  util::require(static_cast<bool>(fn), "scheduled callback must be callable");
  util::require(at >= now_, "cannot schedule an event in the past");
  auto cancelled = std::make_shared<bool>(false);
  queue_.push(Entry{at, next_seq_++, std::move(fn), cancelled});
  obs_queue_depth_->set(static_cast<double>(queue_.size()));
  return EventHandle{std::move(cancelled), cancelled_in_queue_};
}

EventHandle EventLoop::schedule_after(Duration delay, Callback fn) {
  util::require(delay >= 0, "delay must be non-negative");
  return schedule_at(now_ + delay, std::move(fn));
}

bool EventLoop::pop_and_run() {
  while (!queue_.empty()) {
    Entry entry = queue_.top();
    queue_.pop();
    obs_queue_depth_->set(static_cast<double>(queue_.size()));
    if (*entry.cancelled) {
      --*cancelled_in_queue_;
      obs_cancelled_->inc();
      continue;
    }
    now_ = entry.at;
    ++executed_;
    // Mark the shared state *before* running the callback: the handle now
    // reads inactive ("no longer scheduled"), and a cancel() issued from
    // inside the callback or any time after the event fired is a no-op
    // rather than incrementing the cancelled-in-queue count for an entry
    // that already left the queue (which underflowed pending()).
    *entry.cancelled = true;
    obs_executed_->inc();
    entry.fn();
    return true;
  }
  return false;
}

std::size_t EventLoop::run(std::size_t limit) {
  std::size_t ran = 0;
  while (ran < limit && pop_and_run()) ++ran;
  return ran;
}

std::size_t EventLoop::run_until(SimTime deadline) {
  util::require(deadline >= now_, "deadline is in the past");
  std::size_t ran = 0;
  while (!queue_.empty()) {
    // Skip over cancelled entries at the head.
    const Entry& head = queue_.top();
    if (*head.cancelled) {
      queue_.pop();
      --*cancelled_in_queue_;
      obs_cancelled_->inc();
      obs_queue_depth_->set(static_cast<double>(queue_.size()));
      continue;
    }
    if (head.at > deadline) break;
    if (pop_and_run()) ++ran;
  }
  now_ = deadline;
  return ran;
}

bool EventLoop::step() { return pop_and_run(); }

}  // namespace aars::sim
