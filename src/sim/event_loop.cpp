#include "sim/event_loop.h"

#include <utility>

namespace aars::sim {

// Generation wraparound.
//
// A slot's 32-bit generation increments on every release (fire or cancel).
// After 2^32 releases of the *same* slot it returns to a previous value, so
// a handle minted 2^32 reuses ago would spuriously match a live event and
// cancel a stranger.  Handles therefore also carry the slot's `epoch`,
// which increments each time the generation wraps: the handle-side match is
// effectively 64-bit, and 2^64 releases of one slot is out of reach (at
// 10^9 events/sec on one slot that is ~580 years of wall clock).
//
// Queue entries keep only the 32-bit generation (their 24-byte size is a
// deliberate cache/throughput budget — see the header).  That narrower
// match is safe under a weaker and structurally guaranteed condition: an
// entry's slot cannot be released until the entry itself leaves the queue
// (pop or tombstone-skip), so between an entry being pushed and popped the
// slot's generation advances at most once — never 2^32 times.

EventLoop::EventLoop()
    : anchor_(std::make_shared<EventLoop*>(this)),
      obs_executed_(&obs::Registry::global().counter("sim.events_executed")),
      obs_cancelled_(&obs::Registry::global().counter("sim.events_cancelled")),
      obs_queue_depth_(&obs::Registry::global().gauge("sim.queue_depth")) {}

EventLoop::~EventLoop() { *anchor_ = nullptr; }

std::uint32_t EventLoop::acquire_slot(Callback fn) {
  std::uint32_t index;
  if (free_head_ != kNoSlot) {
    index = free_head_;
    free_head_ = slots_[index].next_free;
  } else {
    index = static_cast<std::uint32_t>(slots_.size());
    slots_.emplace_back();
  }
  Slot& slot = slots_[index];
  slot.fn = std::move(fn);
  slot.in_use = true;
  slot.next_free = kNoSlot;
  return index;
}

void EventLoop::release_slot(std::uint32_t index) {
  Slot& slot = slots_[index];
  slot.fn = nullptr;
  slot.in_use = false;
  if (++slot.generation == 0) ++slot.epoch;
  slot.next_free = free_head_;
  free_head_ = index;
}

bool EventLoop::cancel_slot(std::uint32_t index, std::uint32_t generation,
                            std::uint32_t epoch) {
  if (index >= slots_.size() || !handle_matches(index, generation, epoch)) {
    return false;
  }
  // The queue entry stays behind; its (slot, generation) no longer matches,
  // so the pop loop skips it and decrements this count.
  release_slot(index);
  ++cancelled_in_queue_;
  report_queue_depth();
  return true;
}

void EventLoop::debug_add_generation(const EventHandle& handle,
                                     std::uint32_t delta) {
  util::require(handle.anchor_ && *handle.anchor_ == this,
                "handle does not belong to this loop");
  Slot& slot = slots_[handle.slot_];
  util::require(!slot.in_use, "slot must be free to fast-forward generations");
  const std::uint32_t before = slot.generation;
  slot.generation += delta;
  if (slot.generation < before) ++slot.epoch;  // 32-bit wrap occurred
}

EventHandle EventLoop::schedule_at(SimTime at, Callback fn) {
  util::require(static_cast<bool>(fn), "scheduled callback must be callable");
  util::require(at >= now_, "cannot schedule an event in the past");
  const std::uint32_t index = acquire_slot(std::move(fn));
  const std::uint32_t generation = slots_[index].generation;
  queue_.push(Entry{at, next_seq_++, index, generation});
  report_queue_depth();
  return EventHandle{anchor_, index, generation, slots_[index].epoch};
}

EventHandle EventLoop::schedule_after(Duration delay, Callback fn) {
  util::require(delay >= 0, "delay must be non-negative");
  return schedule_at(now_ + delay, std::move(fn));
}

bool EventLoop::pop_and_run() {
  while (!queue_.empty()) {
    const Entry entry = queue_.top();
    queue_.pop();
    if (!slot_matches(entry.slot, entry.generation)) {
      // Tombstone of a cancelled event: account for it *before* reporting
      // the depth (pending() subtracts cancelled_in_queue_ from the queue
      // size, so the order matters).
      --cancelled_in_queue_;
      obs_cancelled_->inc();
      report_queue_depth();
      continue;
    }
    report_queue_depth();
    now_ = entry.at;
    ++executed_;
    // Release the slot *before* running the callback: the handle now reads
    // inactive ("no longer scheduled"), and a cancel() issued from inside
    // the callback or any time after the event fired sees a generation
    // mismatch and is a no-op rather than corrupting the cancelled-entry
    // accounting for an entry that already left the queue.
    Callback fn = std::move(slots_[entry.slot].fn);
    release_slot(entry.slot);
    obs_executed_->inc();
    fn();
    return true;
  }
  return false;
}

std::size_t EventLoop::run(std::size_t limit) {
  std::size_t ran = 0;
  while (ran < limit && pop_and_run()) ++ran;
  return ran;
}

std::size_t EventLoop::run_until(SimTime deadline) {
  util::require(deadline >= now_, "deadline is in the past");
  std::size_t ran = 0;
  while (!queue_.empty()) {
    // Skip over cancelled entries at the head.
    const Entry& head = queue_.top();
    if (!slot_matches(head.slot, head.generation)) {
      queue_.pop();
      --cancelled_in_queue_;
      obs_cancelled_->inc();
      report_queue_depth();
      continue;
    }
    if (head.at > deadline) break;
    if (pop_and_run()) ++ran;
  }
  now_ = deadline;
  return ran;
}

SimTime EventLoop::next_event_time(SimTime sentinel) {
  while (!queue_.empty()) {
    const Entry& head = queue_.top();
    if (slot_matches(head.slot, head.generation)) return head.at;
    queue_.pop();
    --cancelled_in_queue_;
    obs_cancelled_->inc();
    report_queue_depth();
  }
  return sentinel;
}

bool EventLoop::step() { return pop_and_run(); }

}  // namespace aars::sim
