#include "sim/shard_set.h"

#include <algorithm>
#include <utility>

namespace aars::sim {
namespace {

SimTime clamp_add(SimTime t, util::Duration d) {
  return t > ShardSet::kIdle - d ? ShardSet::kIdle : t + d;
}

}  // namespace

ShardSet::ShardSet(std::vector<EventLoop*> loops, Options options)
    : loops_(std::move(loops)), options_(options) {
  util::require(!loops_.empty(), "a shard set needs at least one shard");
  for (EventLoop* loop : loops_) {
    util::require(loop != nullptr, "shard event loop must not be null");
  }
  util::require(options_.lookahead > 0, "lookahead must be positive");
  util::require(options_.mailbox_capacity > 0,
                "mailbox capacity must be positive");
  const std::size_t n = loops_.size();
  mailboxes_.reserve(n * n);
  for (std::size_t i = 0; i < n * n; ++i) {
    mailboxes_.push_back(std::make_unique<Mailbox>(options_.mailbox_capacity));
  }
  if (n > 1) {
    workers_.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
      workers_.push_back(std::make_unique<Worker>());
    }
    for (std::size_t i = 0; i < n; ++i) {
      workers_[i]->thread = std::thread(&ShardSet::worker_main, this, i);
    }
  }
}

ShardSet::~ShardSet() {
  for (auto& w : workers_) {
    {
      std::lock_guard<std::mutex> lock(w->mu);
      w->stop = true;
    }
    w->cv.notify_all();
  }
  for (auto& w : workers_) {
    if (w->thread.joinable()) w->thread.join();
  }
}

void ShardSet::worker_main(std::size_t shard) {
  Worker& w = *workers_[shard];
  std::uint64_t last = 0;
  for (;;) {
    SimTime target;
    {
      std::unique_lock<std::mutex> lock(w.mu);
      w.cv.wait(lock, [&] { return w.stop || w.job_id != last; });
      if (w.stop) return;
      last = w.job_id;
      target = w.target;
    }
    loops_[shard]->run_until(target);
    {
      std::lock_guard<std::mutex> lock(w.mu);
      w.done_id = last;
    }
    w.cv.notify_all();
  }
}

void ShardSet::run_window(SimTime window_end) {
  // Hand loop ownership to the workers for the duration of the window, and
  // take it back (as the coordinator) once they are all parked again, so
  // barrier actions may operate on any shard's state.
  for (std::size_t i = 0; i < loops_.size(); ++i) {
    loops_[i]->bind_owner_thread(workers_[i]->thread.get_id());
  }
  for (auto& w : workers_) {
    {
      std::lock_guard<std::mutex> lock(w->mu);
      w->target = window_end;
      ++w->job_id;
    }
    w->cv.notify_all();
  }
  for (auto& w : workers_) {
    std::unique_lock<std::mutex> lock(w->mu);
    w->cv.wait(lock, [&] { return w->done_id == w->job_id; });
  }
  const std::thread::id coordinator = std::this_thread::get_id();
  for (EventLoop* loop : loops_) loop->bind_owner_thread(coordinator);
}

void ShardSet::post(std::size_t from, std::size_t to, SimTime at,
                    EventLoop::Callback fn) {
  util::require(from < loops_.size() && to < loops_.size(),
                "shard index out of range");
  util::require(static_cast<bool>(fn), "posted callback must be callable");
  if (from == to) {
    EventLoop* loop = loops_[to];
    loop->schedule_at(std::max(at, loop->now()), std::move(fn));
    return;
  }
  util::require(at >= clamp_add(loops_[from]->now(), options_.lookahead),
                "cross-shard post violates the lookahead bound");
  Mailbox& mb = mailbox(from, to);
  CrossShardEvent ev{at, std::move(fn)};
  if (!mb.ring.push(ev)) mb.overflow.push_back(std::move(ev));
}

void ShardSet::at_barrier(BarrierAction action) {
  util::require(static_cast<bool>(action), "barrier action must be callable");
  barrier_actions_.push_back(std::move(action));
}

bool ShardSet::run_barrier_actions() {
  if (barrier_actions_.empty()) return false;
  std::vector<BarrierAction> current;
  current.swap(barrier_actions_);
  std::vector<BarrierAction> kept;
  for (auto& action : current) {
    if (action(now_)) kept.push_back(std::move(action));
  }
  // Actions registered *during* this pass run from the next barrier on.
  for (auto& fresh : barrier_actions_) kept.push_back(std::move(fresh));
  barrier_actions_ = std::move(kept);
  return !barrier_actions_.empty();
}

SimTime ShardSet::next_event_time() {
  SimTime next = kIdle;
  for (EventLoop* loop : loops_) {
    next = std::min(next, loop->next_event_time(kIdle));
  }
  return next;
}

void ShardSet::advance_all(SimTime t) {
  for (EventLoop* loop : loops_) {
    if (loop->now() < t) loop->run_until(t);
  }
}

void ShardSet::drain_mailboxes() {
  const std::size_t n = loops_.size();
  for (std::size_t from = 0; from < n; ++from) {
    for (std::size_t to = 0; to < n; ++to) {
      if (from == to) continue;
      Mailbox& mb = mailbox(from, to);
      EventLoop* receiver = loops_[to];
      // Ring first (older than any overflow), then overflow, preserving the
      // sender's FIFO order — receiver sequence numbers are assigned here,
      // so this order is part of the determinism contract.
      while (auto ev = mb.ring.pop()) {
        receiver->schedule_at(std::max(ev->at, receiver->now()),
                              std::move(ev->fn));
        ++delivered_;
      }
      if (!mb.overflow.empty()) {
        overflows_ += mb.overflow.size();
        for (CrossShardEvent& ev : mb.overflow) {
          receiver->schedule_at(std::max(ev.at, receiver->now()),
                                std::move(ev.fn));
          ++delivered_;
        }
        mb.overflow.clear();
      }
    }
  }
}

std::size_t ShardSet::run() {
  const std::size_t before = executed();
  if (loops_.size() == 1) {
    run_barrier_actions();
    loops_[0]->run();
    now_ = loops_[0]->now();
    run_barrier_actions();
    return executed() - before;
  }
  for (;;) {
    const bool actions_pending = run_barrier_actions();
    drain_mailboxes();
    const SimTime next = next_event_time();
    SimTime window_end;
    if (next == kIdle) {
      if (!actions_pending) break;
      // Idle but a state machine still wants barriers: advance time in
      // lookahead-sized steps so it can make progress.
      window_end = clamp_add(now_, options_.lookahead);
    } else {
      window_end = clamp_add(next, options_.lookahead);
    }
    run_window(window_end);
    drain_mailboxes();
    now_ = window_end;
    ++windows_;
  }
  return executed() - before;
}

std::size_t ShardSet::run_until(SimTime deadline) {
  util::require(deadline >= now_, "deadline is in the past");
  const std::size_t before = executed();
  if (loops_.size() == 1) {
    run_barrier_actions();
    loops_[0]->run_until(deadline);
    now_ = deadline;
    run_barrier_actions();
    return executed() - before;
  }
  for (;;) {
    const bool actions_pending = run_barrier_actions();
    drain_mailboxes();
    if (now_ >= deadline) break;
    const SimTime next = next_event_time();
    SimTime window_end;
    if (next == kIdle) {
      if (!actions_pending) {
        advance_all(deadline);
        now_ = deadline;
        break;
      }
      window_end = std::min(deadline, clamp_add(now_, options_.lookahead));
    } else if (next > deadline) {
      advance_all(deadline);
      now_ = deadline;
      break;
    } else {
      window_end = std::min(deadline, clamp_add(next, options_.lookahead));
    }
    run_window(window_end);
    drain_mailboxes();
    now_ = window_end;
    ++windows_;
  }
  return executed() - before;
}

std::size_t ShardSet::executed() const {
  std::size_t total = 0;
  for (const EventLoop* loop : loops_) total += loop->executed();
  return total;
}

std::uint64_t ShardSet::foreign_cancels_rejected() const {
  std::uint64_t total = 0;
  for (const EventLoop* loop : loops_) {
    total += loop->foreign_cancels_rejected();
  }
  return total;
}

}  // namespace aars::sim
