// Simulated execution hosts.
//
// A Node models one machine: a single FIFO processor with a fixed capacity
// in abstract "work units" per second.  Components placed on the node charge
// work units for every message they handle; the node serialises execution,
// which is what produces queueing delay under load — the raw material of the
// load-balancing and adaptation experiments (E5, E6, E10).
#pragma once

#include <string>

#include "util/ids.h"
#include "util/stats.h"
#include "util/time.h"

namespace aars::sim {

using util::Duration;
using util::NodeId;
using util::SimTime;

/// One simulated machine.
class Node {
 public:
  /// `capacity` is in work-units per second (> 0).
  Node(NodeId id, std::string name, double capacity);

  NodeId id() const { return id_; }
  const std::string& name() const { return name_; }
  double capacity() const { return capacity_; }
  /// Changes capacity (models resource fluctuation, e.g. CPU throttling or
  /// co-located load). Affects only work admitted after the change.
  void set_capacity(double capacity);

  /// Admits `work` units at time `now`; returns the completion time under
  /// FIFO scheduling (>= now + work/capacity).
  SimTime execute(SimTime now, double work);

  /// Time at which the processor drains all admitted work.
  SimTime busy_until() const { return busy_until_; }
  /// Backlog (queueing delay a new arrival would see) at `now`.
  Duration backlog(SimTime now) const;
  /// Fraction of time busy since the node was created or reset, in [0,1].
  double utilization(SimTime now) const;
  /// Work units admitted so far.
  double total_work() const { return total_work_; }
  /// Number of execute() calls.
  std::size_t jobs() const { return jobs_; }

  void reset_accounting(SimTime now);

 private:
  NodeId id_;
  std::string name_;
  double capacity_;
  SimTime busy_until_ = 0;
  SimTime accounting_start_ = 0;
  Duration busy_time_ = 0;
  double total_work_ = 0.0;
  std::size_t jobs_ = 0;
};

}  // namespace aars::sim
