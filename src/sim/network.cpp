#include "sim/network.h"

#include <algorithm>
#include <deque>

namespace aars::sim {

Node& Network::add_node(const std::string& name, double capacity) {
  util::require(by_name_.find(name) == by_name_.end(),
                "duplicate node name");
  const NodeId id = ids_.next();
  auto node = std::make_unique<Node>(id, name, capacity);
  Node& ref = *node;
  nodes_.emplace(id, std::move(node));
  by_name_.emplace(name, id);
  return ref;
}

Node& Network::node(NodeId id) {
  auto it = nodes_.find(id);
  util::require(it != nodes_.end(), "unknown node id");
  return *it->second;
}

const Node& Network::node(NodeId id) const {
  auto it = nodes_.find(id);
  util::require(it != nodes_.end(), "unknown node id");
  return *it->second;
}

Node* Network::find_node(const std::string& name) {
  auto it = by_name_.find(name);
  return it == by_name_.end() ? nullptr : &node(it->second);
}

NodeId Network::node_id(const std::string& name) const {
  auto it = by_name_.find(name);
  return it == by_name_.end() ? NodeId::invalid() : it->second;
}

std::vector<NodeId> Network::node_ids() const {
  std::vector<NodeId> out;
  out.reserve(nodes_.size());
  for (const auto& [id, node] : nodes_) out.push_back(id);
  return out;
}

void Network::add_link(NodeId from, NodeId to, LinkSpec spec) {
  util::require(nodes_.count(from) > 0 && nodes_.count(to) > 0,
                "link endpoints must exist");
  util::require(from != to, "self links are not allowed");
  util::require(spec.bandwidth_bytes_per_sec > 0.0,
                "bandwidth must be positive");
  links_[{from, to}] = spec;
}

void Network::add_duplex_link(NodeId a, NodeId b, LinkSpec spec) {
  add_link(a, b, spec);
  add_link(b, a, spec);
}

bool Network::has_link(NodeId from, NodeId to) const {
  return links_.count({from, to}) > 0;
}

LinkSpec* Network::find_link(NodeId from, NodeId to) {
  auto it = links_.find({from, to});
  return it == links_.end() ? nullptr : &it->second;
}

std::optional<LinkSpec> Network::remove_link(NodeId from, NodeId to) {
  auto it = links_.find({from, to});
  if (it == links_.end()) return std::nullopt;
  LinkSpec spec = it->second;
  links_.erase(it);
  return spec;
}

std::vector<std::pair<NodeId, NodeId>> Network::links_of(NodeId node) const {
  std::vector<std::pair<NodeId, NodeId>> out;
  for (const auto& [key, spec] : links_) {
    (void)spec;
    if (key.first == node || key.second == node) out.push_back(key);
  }
  return out;
}

std::vector<NodeId> Network::route(NodeId from, NodeId to) const {
  if (from == to) return {from};
  // BFS over the directed link graph.
  std::map<NodeId, NodeId> parent;
  std::deque<NodeId> frontier{from};
  parent[from] = from;
  while (!frontier.empty()) {
    const NodeId current = frontier.front();
    frontier.pop_front();
    for (const auto& [key, spec] : links_) {
      if (key.first != current) continue;
      const NodeId next = key.second;
      if (parent.count(next)) continue;
      parent[next] = current;
      if (next == to) {
        std::vector<NodeId> path{to};
        for (NodeId at = to; at != from;) {
          at = parent[at];
          path.push_back(at);
        }
        std::reverse(path.begin(), path.end());
        return path;
      }
      frontier.push_back(next);
    }
  }
  return {};
}

TransferOutcome Network::transfer(NodeId from, NodeId to, std::size_t bytes,
                                  util::Rng& rng) const {
  TransferOutcome out;
  if (from == to) return out;  // co-located, free
  const std::vector<NodeId> path = route(from, to);
  if (path.empty()) {
    out.delivered = false;
    return out;
  }
  for (std::size_t i = 0; i + 1 < path.size(); ++i) {
    auto it = links_.find({path[i], path[i + 1]});
    util::require(it != links_.end(), "route produced a missing link");
    const LinkSpec& link = it->second;
    if (link.loss_probability > 0.0 && rng.chance(link.loss_probability)) {
      out.delivered = false;
      return out;
    }
    Duration hop = link.latency;
    hop += static_cast<Duration>(static_cast<double>(bytes) /
                                 link.bandwidth_bytes_per_sec *
                                 util::kSecond);
    if (link.jitter > 0) {
      hop += rng.uniform_int(-link.jitter, link.jitter);
    }
    out.delay += std::max<Duration>(hop, 0);
    ++out.hops;
  }
  return out;
}

}  // namespace aars::sim
