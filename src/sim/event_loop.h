// Deterministic discrete-event loop.
//
// The whole runtime is driven by one of these: message deliveries, component
// execution, RAML measurement ticks and reconfiguration steps are all events
// on the same clock, which makes every experiment reproducible.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <vector>

#include "obs/metrics.h"
#include "util/errors.h"
#include "util/time.h"

namespace aars::sim {

using util::Duration;
using util::SimTime;

/// Cancellation token for a scheduled event.
///
/// The loop marks the shared state when the event fires, so `active()` is
/// precisely "still scheduled": it turns false after execution as well as
/// after cancellation, and a `cancel()` on an already-fired handle is a
/// no-op (it must not touch the queue's cancelled-entry accounting — the
/// entry is no longer in the queue).
class EventHandle {
 public:
  EventHandle() = default;
  bool active() const { return state_ && !*state_; }
  void cancel() {
    if (state_ && !*state_) {
      *state_ = true;
      if (cancel_count_) ++*cancel_count_;
    }
  }

 private:
  friend class EventLoop;
  EventHandle(std::shared_ptr<bool> state,
              std::shared_ptr<std::size_t> cancel_count)
      : state_(std::move(state)), cancel_count_(std::move(cancel_count)) {}
  std::shared_ptr<bool> state_;  // true == cancelled
  std::shared_ptr<std::size_t> cancel_count_;
};

/// Priority queue of timed callbacks. Events at the same instant run in
/// schedule order (FIFO), which keeps the simulation deterministic.
class EventLoop {
 public:
  using Callback = std::function<void()>;

  EventLoop();

  SimTime now() const { return now_; }

  /// Schedules `fn` at absolute time `at` (>= now). Returns a handle that
  /// can cancel the event before it fires.
  EventHandle schedule_at(SimTime at, Callback fn);
  /// Schedules `fn` after `delay` (>= 0) from now.
  EventHandle schedule_after(Duration delay, Callback fn);

  /// Runs events until the queue empties or `limit` events ran.
  /// Returns the number of events executed.
  std::size_t run(std::size_t limit = kNoLimit);
  /// Runs events with timestamp <= deadline; leaves now() == deadline.
  std::size_t run_until(SimTime deadline);
  /// Runs events for the next `span` of simulated time.
  std::size_t run_for(Duration span) { return run_until(now_ + span); }
  /// Executes the single next event, if any. Returns false when idle.
  bool step();

  bool empty() const { return pending() == 0; }
  std::size_t pending() const { return queue_.size() - *cancelled_in_queue_; }
  std::size_t executed() const { return executed_; }

  static constexpr std::size_t kNoLimit = ~std::size_t{0};

 private:
  struct Entry {
    SimTime at;
    std::uint64_t seq;
    Callback fn;
    std::shared_ptr<bool> cancelled;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.at != b.at) return a.at > b.at;
      return a.seq > b.seq;
    }
  };

  bool pop_and_run();

  SimTime now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::size_t executed_ = 0;
  std::shared_ptr<std::size_t> cancelled_in_queue_ =
      std::make_shared<std::size_t>(0);
  std::priority_queue<Entry, std::vector<Entry>, Later> queue_;
  // Observability mirrors (no-ops while the global registry is disabled).
  obs::Counter* obs_executed_;
  obs::Counter* obs_cancelled_;
  obs::Gauge* obs_queue_depth_;
};

}  // namespace aars::sim
