// Deterministic discrete-event loop.
//
// The whole runtime is driven by one of these: message deliveries, component
// execution, RAML measurement ticks and reconfiguration steps are all events
// on the same clock, which makes every experiment reproducible.
//
// Storage is a slab: callbacks live in pooled slots recycled through a
// freelist, queue entries are 24-byte PODs referencing a slot by index, and
// handles carry (slot, generation, epoch) so stale references
// self-invalidate.  At steady state scheduling an event performs zero heap
// allocations (the slab and queue reach high-water size and stay there;
// callbacks up to InlineFunction::kInlineSize bytes of capture are stored
// inline).
//
// Threading: an EventLoop is single-threaded.  Under sharded execution
// (sim::ShardSet) each loop is owned by one worker thread; the loop can be
// bound to that thread (`bind_owner_thread`), after which EventHandle
// operations issued from any *other* thread are rejected (counted, no-op)
// instead of racing on the slab.  Unbound loops (the default, and the whole
// single-shard world) behave exactly as before.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <queue>
#include <thread>
#include <vector>

#include "obs/metrics.h"
#include "util/errors.h"
#include "util/inline_function.h"
#include "util/time.h"

namespace aars::sim {

using util::Duration;
using util::SimTime;

class EventLoop;

/// Cancellation token for a scheduled event.
///
/// Identifies the event by (slot index, generation, epoch): the loop bumps
/// the slot's generation the moment the event fires or is cancelled, so
/// `active()` is precisely "still scheduled" and a `cancel()` on an
/// already-fired handle finds a generation mismatch and is a no-op.  The
/// 32-bit generation wraps after 2^32 releases of one slot; the epoch
/// counts those wraps, widening the handle-side match to an effective
/// 64-bit identity (see "Generation wraparound" in event_loop.cpp).  The
/// handle holds no per-event heap state; it shares the loop's liveness
/// anchor so a handle that outlives its loop degrades to inert rather than
/// dangling.
class EventHandle {
 public:
  EventHandle() = default;
  /// False when fired, cancelled, foreign-thread (see cancel) or loop-dead.
  bool active() const;
  /// Cancels the event if it is still scheduled.  Returns true when this
  /// call performed the cancellation.  When the loop is bound to another
  /// shard's thread the request is rejected (false; counted in
  /// `foreign_cancels_rejected`) instead of racing — route the cancel to
  /// the owning shard instead.
  bool cancel();

 private:
  friend class EventLoop;
  EventHandle(std::shared_ptr<EventLoop*> anchor, std::uint32_t slot,
              std::uint32_t generation, std::uint32_t epoch)
      : anchor_(std::move(anchor)),
        slot_(slot),
        generation_(generation),
        epoch_(epoch) {}

  std::shared_ptr<EventLoop*> anchor_;  // *anchor_ == nullptr after loop death
  std::uint32_t slot_ = 0;
  std::uint32_t generation_ = 0;
  std::uint32_t epoch_ = 0;
};

/// Priority queue of timed callbacks. Events at the same instant run in
/// schedule order (FIFO), which keeps the simulation deterministic.
class EventLoop {
 public:
  using Callback = util::InlineFunction;

  EventLoop();
  ~EventLoop();
  EventLoop(const EventLoop&) = delete;
  EventLoop& operator=(const EventLoop&) = delete;

  SimTime now() const { return now_; }

  /// Schedules `fn` at absolute time `at` (>= now). Returns a handle that
  /// can cancel the event before it fires.
  EventHandle schedule_at(SimTime at, Callback fn);
  /// Schedules `fn` after `delay` (>= 0) from now.
  EventHandle schedule_after(Duration delay, Callback fn);

  /// Runs events until the queue empties or `limit` events ran.
  /// Returns the number of events executed.
  std::size_t run(std::size_t limit = kNoLimit);
  /// Runs events with timestamp <= deadline; leaves now() == deadline.
  std::size_t run_until(SimTime deadline);
  /// Runs events for the next `span` of simulated time.
  std::size_t run_for(Duration span) { return run_until(now_ + span); }
  /// Executes the single next event, if any. Returns false when idle.
  bool step();

  bool empty() const { return pending() == 0; }
  std::size_t pending() const { return queue_.size() - cancelled_in_queue_; }
  std::size_t executed() const { return executed_; }

  /// Timestamp of the earliest live event, or `sentinel` when the queue is
  /// empty.  Pops cancelled tombstones off the head as a side effect.
  /// Coordinator-side helper (ShardSet barrier): call only from the owning
  /// thread or while the owner is parked.
  SimTime next_event_time(SimTime sentinel);

  // --- shard-ownership ---------------------------------------------------------
  /// Binds the loop to `owner`: from then on EventHandle::cancel()/active()
  /// from other threads are rejected rather than racing on the slab.
  /// ShardSet calls this as each worker adopts its loop; single-threaded
  /// use never binds and is unaffected.
  void bind_owner_thread(std::thread::id owner) {
    owner_.store(owner, std::memory_order_relaxed);
  }
  /// True when the calling thread may touch the slab through a handle
  /// (loop unbound, or bound to this thread).
  bool owned_by_this_thread() const {
    const std::thread::id owner = owner_.load(std::memory_order_relaxed);
    return owner == std::thread::id{} || owner == std::this_thread::get_id();
  }
  /// Cross-thread EventHandle operations rejected since construction.
  std::uint64_t foreign_cancels_rejected() const {
    return foreign_cancels_rejected_.load(std::memory_order_relaxed);
  }

  // --- test hooks --------------------------------------------------------------
  /// Simulates `delta` additional releases of the slot behind `handle`
  /// (generation bumps, with epoch tracking the 32-bit wrap), so tests can
  /// exercise generation wraparound without 2^32 real schedule/cancel
  /// cycles.  Precondition: the slot is currently free.
  void debug_add_generation(const EventHandle& handle, std::uint32_t delta);

  static constexpr std::size_t kNoLimit = ~std::size_t{0};

 private:
  friend class EventHandle;

  /// Pooled callback storage. `generation` increments every time the slot
  /// is released (fire or cancel), invalidating outstanding handles and any
  /// queue entry still referencing the old generation; `epoch` increments
  /// when the 32-bit generation wraps, so handles (which carry both) keep a
  /// 64-bit effective identity.
  struct Slot {
    Callback fn;
    std::uint32_t generation = 0;
    std::uint32_t epoch = 0;
    std::uint32_t next_free = kNoSlot;
    bool in_use = false;
  };
  /// Queue entries are plain data; the callback stays in the slab.  Entries
  /// carry only the 32-bit generation (the 24-byte budget): an entry's
  /// (slot, generation) is unambiguous as long as the entry leaves the
  /// queue within 2^32 releases of its slot — see the wraparound note in
  /// event_loop.cpp.
  struct Entry {
    SimTime at;
    std::uint64_t seq;
    std::uint32_t slot;
    std::uint32_t generation;
  };
  static_assert(sizeof(Entry) == 24, "queue entries must stay 24-byte PODs");
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.at != b.at) return a.at > b.at;
      return a.seq > b.seq;
    }
  };

  static constexpr std::uint32_t kNoSlot = ~std::uint32_t{0};

  std::uint32_t acquire_slot(Callback fn);
  /// Frees a slot back to the pool and bumps its generation (epoch on wrap).
  void release_slot(std::uint32_t index);
  /// Queue-entry match: generation only (entries cannot carry the epoch).
  bool slot_matches(std::uint32_t index, std::uint32_t generation) const {
    const Slot& s = slots_[index];
    return s.in_use && s.generation == generation;
  }
  /// Handle match: generation + epoch (64-bit effective identity).
  bool handle_matches(std::uint32_t index, std::uint32_t generation,
                      std::uint32_t epoch) const {
    const Slot& s = slots_[index];
    return s.in_use && s.generation == generation && s.epoch == epoch;
  }
  bool cancel_slot(std::uint32_t index, std::uint32_t generation,
                   std::uint32_t epoch);
  void note_foreign_cancel() {
    foreign_cancels_rejected_.fetch_add(1, std::memory_order_relaxed);
  }
  bool pop_and_run();
  void report_queue_depth() {
    obs_queue_depth_->set(static_cast<double>(pending()));
  }

  SimTime now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::size_t executed_ = 0;
  std::size_t cancelled_in_queue_ = 0;
  std::vector<Slot> slots_;
  std::uint32_t free_head_ = kNoSlot;
  std::priority_queue<Entry, std::vector<Entry>, Later> queue_;
  std::shared_ptr<EventLoop*> anchor_;
  /// Owning thread under sharded execution; default-constructed id means
  /// "unbound" (any thread).  Relaxed atomics: the bind happens before the
  /// worker runs (ShardSet provides the synchronization).
  std::atomic<std::thread::id> owner_{};
  std::atomic<std::uint64_t> foreign_cancels_rejected_{0};
  // Observability mirrors (no-ops while the global registry is disabled).
  obs::Counter* obs_executed_;
  obs::Counter* obs_cancelled_;
  obs::Gauge* obs_queue_depth_;
};

inline bool EventHandle::active() const {
  if (!anchor_ || *anchor_ == nullptr) return false;
  EventLoop* loop = *anchor_;
  if (!loop->owned_by_this_thread()) return false;
  return loop->handle_matches(slot_, generation_, epoch_);
}

inline bool EventHandle::cancel() {
  if (!anchor_ || *anchor_ == nullptr) return false;
  EventLoop* loop = *anchor_;
  if (!loop->owned_by_this_thread()) {
    loop->note_foreign_cancel();
    return false;
  }
  return loop->cancel_slot(slot_, generation_, epoch_);
}

}  // namespace aars::sim
