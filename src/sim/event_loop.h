// Deterministic discrete-event loop.
//
// The whole runtime is driven by one of these: message deliveries, component
// execution, RAML measurement ticks and reconfiguration steps are all events
// on the same clock, which makes every experiment reproducible.
//
// Storage is a slab: callbacks live in pooled slots recycled through a
// freelist, queue entries are 24-byte PODs referencing a slot by index, and
// handles carry (slot, generation) so stale references self-invalidate.  At
// steady state scheduling an event performs zero heap allocations (the slab
// and queue reach high-water size and stay there; callbacks up to
// InlineFunction::kInlineSize bytes of capture are stored inline).
#pragma once

#include <cstdint>
#include <memory>
#include <queue>
#include <vector>

#include "obs/metrics.h"
#include "util/errors.h"
#include "util/inline_function.h"
#include "util/time.h"

namespace aars::sim {

using util::Duration;
using util::SimTime;

class EventLoop;

/// Cancellation token for a scheduled event.
///
/// Identifies the event by (slot index, generation): the loop bumps the
/// slot's generation the moment the event fires or is cancelled, so
/// `active()` is precisely "still scheduled" and a `cancel()` on an
/// already-fired handle finds a generation mismatch and is a no-op.  The
/// handle holds no per-event heap state; it shares the loop's liveness
/// anchor so a handle that outlives its loop degrades to inert rather than
/// dangling.
class EventHandle {
 public:
  EventHandle() = default;
  bool active() const;
  void cancel();

 private:
  friend class EventLoop;
  EventHandle(std::shared_ptr<EventLoop*> anchor, std::uint32_t slot,
              std::uint32_t generation)
      : anchor_(std::move(anchor)), slot_(slot), generation_(generation) {}

  std::shared_ptr<EventLoop*> anchor_;  // *anchor_ == nullptr after loop death
  std::uint32_t slot_ = 0;
  std::uint32_t generation_ = 0;
};

/// Priority queue of timed callbacks. Events at the same instant run in
/// schedule order (FIFO), which keeps the simulation deterministic.
class EventLoop {
 public:
  using Callback = util::InlineFunction;

  EventLoop();
  ~EventLoop();
  EventLoop(const EventLoop&) = delete;
  EventLoop& operator=(const EventLoop&) = delete;

  SimTime now() const { return now_; }

  /// Schedules `fn` at absolute time `at` (>= now). Returns a handle that
  /// can cancel the event before it fires.
  EventHandle schedule_at(SimTime at, Callback fn);
  /// Schedules `fn` after `delay` (>= 0) from now.
  EventHandle schedule_after(Duration delay, Callback fn);

  /// Runs events until the queue empties or `limit` events ran.
  /// Returns the number of events executed.
  std::size_t run(std::size_t limit = kNoLimit);
  /// Runs events with timestamp <= deadline; leaves now() == deadline.
  std::size_t run_until(SimTime deadline);
  /// Runs events for the next `span` of simulated time.
  std::size_t run_for(Duration span) { return run_until(now_ + span); }
  /// Executes the single next event, if any. Returns false when idle.
  bool step();

  bool empty() const { return pending() == 0; }
  std::size_t pending() const { return queue_.size() - cancelled_in_queue_; }
  std::size_t executed() const { return executed_; }

  static constexpr std::size_t kNoLimit = ~std::size_t{0};

 private:
  friend class EventHandle;

  /// Pooled callback storage. `generation` increments every time the slot
  /// is released (fire or cancel), invalidating outstanding handles and any
  /// queue entry still referencing the old generation.
  struct Slot {
    Callback fn;
    std::uint32_t generation = 0;
    std::uint32_t next_free = kNoSlot;
    bool in_use = false;
  };
  /// Queue entries are plain data; the callback stays in the slab.
  struct Entry {
    SimTime at;
    std::uint64_t seq;
    std::uint32_t slot;
    std::uint32_t generation;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.at != b.at) return a.at > b.at;
      return a.seq > b.seq;
    }
  };

  static constexpr std::uint32_t kNoSlot = ~std::uint32_t{0};

  std::uint32_t acquire_slot(Callback fn);
  /// Frees a slot back to the pool and bumps its generation.
  void release_slot(std::uint32_t index);
  bool slot_matches(std::uint32_t index, std::uint32_t generation) const {
    const Slot& s = slots_[index];
    return s.in_use && s.generation == generation;
  }
  void cancel_slot(std::uint32_t index, std::uint32_t generation);
  bool pop_and_run();

  SimTime now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::size_t executed_ = 0;
  std::size_t cancelled_in_queue_ = 0;
  std::vector<Slot> slots_;
  std::uint32_t free_head_ = kNoSlot;
  std::priority_queue<Entry, std::vector<Entry>, Later> queue_;
  std::shared_ptr<EventLoop*> anchor_;
  // Observability mirrors (no-ops while the global registry is disabled).
  obs::Counter* obs_executed_;
  obs::Counter* obs_cancelled_;
  obs::Gauge* obs_queue_depth_;
};

inline bool EventHandle::active() const {
  return anchor_ && *anchor_ != nullptr &&
         (*anchor_)->slot_matches(slot_, generation_);
}

inline void EventHandle::cancel() {
  if (anchor_ && *anchor_ != nullptr) {
    (*anchor_)->cancel_slot(slot_, generation_);
  }
}

}  // namespace aars::sim
