// Workload generators.
//
// Arrival processes produce inter-arrival gaps; the WorkloadDriver turns an
// arrival process into scheduled events on an EventLoop.  The rush-hour
// trace reproduces the paper's motivating scenario: users connecting to
// wireless multimedia services "during rush hours" (§2).
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "sim/event_loop.h"
#include "util/rng.h"
#include "util/time.h"

namespace aars::sim {

/// Produces the gap to the next arrival, given the current time.
class ArrivalProcess {
 public:
  virtual ~ArrivalProcess() = default;
  virtual Duration next_gap(SimTime now, util::Rng& rng) = 0;
  /// Instantaneous nominal rate (events/sec) at `now`, for reporting.
  virtual double rate_at(SimTime now) const = 0;
};

/// Deterministic fixed-rate arrivals.
class ConstantRate final : public ArrivalProcess {
 public:
  explicit ConstantRate(double events_per_second);
  Duration next_gap(SimTime now, util::Rng& rng) override;
  double rate_at(SimTime) const override { return rate_; }

 private:
  double rate_;
};

/// Memoryless arrivals at a fixed mean rate.
class PoissonArrivals final : public ArrivalProcess {
 public:
  explicit PoissonArrivals(double events_per_second);
  Duration next_gap(SimTime now, util::Rng& rng) override;
  double rate_at(SimTime) const override { return rate_; }

 private:
  double rate_;
};

/// Markov-modulated on/off bursts: Poisson at `burst_rate` during bursts,
/// silent otherwise. Mean burst/idle durations are exponential.
class BurstyArrivals final : public ArrivalProcess {
 public:
  BurstyArrivals(double burst_rate, Duration mean_burst, Duration mean_idle);
  Duration next_gap(SimTime now, util::Rng& rng) override;
  double rate_at(SimTime now) const override;

 private:
  double burst_rate_;
  Duration mean_burst_;
  Duration mean_idle_;
  SimTime phase_end_ = 0;
  bool in_burst_ = false;
};

/// Piecewise-linear rate profile: Poisson arrivals whose rate follows
/// (time, rate) breakpoints, linearly interpolated. The profile repeats
/// after the last breakpoint.
class TraceArrivals final : public ArrivalProcess {
 public:
  struct Point {
    SimTime at;
    double rate;
  };
  explicit TraceArrivals(std::vector<Point> profile);
  Duration next_gap(SimTime now, util::Rng& rng) override;
  double rate_at(SimTime now) const override;

 private:
  std::vector<Point> profile_;
  SimTime period_;
};

/// Builds the canonical "rush hour" profile: base load, a climb to
/// `peak_rate` around 2/5 of the period, a second smaller peak near 4/5,
/// back to base. Models the diurnal double-peak of telecom traffic.
TraceArrivals rush_hour_trace(double base_rate, double peak_rate,
                              Duration period);

/// Schedules one callback per arrival on an event loop until `end`.
class WorkloadDriver {
 public:
  using Arrival = std::function<void(SimTime)>;

  WorkloadDriver(EventLoop& loop, std::unique_ptr<ArrivalProcess> process,
                 util::Rng rng);

  /// Starts generating arrivals in (now, end]; each fires `on_arrival`.
  void start(SimTime end, Arrival on_arrival);
  void stop();
  std::size_t generated() const { return generated_; }
  const ArrivalProcess& process() const { return *process_; }

 private:
  void schedule_next();

  EventLoop& loop_;
  std::unique_ptr<ArrivalProcess> process_;
  util::Rng rng_;
  Arrival on_arrival_;
  SimTime end_ = 0;
  bool running_ = false;
  std::size_t generated_ = 0;
  EventHandle pending_;
};

}  // namespace aars::sim
