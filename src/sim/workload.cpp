#include "sim/workload.h"

#include <algorithm>
#include <cmath>

#include "util/errors.h"

namespace aars::sim {

ConstantRate::ConstantRate(double events_per_second)
    : rate_(events_per_second) {
  util::require(rate_ > 0.0, "rate must be positive");
}

Duration ConstantRate::next_gap(SimTime, util::Rng&) {
  return std::max<Duration>(
      static_cast<Duration>(util::kSecond / rate_), 1);
}

PoissonArrivals::PoissonArrivals(double events_per_second)
    : rate_(events_per_second) {
  util::require(rate_ > 0.0, "rate must be positive");
}

Duration PoissonArrivals::next_gap(SimTime, util::Rng& rng) {
  return rng.poisson_gap(rate_);
}

BurstyArrivals::BurstyArrivals(double burst_rate, Duration mean_burst,
                               Duration mean_idle)
    : burst_rate_(burst_rate), mean_burst_(mean_burst), mean_idle_(mean_idle) {
  util::require(burst_rate > 0.0, "burst rate must be positive");
  util::require(mean_burst > 0 && mean_idle > 0,
                "burst/idle durations must be positive");
}

Duration BurstyArrivals::next_gap(SimTime now, util::Rng& rng) {
  Duration gap = 0;
  SimTime cursor = now;
  while (true) {
    if (cursor >= phase_end_) {
      // Flip phase; draw the next phase duration.
      in_burst_ = !in_burst_;
      const Duration mean = in_burst_ ? mean_burst_ : mean_idle_;
      phase_end_ = cursor + std::max<Duration>(
          static_cast<Duration>(rng.exponential(
              static_cast<double>(mean))), 1);
    }
    if (in_burst_) {
      const Duration candidate = rng.poisson_gap(burst_rate_);
      if (cursor + candidate <= phase_end_) {
        return gap + candidate;
      }
      // Arrival falls past the burst: consume the rest of the burst.
      gap += phase_end_ - cursor;
      cursor = phase_end_;
    } else {
      gap += phase_end_ - cursor;
      cursor = phase_end_;
    }
  }
}

double BurstyArrivals::rate_at(SimTime now) const {
  return (in_burst_ && now < phase_end_) ? burst_rate_ : 0.0;
}

TraceArrivals::TraceArrivals(std::vector<Point> profile)
    : profile_(std::move(profile)) {
  util::require(profile_.size() >= 2, "trace needs at least two points");
  for (std::size_t i = 1; i < profile_.size(); ++i) {
    util::require(profile_[i].at > profile_[i - 1].at,
                  "trace breakpoints must be increasing");
  }
  for (const Point& p : profile_) {
    util::require(p.rate >= 0.0, "trace rates must be non-negative");
  }
  period_ = profile_.back().at;
}

double TraceArrivals::rate_at(SimTime now) const {
  const SimTime t = now % period_;
  for (std::size_t i = 1; i < profile_.size(); ++i) {
    if (t <= profile_[i].at) {
      const Point& a = profile_[i - 1];
      const Point& b = profile_[i];
      const double f = static_cast<double>(t - a.at) /
                       static_cast<double>(b.at - a.at);
      return a.rate + f * (b.rate - a.rate);
    }
  }
  return profile_.back().rate;
}

Duration TraceArrivals::next_gap(SimTime now, util::Rng& rng) {
  // Thinning: sample at the max rate, accept with p = rate(t)/max_rate.
  double max_rate = 0.0;
  for (const Point& p : profile_) max_rate = std::max(max_rate, p.rate);
  util::require(max_rate > 0.0, "trace must have a positive peak rate");
  SimTime cursor = now;
  while (true) {
    const Duration gap = rng.poisson_gap(max_rate);
    cursor += gap;
    if (rng.chance(rate_at(cursor) / max_rate)) {
      return cursor - now;
    }
  }
}

TraceArrivals rush_hour_trace(double base_rate, double peak_rate,
                              Duration period) {
  util::require(peak_rate >= base_rate, "peak must be >= base rate");
  const auto frac = [&](double f) {
    return static_cast<SimTime>(static_cast<double>(period) * f);
  };
  return TraceArrivals({{0, base_rate},
                        {frac(0.25), base_rate * 1.2},
                        {frac(0.40), peak_rate},
                        {frac(0.55), base_rate * 1.5},
                        {frac(0.80), peak_rate * 0.8},
                        {period, base_rate}});
}

WorkloadDriver::WorkloadDriver(EventLoop& loop,
                               std::unique_ptr<ArrivalProcess> process,
                               util::Rng rng)
    : loop_(loop), process_(std::move(process)), rng_(rng) {
  util::require(process_ != nullptr, "arrival process required");
}

void WorkloadDriver::start(SimTime end, Arrival on_arrival) {
  util::require(static_cast<bool>(on_arrival), "arrival callback required");
  util::require(!running_, "driver already running");
  end_ = end;
  on_arrival_ = std::move(on_arrival);
  running_ = true;
  schedule_next();
}

void WorkloadDriver::stop() {
  running_ = false;
  pending_.cancel();
}

void WorkloadDriver::schedule_next() {
  if (!running_) return;
  const Duration gap = process_->next_gap(loop_.now(), rng_);
  const SimTime at = loop_.now() + gap;
  if (at > end_) {
    running_ = false;
    return;
  }
  pending_ = loop_.schedule_at(at, [this] {
    if (!running_) return;
    ++generated_;
    on_arrival_(loop_.now());
    schedule_next();
  });
}

}  // namespace aars::sim
