// Simulated network: nodes joined by links with latency, bandwidth, jitter
// and loss.  Message transfer delay between components on different nodes is
// computed here; co-located components communicate at zero network cost.
#pragma once

#include <map>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "sim/node.h"
#include "util/errors.h"
#include "util/ids.h"
#include "util/rng.h"
#include "util/time.h"

namespace aars::sim {

/// Directed link properties.
struct LinkSpec {
  Duration latency = util::milliseconds(1);
  double bandwidth_bytes_per_sec = 12.5e6;  // 100 Mbit/s
  Duration jitter = 0;                      // uniform +/- jitter
  double loss_probability = 0.0;
};

/// Result of routing a payload across the network.
struct TransferOutcome {
  bool delivered = true;
  Duration delay = 0;
  int hops = 0;
};

/// Topology of Nodes and directed links. Owns the nodes.
class Network {
 public:
  /// Creates a node; name must be unique.
  Node& add_node(const std::string& name, double capacity);

  Node& node(NodeId id);
  const Node& node(NodeId id) const;
  Node* find_node(const std::string& name);
  NodeId node_id(const std::string& name) const;
  std::vector<NodeId> node_ids() const;
  std::size_t node_count() const { return nodes_.size(); }

  /// Adds a directed link; use twice for a duplex connection.
  void add_link(NodeId from, NodeId to, LinkSpec spec);
  /// Convenience: adds both directions with the same spec.
  void add_duplex_link(NodeId a, NodeId b, LinkSpec spec);
  bool has_link(NodeId from, NodeId to) const;
  /// Mutable access for dynamic degradation scenarios.
  LinkSpec* find_link(NodeId from, NodeId to);
  /// Removes a directed link (partition / host-crash scenarios). Returns the
  /// removed spec so fault injectors can restore it later.
  std::optional<LinkSpec> remove_link(NodeId from, NodeId to);
  /// Directed links touching `node` (either endpoint), as (from, to) pairs.
  std::vector<std::pair<NodeId, NodeId>> links_of(NodeId node) const;

  /// Computes delivery of `bytes` from `from` to `to`. Same node => free.
  /// Routes over the fewest-hop path; each hop adds latency + serialisation
  /// delay + jitter and applies the link's loss probability.
  TransferOutcome transfer(NodeId from, NodeId to, std::size_t bytes,
                           util::Rng& rng) const;

  /// Fewest-hop path (inclusive of endpoints); empty when unreachable.
  std::vector<NodeId> route(NodeId from, NodeId to) const;

 private:
  util::IdGenerator<NodeId> ids_;
  std::map<NodeId, std::unique_ptr<Node>> nodes_;
  std::unordered_map<std::string, NodeId> by_name_;
  std::map<std::pair<NodeId, NodeId>, LinkSpec> links_;
};

}  // namespace aars::sim
