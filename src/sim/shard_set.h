// Sharded multi-core execution: N event loops, conservative time windows,
// lock-free cross-shard mailboxes.
//
// A ShardSet partitions a simulated world across N worker threads, each
// owning one EventLoop (and, above this layer, one per-shard runtime
// stack).  Execution is fork/join in *conservative time windows*:
//
//   barrier:  workers parked.  The coordinator drains every mailbox,
//             runs registered barrier actions (migration state machines,
//             probes), computes the next window
//             window_end = min(next event over all shards) + lookahead
//             and hands each worker its target.
//   window:   workers run their loops up to window_end in parallel,
//             posting cross-shard work into mailboxes (never touching
//             another shard's loop directly).
//
// The lookahead is the minimum latency of any cross-shard link: a message
// sent during a window is delivered no earlier than sender_now + lookahead
// >= window_end, so nothing a worker does mid-window can schedule into a
// peer's already-executing past.  post() enforces that bound.
//
// Mailboxes are bounded lock-free SPSC rings (sim/spsc.h), one per ordered
// shard pair — the sending worker is the only producer, the coordinator
// (at the barrier, workers parked) the only consumer.  When a ring fills
// mid-window the sender diverts to a sender-local overflow vector instead
// of spinning (the consumer won't drain until the barrier, so spinning
// would deadlock the window); the park/unpark handshake makes the overflow
// safely visible to the coordinator.
//
// Determinism: windows derive only from simulated event times, mailboxes
// drain in fixed order (sender shard 0..N-1, FIFO within a pair, ring
// before overflow), and drained events receive receiver sequence numbers
// in that order — so a run is reproducible for a fixed (seed, shard
// count), independent of thread scheduling.  N=1 bypasses threads,
// windows and mailboxes entirely and is byte-identical to unsharded
// execution (the golden determinism digest is the regression test).
#pragma once

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <limits>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "sim/event_loop.h"
#include "sim/spsc.h"
#include "util/errors.h"
#include "util/time.h"

namespace aars::sim {

class ShardSet {
 public:
  struct Options {
    /// Conservative window slack; must be <= every cross-shard link
    /// latency (the sharded runtime derives it as their minimum).
    Duration lookahead = util::kMillisecond;
    /// Per-(sender, receiver) ring capacity; overflow past this spills to
    /// a sender-local vector, costing nothing but the ring's losslessness.
    std::size_t mailbox_capacity = 4096;
  };

  /// A barrier action: runs on the coordinator thread between windows,
  /// with every worker parked, receiving the barrier's simulated time.
  /// Returns true to stay registered for the next barrier, false to
  /// unregister (one-shot actions and finished state machines).
  using BarrierAction = std::function<bool(SimTime)>;

  /// `loops[i]` is shard i's event loop; borrowed, must outlive the set.
  /// Worker threads (for N > 1) start parked immediately.
  ShardSet(std::vector<EventLoop*> loops, Options options);
  ~ShardSet();
  ShardSet(const ShardSet&) = delete;
  ShardSet& operator=(const ShardSet&) = delete;

  std::size_t shard_count() const { return loops_.size(); }
  EventLoop& loop(std::size_t shard) { return *loops_[shard]; }
  Duration lookahead() const { return options_.lookahead; }
  /// The current barrier time (all loops stand at this time between
  /// windows; 0 before the first run).
  SimTime now() const { return now_; }

  /// Posts `fn` to run on shard `to` at simulated time `at`.
  ///   * from == to: schedules directly on the shard's loop (at >= now).
  ///   * cross-shard: requires at >= sender_now + lookahead (the
  ///     conservative bound) and enqueues into the (from, to) mailbox; the
  ///     coordinator schedules it on the receiver at the next barrier.
  /// Callable from shard `from`'s worker mid-window, or from the
  /// coordinator thread at a barrier / before running.
  void post(std::size_t from, std::size_t to, SimTime at,
            EventLoop::Callback fn);

  /// Registers a barrier action (coordinator thread only).  With N == 1
  /// there are no barriers; the action runs inline, repeatedly, until it
  /// returns false.
  void at_barrier(BarrierAction action);

  /// Runs windows until every shard is idle and every mailbox is empty.
  /// Returns the number of events executed across all shards.
  std::size_t run();
  /// Runs windows until simulated time `deadline`; leaves every shard's
  /// clock at the deadline.
  std::size_t run_until(SimTime deadline);
  std::size_t run_for(Duration span) { return run_until(now_ + span); }

  // --- aggregate statistics ----------------------------------------------------
  /// Total events executed across all shards.
  std::size_t executed() const;
  /// Barrier count so far (0 in single-shard mode).
  std::uint64_t windows() const { return windows_; }
  /// Cross-shard events delivered through mailboxes.
  std::uint64_t cross_shard_delivered() const { return delivered_; }
  /// Deliveries that had to take the overflow path (ring full).
  std::uint64_t mailbox_overflows() const { return overflows_; }
  /// Sum of EventHandle operations rejected for crossing shard threads.
  std::uint64_t foreign_cancels_rejected() const;

  static constexpr SimTime kIdle = std::numeric_limits<SimTime>::max();

 private:
  struct CrossShardEvent {
    SimTime at = 0;
    EventLoop::Callback fn;
  };
  /// One ordered sender->receiver channel: lock-free ring + sender-local
  /// overflow (overflow is touched by the sender mid-window and by the
  /// coordinator at barriers; the park handshake orders the two).
  struct Mailbox {
    explicit Mailbox(std::size_t capacity) : ring(capacity) {}
    SpscRing<CrossShardEvent> ring;
    std::vector<CrossShardEvent> overflow;
  };
  /// Park/unpark handshake for one worker.  The coordinator bumps job_id
  /// (with target set) to launch a window; the worker reports back through
  /// done_id.  Both transitions happen under the mutex, giving the
  /// happens-before edges that make loop state and mailbox overflow safe
  /// to touch from the other side.
  struct Worker {
    std::mutex mu;
    std::condition_variable cv;
    std::uint64_t job_id = 0;
    std::uint64_t done_id = 0;
    SimTime target = 0;
    bool stop = false;
    std::thread thread;
  };

  void worker_main(std::size_t shard);
  /// Launches one window to `window_end` on every worker and waits for all
  /// of them to park again.
  void run_window(SimTime window_end);
  /// Coordinator: moves every mailbox's content onto receiver loops in
  /// deterministic order.  Workers must be parked.
  void drain_mailboxes();
  /// Runs due barrier actions; returns true if any remain registered.
  bool run_barrier_actions();
  /// Earliest live event over all shards, or kIdle.
  SimTime next_event_time();
  /// Sets every idle loop's clock forward to `t` (via run_until).
  void advance_all(SimTime t);
  Mailbox& mailbox(std::size_t from, std::size_t to) {
    return *mailboxes_[from * loops_.size() + to];
  }

  std::vector<EventLoop*> loops_;
  Options options_;
  SimTime now_ = 0;
  std::vector<std::unique_ptr<Mailbox>> mailboxes_;  // N*N, [from*N + to]
  std::vector<std::unique_ptr<Worker>> workers_;     // empty when N == 1
  std::vector<BarrierAction> barrier_actions_;
  std::uint64_t windows_ = 0;
  std::uint64_t delivered_ = 0;
  std::uint64_t overflows_ = 0;
};

}  // namespace aars::sim
