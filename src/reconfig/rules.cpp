#include "reconfig/rules.h"

#include "sim/network.h"
#include "sim/node.h"
#include "util/strings.h"

namespace aars::reconfig {

using util::Error;
using util::ErrorCode;
using util::Result;

namespace {

bool compare(adl::AstCompare op, double value, double threshold) {
  switch (op) {
    case adl::AstCompare::kLt: return value < threshold;
    case adl::AstCompare::kLe: return value <= threshold;
    case adl::AstCompare::kGt: return value > threshold;
    case adl::AstCompare::kGe: return value >= threshold;
    case adl::AstCompare::kEq: return value == threshold;
    case adl::AstCompare::kNe: return value != threshold;
  }
  return false;
}

}  // namespace

Result<std::shared_ptr<RuleSet>> RuleSet::install(
    const adl::RuleProgram& program, Application& app,
    ReconfigurationEngine& engine, fault::FaultInjector* injector) {
  std::shared_ptr<RuleSet> set(new RuleSet(app, engine, injector));
  std::size_t max_actions = 0;

  for (const adl::CompiledRule& compiled : program.rules) {
    BoundRule rule;
    rule.name = compiled.name;
    rule.compare = compiled.condition.compare;
    rule.threshold = compiled.condition.threshold;
    rule.sustain_ticks = compiled.condition.sustain_ticks;
    rule.cooldown = compiled.cooldown_us;
    rule.is_event = compiled.condition.is_event;
    if (rule.is_event) {
      set->event_rules_.emplace_back(compiled.condition.event,
                                     set->rules_.size());
    } else {
      rule.source = compiled.condition.source;
      switch (rule.source) {
        case adl::MetricSource::kQueueDepth:
          rule.metric_connector =
              app.connector_id(compiled.condition.subject.str());
          if (!rule.metric_connector.valid()) {
            return Error{ErrorCode::kNotFound,
                         "rule '" + rule.name.str() +
                             "': connector '" +
                             compiled.condition.subject.str() +
                             "' is not deployed"};
          }
          break;
        case adl::MetricSource::kNodeBacklog:
          rule.metric_node =
              app.network().node_id(compiled.condition.subject.str());
          if (!rule.metric_node.valid()) {
            return Error{ErrorCode::kNotFound,
                         "rule '" + rule.name.str() + "': node '" +
                             compiled.condition.subject.str() +
                             "' is not deployed"};
          }
          break;
        case adl::MetricSource::kFaultActive:
          if (injector == nullptr) {
            return Error{ErrorCode::kInvalidArgument,
                         "rule '" + rule.name.str() +
                             "' samples fault.active but no fault injector "
                             "was supplied"};
          }
          break;
      }
    }

    rule.actions.reserve(compiled.actions.size());
    for (const adl::CompiledAction& action : compiled.actions) {
      BoundAction bound;
      bound.op = action.op;
      bound.instance_name = action.instance;
      bound.type = action.type;
      bound.port = action.port;
      switch (action.op) {
        case adl::RuleOp::kAdd:
          bound.name = action.name;
          bound.node = app.network().node_id(action.node.str());
          if (!bound.node.valid()) {
            return Error{ErrorCode::kNotFound,
                         "rule '" + rule.name.str() + "': node '" +
                             action.node.str() + "' is not deployed"};
          }
          break;
        case adl::RuleOp::kReplace:
          // A replacement needs a fresh instance name; precompute one here
          // so firing never builds a string.
          bound.name = action.name.empty()
                           ? util::Symbol(action.instance.str() + "_new")
                           : action.name;
          break;
        case adl::RuleOp::kMigrate:
          bound.node = app.network().node_id(action.node.str());
          if (!bound.node.valid()) {
            return Error{ErrorCode::kNotFound,
                         "rule '" + rule.name.str() + "': node '" +
                             action.node.str() + "' is not deployed"};
          }
          break;
        case adl::RuleOp::kRebind:
          bound.connector = app.connector_id(action.connector.str());
          if (!bound.connector.valid()) {
            return Error{ErrorCode::kNotFound,
                         "rule '" + rule.name.str() + "': connector '" +
                             action.connector.str() + "' is not deployed"};
          }
          break;
        case adl::RuleOp::kReroute:
          // The replica may be created by an earlier action of this rule
          // (scale-out: add w2; reroute w to w2) — leave it symbolic then
          // and resolve through the scratch table at fire time.
          bound.replica_name = action.replica;
          bound.replica = app.component_id(action.replica.str());
          break;
        case adl::RuleOp::kRemove:
          break;
      }
      if (action.op != adl::RuleOp::kAdd) {
        // Bind the target now when it is part of the declared deployment;
        // targets created by earlier actions of the same rule stay symbolic
        // and resolve through the firing-local scratch table.
        bound.instance = app.component_id(action.instance.str());
      }
      rule.actions.push_back(bound);
    }
    max_actions = std::max(max_actions, rule.actions.size());
    set->rules_.push_back(std::move(rule));
  }
  set->scratch_.reserve(max_actions);
  return set;
}

double RuleSet::sample(const BoundRule& rule, SimTime now) const {
  switch (rule.source) {
    case adl::MetricSource::kQueueDepth:
      return static_cast<double>(app_.queue_depth(rule.metric_connector));
    case adl::MetricSource::kNodeBacklog:
      return static_cast<double>(
          app_.network().node(rule.metric_node).backlog(now));
    case adl::MetricSource::kFaultActive:
      return static_cast<double>(injector_->active_faults());
  }
  return 0.0;
}

bool RuleSet::condition_holds(const BoundRule& rule, SimTime now) const {
  return compare(rule.compare, sample(rule, now), rule.threshold);
}

void RuleSet::evaluate(SimTime now) {
  ++stats_.evaluations;
  for (BoundRule& rule : rules_) {
    if (rule.is_event) continue;
    if (!condition_holds(rule, now)) {
      rule.streak = 0;
      continue;
    }
    if (rule.streak < rule.sustain_ticks) ++rule.streak;
    if (rule.streak < rule.sustain_ticks) continue;
    if (rule.inflight > 0 ||
        (rule.ever_fired && now - rule.last_fired < rule.cooldown)) {
      ++stats_.suppressed;
      continue;
    }
    rule.streak = 0;
    fire(rule, now);
  }
}

void RuleSet::fire_event_rule(std::size_t index, SimTime now) {
  if (index >= event_rules_.size()) return;
  BoundRule& rule = rules_[event_rules_[index].second];
  if (rule.inflight > 0 ||
      (rule.ever_fired && now - rule.last_fired < rule.cooldown)) {
    ++stats_.suppressed;
    return;
  }
  fire(rule, now);
}

ComponentId RuleSet::resolve(ComponentId bound, util::Symbol name) const {
  if (bound.valid()) return bound;
  // Instances created by an earlier action of this firing: linear scan,
  // Symbol equality is pointer comparison.
  for (const auto& [entry, id] : scratch_) {
    if (entry == name) return id;
  }
  return ComponentId::invalid();
}

void RuleSet::rebind_instance(ComponentId from, ComponentId to) {
  if (!from.valid() || !to.valid() || from == to) return;
  for (BoundRule& rule : rules_) {
    for (BoundAction& action : rule.actions) {
      if (action.instance == from) action.instance = to;
      if (action.replica == from) action.replica = to;
    }
  }
}

void RuleSet::fire(BoundRule& rule, SimTime now) {
  ++stats_.fired;
  rule.ever_fired = true;
  rule.last_fired = now;
  scratch_.clear();

  for (BoundAction& action : rule.actions) {
    ++stats_.actions;
    // Async protocols report through this; firing-time allocation is fine —
    // a reconfiguration is in progress.
    ++rule.inflight;
    BoundRule* rule_ptr = &rule;
    const Done done = [this, rule_ptr](const ReconfigReport& report) {
      --rule_ptr->inflight;
      if (!report.ok()) ++stats_.failed;
    };
    switch (action.op) {
      case adl::RuleOp::kAdd: {
        Result<ComponentId> added = engine_.add_component(
            action.type.str(), action.name.str(), action.node, Value{});
        --rule.inflight;  // synchronous
        if (added.ok()) {
          scratch_.emplace_back(action.name, added.value());
        } else {
          ++stats_.failed;
        }
        break;
      }
      case adl::RuleOp::kRemove: {
        const ComponentId target = resolve(action.instance, action.instance_name);
        if (!target.valid()) {
          --rule.inflight;
          ++stats_.failed;
          break;
        }
        engine_.remove_component(target, done);
        break;
      }
      case adl::RuleOp::kReplace: {
        const ComponentId target = resolve(action.instance, action.instance_name);
        if (!target.valid()) {
          --rule.inflight;
          ++stats_.failed;
          break;
        }
        engine_.replace_component(
            target, action.type.str(), action.name.str(),
            [this, rule_ptr, target](const ReconfigReport& report) {
              --rule_ptr->inflight;
              if (report.ok()) {
                rebind_instance(target, report.new_component);
              } else {
                ++stats_.failed;
              }
            });
        break;
      }
      case adl::RuleOp::kMigrate: {
        const ComponentId target = resolve(action.instance, action.instance_name);
        if (!target.valid()) {
          --rule.inflight;
          ++stats_.failed;
          break;
        }
        engine_.migrate_component(target, action.node, done);
        break;
      }
      case adl::RuleOp::kRebind: {
        const ComponentId target = resolve(action.instance, action.instance_name);
        --rule.inflight;  // synchronous
        if (!target.valid()) {
          ++stats_.failed;
          break;
        }
        if (!engine_.rebind(target, action.port.str(), action.connector)
                 .ok()) {
          ++stats_.failed;
        }
        break;
      }
      case adl::RuleOp::kReroute: {
        const ComponentId target = resolve(action.instance, action.instance_name);
        const ComponentId replica =
            resolve(action.replica, action.replica_name);
        if (!target.valid() || !replica.valid()) {
          --rule.inflight;
          ++stats_.failed;
          break;
        }
        engine_.reroute_to_replica(
            target, replica,
            [this, rule_ptr, target, replica](const ReconfigReport& report) {
              --rule_ptr->inflight;
              if (report.ok()) {
                rebind_instance(target, replica);
              } else {
                ++stats_.failed;
              }
            });
        break;
      }
    }
  }
}

}  // namespace aars::reconfig
