#include "reconfig/rules.h"

#include "sim/network.h"
#include "sim/node.h"
#include "util/strings.h"

namespace aars::reconfig {

using util::Error;
using util::ErrorCode;
using util::Result;

namespace {

bool compare(adl::AstCompare op, double value, double threshold) {
  switch (op) {
    case adl::AstCompare::kLt: return value < threshold;
    case adl::AstCompare::kLe: return value <= threshold;
    case adl::AstCompare::kGt: return value > threshold;
    case adl::AstCompare::kGe: return value >= threshold;
    case adl::AstCompare::kEq: return value == threshold;
    case adl::AstCompare::kNe: return value != threshold;
  }
  return false;
}

analysis::PlanOp to_plan_op(adl::RuleOp op) {
  switch (op) {
    case adl::RuleOp::kAdd: return analysis::PlanOp::kAdd;
    case adl::RuleOp::kRemove: return analysis::PlanOp::kRemove;
    case adl::RuleOp::kReplace: return analysis::PlanOp::kReplace;
    case adl::RuleOp::kMigrate: return analysis::PlanOp::kMigrate;
    case adl::RuleOp::kRebind: return analysis::PlanOp::kRebind;
    case adl::RuleOp::kReroute: return analysis::PlanOp::kReroute;
  }
  return analysis::PlanOp::kRemove;
}

}  // namespace

Result<std::shared_ptr<RuleSet>> RuleSet::install(
    const adl::RuleProgram& program, Application& app,
    ReconfigurationEngine& engine, fault::FaultInjector* injector,
    TxnPolicy policy, const ExploreGate& gate) {
  // Model-check the program against the live deployment before binding a
  // single rule: an unsafe program is rejected (kEnforce) or counted
  // (kWarn) without ever becoming able to fire.
  if (gate.mode != analysis::VerifyMode::kOff && !program.rules.empty()) {
    const analysis::ExplorationResult exploration = analysis::explore(
        analysis::model_from(app), program, gate.options);
    const std::size_t errors = exploration.report.errors();
    if (errors > 0) {
      if (gate.mode == analysis::VerifyMode::kEnforce) {
        return Error{ErrorCode::kVerificationFailed,
                     "rule program rejected by configuration-space "
                     "exploration: " +
                         exploration.report.first_error()};
      }
      obs::Registry::global()
          .counter("rules.explore_findings")
          .inc(errors);
    }
  }

  std::shared_ptr<RuleSet> set(new RuleSet(app, engine, injector, policy));

  for (const adl::CompiledRule& compiled : program.rules) {
    BoundRule rule;
    rule.name = compiled.name;
    rule.compare = compiled.condition.compare;
    rule.threshold = compiled.condition.threshold;
    rule.sustain_ticks = compiled.condition.sustain_ticks;
    rule.cooldown = compiled.cooldown_us;
    rule.deadline = compiled.deadline_us > 0 ? compiled.deadline_us
                                             : policy.default_deadline;
    rule.is_event = compiled.condition.is_event;
    if (rule.is_event) {
      set->event_rules_.emplace_back(compiled.condition.event,
                                     set->rules_.size());
    } else {
      rule.source = compiled.condition.source;
      switch (rule.source) {
        case adl::MetricSource::kQueueDepth:
          rule.metric_connector =
              app.connector_id(compiled.condition.subject.str());
          if (!rule.metric_connector.valid()) {
            return Error{ErrorCode::kNotFound,
                         "rule '" + rule.name.str() +
                             "': connector '" +
                             compiled.condition.subject.str() +
                             "' is not deployed"};
          }
          break;
        case adl::MetricSource::kNodeBacklog:
          rule.metric_node =
              app.network().node_id(compiled.condition.subject.str());
          if (!rule.metric_node.valid()) {
            return Error{ErrorCode::kNotFound,
                         "rule '" + rule.name.str() + "': node '" +
                             compiled.condition.subject.str() +
                             "' is not deployed"};
          }
          break;
        case adl::MetricSource::kFaultActive:
          if (injector == nullptr) {
            return Error{ErrorCode::kInvalidArgument,
                         "rule '" + rule.name.str() +
                             "' samples fault.active but no fault injector "
                             "was supplied"};
          }
          break;
      }
    }

    rule.actions.reserve(compiled.actions.size());
    for (const adl::CompiledAction& action : compiled.actions) {
      BoundAction bound;
      bound.op = action.op;
      bound.instance_name = action.instance;
      bound.type = action.type;
      bound.port = action.port;
      switch (action.op) {
        case adl::RuleOp::kAdd:
          bound.name = action.name;
          bound.node = app.network().node_id(action.node.str());
          if (!bound.node.valid()) {
            return Error{ErrorCode::kNotFound,
                         "rule '" + rule.name.str() + "': node '" +
                             action.node.str() + "' is not deployed"};
          }
          break;
        case adl::RuleOp::kReplace:
          // A replacement needs a fresh instance name; precompute one here
          // so firing never builds a string.
          bound.name = action.name.empty()
                           ? util::Symbol(action.instance.str() + "_new")
                           : action.name;
          break;
        case adl::RuleOp::kMigrate:
          bound.node = app.network().node_id(action.node.str());
          if (!bound.node.valid()) {
            return Error{ErrorCode::kNotFound,
                         "rule '" + rule.name.str() + "': node '" +
                             action.node.str() + "' is not deployed"};
          }
          break;
        case adl::RuleOp::kRebind:
          bound.connector = app.connector_id(action.connector.str());
          if (!bound.connector.valid()) {
            return Error{ErrorCode::kNotFound,
                         "rule '" + rule.name.str() + "': connector '" +
                             action.connector.str() + "' is not deployed"};
          }
          break;
        case adl::RuleOp::kReroute:
          // The replica may be created by an earlier action of this rule
          // (scale-out: add w2; reroute w to w2) — leave it symbolic then
          // and resolve through the txn's scratch table at fire time.
          bound.replica_name = action.replica;
          bound.replica = app.component_id(action.replica.str());
          break;
        case adl::RuleOp::kRemove:
          break;
      }
      if (action.op != adl::RuleOp::kAdd) {
        // Bind the target now when it is part of the declared deployment;
        // targets created by earlier actions of the same rule stay symbolic
        // and resolve through the txn's firing-local scratch table.
        bound.instance = app.component_id(action.instance.str());
      }
      rule.actions.push_back(bound);
    }
    set->rules_.push_back(std::move(rule));
  }
  obs::Registry& reg = obs::Registry::global();
  set->obs_fired_ = &reg.counter("rules.fired");
  set->obs_failed_ = &reg.counter("rules.failed");
  set->obs_suppressed_ = &reg.counter("rules.suppressed");
  return set;
}

double RuleSet::sample(const BoundRule& rule, SimTime now) const {
  switch (rule.source) {
    case adl::MetricSource::kQueueDepth:
      return static_cast<double>(app_.queue_depth(rule.metric_connector));
    case adl::MetricSource::kNodeBacklog:
      return static_cast<double>(
          app_.network().node(rule.metric_node).backlog(now));
    case adl::MetricSource::kFaultActive:
      return static_cast<double>(injector_->active_faults());
  }
  return 0.0;
}

bool RuleSet::condition_holds(const BoundRule& rule, SimTime now) const {
  return compare(rule.compare, sample(rule, now), rule.threshold);
}

void RuleSet::evaluate(SimTime now) {
  ++stats_.evaluations;
  for (std::size_t i = 0; i < rules_.size(); ++i) {
    BoundRule& rule = rules_[i];
    if (rule.is_event) continue;
    if (!condition_holds(rule, now)) {
      rule.streak = 0;
      continue;
    }
    if (rule.streak < rule.sustain_ticks) ++rule.streak;
    if (rule.streak < rule.sustain_ticks) continue;
    if (rule.inflight ||
        (rule.ever_fired && now - rule.last_fired < rule.cooldown)) {
      ++stats_.suppressed;
      obs_suppressed_->inc();
      continue;
    }
    rule.streak = 0;
    fire(i, now);
  }
}

void RuleSet::fire_event_rule(std::size_t index, SimTime now) {
  if (index >= event_rules_.size()) return;
  const std::size_t rule_index = event_rules_[index].second;
  BoundRule& rule = rules_[rule_index];
  if (rule.inflight ||
      (rule.ever_fired && now - rule.last_fired < rule.cooldown)) {
    ++stats_.suppressed;
    obs_suppressed_->inc();
    return;
  }
  fire(rule_index, now);
}

void RuleSet::rebind_instance(ComponentId from, ComponentId to) {
  if (!from.valid() || !to.valid() || from == to) return;
  for (BoundRule& rule : rules_) {
    for (BoundAction& action : rule.actions) {
      if (action.instance == from) action.instance = to;
      if (action.replica == from) action.replica = to;
    }
  }
}

void RuleSet::fire(std::size_t rule_index, SimTime now) {
  BoundRule& rule = rules_[rule_index];
  ++stats_.fired;
  obs_fired_->inc();
  rule.ever_fired = true;
  rule.last_fired = now;
  rule.inflight = true;

  // Firing-time allocation is fine — a reconfiguration is in progress.
  Txn::Options options;
  options.deadline = rule.deadline;
  options.injector = injector_;
  options.atomic = policy_.transactional;
  auto txn = Txn::create(app_, engine_, rule.name.str(), options);
  for (const BoundAction& action : rule.actions) {
    TxnAction step;
    step.op = to_plan_op(action.op);
    step.instance = action.instance;
    step.instance_name = action.instance_name;
    step.replica = action.replica;
    step.replica_name = action.replica_name;
    step.node = action.node;
    step.connector = action.connector;
    step.type = action.type;
    step.name = action.name;
    step.port = action.port;
    txn->enqueue(step);
  }

  // The txn outlives anything: its protocol callbacks keep it alive on the
  // event loop, and the RuleSet may be torn down (or rules_ reallocated)
  // while a protocol is still in flight.  Hence a weak_ptr plus a stable
  // rule index — never a BoundRule pointer.
  std::weak_ptr<RuleSet> weak = weak_from_this();
  txn->run([weak, rule_index](const ReconfigReport& report) {
    if (auto self = weak.lock()) self->on_firing_done(rule_index, report);
  });
}

void RuleSet::on_firing_done(std::size_t rule_index,
                             const ReconfigReport& report) {
  BoundRule& rule = rules_[rule_index];
  rule.inflight = false;

  std::uint64_t failed_steps = 0;
  for (const StepOutcome& step : report.steps) {
    if (!step.attempted) continue;
    ++stats_.actions;
    if (!step.status.ok()) ++failed_steps;
  }
  // A deadline abort can roll back a firing whose every attempted step
  // succeeded; make sure that still counts as a failed firing.
  if (failed_steps == 0 && !report.ok()) failed_steps = 1;
  if (failed_steps > 0) {
    stats_.failed += failed_steps;
    obs_failed_->inc(failed_steps);
  }

  if (report.verdict == TxnVerdict::kCommitted) {
    ++stats_.committed;
    // Mirror committed instance swaps into the pre-bound action tables so
    // later firings target the live implementation.
    for (const StepOutcome& step : report.steps) {
      if (step.swapped_from.valid() && step.swapped_to.valid()) {
        rebind_instance(step.swapped_from, step.swapped_to);
      }
    }
  } else if (report.verdict == TxnVerdict::kRolledBack) {
    ++stats_.rolled_back;
  } else if (report.ok()) {
    // Sequencer mode (non-transactional) with every step applied: still
    // mirror the swaps.
    for (const StepOutcome& step : report.steps) {
      if (step.status.ok() && step.swapped_from.valid() &&
          step.swapped_to.valid()) {
        rebind_instance(step.swapped_from, step.swapped_to);
      }
    }
  }

  if (firing_observer_) firing_observer_(rule.name, report);
}

}  // namespace aars::reconfig
