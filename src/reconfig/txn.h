// Transactional enactment of multi-step reconfiguration plans.
//
// The paper's global-consistency requirement (§1) demands that a failed
// reconfiguration "roll the application back to the previous configuration".
// Each engine protocol already honours that per *operation*; a Txn extends
// the guarantee to a whole plan — the actions of one `when … reconfigure`
// firing, or an API-submitted sequence:
//
//   * steps run strictly in order, stop-on-first-failure;
//   * every applied step pushes an inverse record onto an undo journal
//     (destroy an added instance, resurrect a removed one from its
//     Component::snapshot(), re-point a rebinding, migrate back, swap a
//     replacement back in, un-reroute);
//   * on a step failure — or when the whole-firing deadline expires between
//     steps — the journal is replayed in reverse order and the ReconfigReport
//     carries a kRolledBack verdict plus per-step outcomes;
//   * a FaultInjector's `fail-step k of n` windows are consulted before each
//     step, so fault scenarios can target the reconfiguration path itself.
//
// Invertibility is graded (see DESIGN.md "Transactional enactment"):
// add/rebind/migrate are strongly invertible; replace/reroute/redeploy are
// invertible up to messages the forward protocol already replayed; remove is
// only weakly invertible — the forward protocol drops held traffic, and the
// resurrected instance restarts from the snapshot taken at the step
// boundary.  The compile-time screen (analysis::make_compile_screen) rejects
// rules that put a `remove` before the end of a deadline-guarded plan for
// exactly this reason.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "analysis/plan.h"
#include "reconfig/engine.h"
#include "util/symbol.h"

namespace aars::fault {
class FaultInjector;
}

namespace aars::reconfig {

/// One step of a transactional plan. Targets may be pre-bound ids (RuleSet
/// install-time binding) or symbolic names resolved at execution time —
/// against the application, or against instances created by an earlier step
/// of the same txn.
struct TxnAction {
  analysis::PlanOp op = analysis::PlanOp::kAdd;
  ComponentId instance;        // target of every op but kAdd (may be invalid)
  util::Symbol instance_name;  // symbolic fallback for `instance`
  ComponentId replica;         // kReroute
  util::Symbol replica_name;   // symbolic fallback for `replica`
  NodeId node;                 // kAdd / kMigrate / kRedeploy destination
  util::Symbol node_name;      // symbolic fallback for `node`
  ConnectorId connector;       // kRebind
  util::Symbol type;           // kAdd / kReplace component type
  util::Symbol name;           // kAdd: new instance; kReplace: new name
  util::Symbol port;           // kRebind
};

/// Sequences one plan's steps through the reconfiguration engine with an
/// undo journal and reverse-order rollback. Create with create(), enqueue
/// steps, then run() once; the Txn keeps itself alive (shared_from_this in
/// every protocol callback) until the final report is delivered.
class Txn : public std::enable_shared_from_this<Txn> {
 public:
  struct Options {
    /// Whole-plan budget, measured from run(). 0 = no deadline. Checked
    /// between steps: an in-flight engine protocol is never cancelled, but
    /// once it completes past the deadline the txn aborts and rolls back.
    Duration deadline = 0;
    /// Consulted before each step for `fail-step k of n` windows; may be
    /// null (no injected step faults).
    fault::FaultInjector* injector = nullptr;
    /// Transactional semantics: stop on the first failed step and roll the
    /// journal back. When false the txn degrades to a sequencer — failures
    /// are recorded, later steps still run, nothing is undone (the legacy
    /// fire-and-forget behaviour, minus the concurrency).
    bool atomic = true;
  };

  static std::shared_ptr<Txn> create(Application& app,
                                     ReconfigurationEngine& engine,
                                     std::string label, Options options);
  static std::shared_ptr<Txn> create(Application& app,
                                     ReconfigurationEngine& engine,
                                     std::string label);

  // --- plan construction (before run()) -----------------------------------
  void enqueue(TxnAction action);
  /// String-keyed conveniences for API-submitted plans; names resolve at
  /// execution time, so steps may reference instances created earlier in
  /// the same txn.
  Txn& add_component(const std::string& type, const std::string& name,
                     const std::string& node);
  Txn& remove_component(const std::string& instance);
  Txn& replace_component(const std::string& instance, const std::string& type,
                         const std::string& new_name = {});
  Txn& migrate_component(const std::string& instance, const std::string& node);
  Txn& rebind(const std::string& instance, const std::string& port,
              const std::string& connector);
  Txn& reroute(const std::string& instance, const std::string& replica);

  /// Runs the plan. `done` receives the aggregated report: kCommitted with
  /// every step ok, or kRolledBack with the failing step's status and the
  /// rollback accounting (Options::atomic). Must be called at most once.
  void run(Done done);

  bool started() const { return started_; }
  bool finished() const { return finished_; }
  std::size_t size() const { return actions_.size(); }
  const std::string& label() const { return label_; }
  /// In-flight view; reads "protocol did not complete" until the txn
  /// finishes (the unfinished-status guarantee of ReconfigReport).
  const ReconfigReport& report() const { return report_; }

 private:
  /// Everything needed to re-create a destroyed instance: identity,
  /// placement, the state snapshot taken at the step boundary, the
  /// connectors it served and its caller-side port bindings.
  struct Resurrect {
    std::string type;
    std::string name;
    NodeId node;
    component::Snapshot snapshot;
    std::vector<ConnectorId> provided;
    std::vector<std::pair<std::string, ConnectorId>> bindings;
  };

  /// Inverse of one applied step, captured before the step ran.
  struct UndoRecord {
    analysis::PlanOp op = analysis::PlanOp::kAdd;
    ComponentId created;   // kAdd: the instance; kReplace/kRedeploy: the new
    ComponentId target;    // the step's (old) target id
    NodeId prev_node;      // kMigrate: where it lived
    ConnectorId prev_connector;  // kRebind (invalid = port was unbound)
    std::string port;            // kRebind
    std::optional<Resurrect> resurrect;  // remove/replace/reroute/redeploy
    ComponentId replica;                 // kReroute
    /// kReroute: connectors the replica already served before the step (it
    /// must stay a provider there on undo) and its own prior bindings.
    std::vector<ConnectorId> replica_already_in;
    std::vector<std::pair<std::string, ConnectorId>> replica_bindings;
  };

  Txn(Application& app, ReconfigurationEngine& engine, std::string label,
      Options options);

  void step(std::size_t index);
  void on_step_done(std::size_t index, const ReconfigReport& sub);
  /// Marks step `index` failed with `why`; aborts (atomic) or advances.
  void fail_step(std::size_t index, Status why);
  void commit();
  void abort(std::size_t failed_index, Status why);
  void rollback_next();
  void apply_undo(const UndoRecord& record, std::function<void()> next);
  /// Destroys `id` once traffic towards it drained (bounded by the engine's
  /// quiescence timeout), then continues the rollback walk.
  void destroy_when_drained(ComponentId id, std::function<void()> next);
  void finish();

  ComponentId resolve(ComponentId bound, util::Symbol name) const;
  NodeId resolve_node(NodeId bound, util::Symbol name) const;
  /// Follows the rollback remap chain: ids recorded in the journal may have
  /// been re-created (with fresh ids) by later undo records.
  ComponentId live(ComponentId id) const;
  /// Captures the Resurrect record for `id` (it still exists here).
  Resurrect capture_resurrect(ComponentId id) const;
  std::vector<std::pair<std::string, ConnectorId>> capture_bindings(
      ComponentId id) const;

  Application& app_;
  ReconfigurationEngine& engine_;
  std::string label_;
  Options options_;
  std::vector<TxnAction> actions_;
  std::vector<UndoRecord> journal_;
  /// Inverse of the step currently in flight; journaled once the step's
  /// protocol reports success, discarded if it fails.
  std::optional<UndoRecord> pending_undo_;
  /// Firing-local name -> id for instances created by earlier steps.
  std::vector<std::pair<util::Symbol, ComponentId>> scratch_;
  /// Rollback-time id remap (old id -> resurrected id).
  std::vector<std::pair<ComponentId, ComponentId>> remap_;
  ReconfigReport report_;
  Done done_;
  SimTime deadline_at_ = 0;  // 0 = none
  std::size_t rollback_cursor_ = 0;
  Status abort_status_ = Status::success();
  bool started_ = false;
  bool finished_ = false;
};

}  // namespace aars::reconfig
