// Interface-modification adapters.
//
// The paper's "interface modification" change class: "the signatures of the
// provided services are modified and extended while keeping the compliancy
// with previous versions" (§1).  When a provider is upgraded to a newer
// interface, an InterfaceAdapter attached to the connector translates
// old-style calls: renamed operations are mapped and newly added optional
// parameters receive defaults, so existing callers keep working unchanged.
#pragma once

#include <map>
#include <string>

#include "connector/connector.h"
#include "util/value.h"

namespace aars::reconfig {

/// Declarative description of an interface translation.
struct AdapterSpec {
  std::string name = "interface_adapter";
  /// old operation name -> new operation name
  std::map<std::string, std::string> renames;
  /// per (new) operation: defaults injected for missing parameters
  std::map<std::string, util::Value> defaults;
};

/// Connector interceptor applying an AdapterSpec on the request path.
class InterfaceAdapter final : public connector::Interceptor {
 public:
  explicit InterfaceAdapter(AdapterSpec spec);

  Verdict before(component::Message& request,
                 util::Result<util::Value>* reply_out) override;
  void after(const component::Message& request,
             util::Result<util::Value>& reply) override;
  std::string name() const override { return spec_.name; }

  std::uint64_t translated() const { return translated_; }

 private:
  AdapterSpec spec_;
  std::uint64_t translated_ = 0;
};

}  // namespace aars::reconfig
