#include "reconfig/cross_shard.h"

#include <map>
#include <memory>
#include <utility>
#include <vector>

#include "component/message.h"
#include "obs/metrics.h"

namespace aars::reconfig {

using component::MessageKind;
using connector::Connector;
using util::Error;
using util::ErrorCode;

namespace {

/// A held event message detached from its source-shard channel, ready for
/// re-delivery once routes are rebound.
struct HeldEvent {
  util::Symbol operation;
  Value payload;
  Value headers;
  std::string connector_name;
};

struct MigrationState {
  sim::ShardSet* shards = nullptr;
  runtime::ShardRouter* router = nullptr;
  CrossShardMigrator::Shard source;
  CrossShardMigrator::Shard target;
  CrossShardMigrator::Request request;
  Done done;

  enum class Phase { kScreen, kDrain } phase = Phase::kScreen;
  ComponentId component;
  SimTime drain_deadline = 0;
  ReconfigReport report;

  void trace(SimTime now, const std::string& detail) {
    obs::Registry::global().trace(now, obs::TraceKind::kReconfig,
                                  request.instance, detail);
  }

  bool fail(SimTime now, Error error) {
    report.status = std::move(error);
    report.finished_at = now;
    trace(now, "migrate_across failed: " + report.error_message());
    if (done) done(report);
    return false;  // unregister the barrier action
  }

  bool screen(SimTime now) {
    report.op = "migrate_across";
    report.started_at = now;
    component = source.app->component_id(request.instance);
    if (source.app->find_component(component) == nullptr) {
      return fail(now, Error{ErrorCode::kNotFound,
                             "no such instance on source shard: " +
                                 request.instance});
    }
    if (target.app->network().find_node(request.target_host) == nullptr) {
      return fail(now, Error{ErrorCode::kNotFound,
                             "no such host on target shard: " +
                                 request.target_host});
    }
    // Screen both sides under their own engine's verification policy: the
    // instance departs the source architecture and joins the target's.
    analysis::PlanStep remove;
    remove.op = analysis::PlanOp::kRemove;
    remove.instance = request.instance;
    if (auto s = source.engine->screen_step(remove, "migrate_across");
        !s.ok()) {
      return fail(now, s.error());
    }
    analysis::PlanStep add;
    add.op = analysis::PlanOp::kAdd;
    add.instance = request.instance;
    add.type = source.app->find_component(component)->type_name();
    add.node = request.target_host;
    if (auto s = target.engine->screen_step(add, "migrate_across"); !s.ok()) {
      return fail(now, s.error());
    }
    if (auto s = source.app->block_channels_to(component); !s.ok()) {
      return fail(now, s.error());
    }
    drain_deadline = now + request.drain_timeout;
    phase = Phase::kDrain;
    trace(now, "migrate_across: blocked, draining");
    return true;
  }

  bool drain(SimTime now) {
    if (source.app->in_flight_to(component) > 0) {
      if (now < drain_deadline) return true;  // keep waiting next barrier
      (void)source.app->unblock_channels_to(component);
      return fail(now, Error{ErrorCode::kTimeout,
                             "drain did not complete before the deadline"});
    }
    return transfer(now);
  }

  bool transfer(SimTime now) {
    // 1. Snapshot on the source; deep-detach every Value crossing the
    //    shard boundary (COW buffers must not be shared across threads).
    auto snapshot = source.app->snapshot_component(component);
    if (!snapshot.ok()) return fail(now, snapshot.error());
    component::Snapshot snap = std::move(snapshot).value();
    snap.attributes.deep_detach();
    snap.state.deep_detach();

    // 2. Instantiate + restore the replacement on the target shard.
    const util::NodeId dest =
        target.app->network().node_id(request.target_host);
    auto created = target.app->instantiate(snap.type_name, request.instance,
                                           dest, snap.attributes);
    if (!created.ok()) {
      (void)source.app->unblock_channels_to(component);
      return fail(now, created.error());
    }
    const ComponentId new_id = created.value();
    report.new_component = new_id;
    if (auto s = target.app->restore_component(new_id, snap); !s.ok()) {
      (void)source.app->unblock_channels_to(component);
      return fail(now, s.error());
    }

    // 3. Detach held traffic before any channel is torn down.  Events can
    //    be re-delivered once routes are rebound; requests cannot — their
    //    completion hooks are rooted in the source shard's call graph — so
    //    they are rejected (the caller may retry through the new route).
    const util::NodeId source_node = source.app->placement(component);
    std::vector<HeldEvent> events;
    for (runtime::Channel* chan : source.app->channels_to(component)) {
      const Connector* conn = source.app->find_connector(chan->connector());
      while (auto held = chan->take_held()) {
        ++report.held_messages;
        component::Message& m = held->message;
        if (m.kind == MessageKind::kEvent) {
          HeldEvent ev{m.operation, std::move(m.payload),
                       std::move(m.headers), conn->name()};
          ev.payload.deep_detach();
          ev.headers.deep_detach();
          events.push_back(std::move(ev));
        } else if (held->reject) {
          held->reject(std::move(held->message),
                       Error{ErrorCode::kUnavailable,
                             "provider migrated across shards"});
        }
      }
    }

    // 4. Re-home connectors.  A connector whose only provider departs
    //    moves with it (same spec, fresh instance on the target app;
    //    interceptor chains do not migrate).  One with surviving providers
    //    stays on the source shard and merely drops the migrated provider.
    std::map<std::string, ConnectorId> moved;
    for (ConnectorId cid : source.app->connector_ids()) {
      Connector* conn = source.app->find_connector(cid);
      if (conn == nullptr || !conn->has_provider(component)) continue;
      if (conn->providers().size() > 1) {
        (void)source.app->remove_provider(cid, component);
        continue;
      }
      connector::ConnectorSpec spec = conn->spec();
      auto new_cid = target.app->create_connector(spec);
      if (!new_cid.ok()) return fail(now, new_cid.error());
      (void)target.app->add_provider(new_cid.value(), new_id);
      target.app->find_connector(new_cid.value())
          ->set_home_shard(target.index);
      moved.emplace(spec.name, new_cid.value());
      (void)source.app->remove_connector(cid);
      if (router->connector_shard(spec.name).has_value()) {
        router->rebind_connector(spec.name, target.index);
      }
    }

    // 5. Retire the source-side instance and flip the routing directory.
    if (auto s = source.app->destroy(component); !s.ok()) {
      return fail(now, s.error());
    }
    if (router->component_shard(request.instance).has_value()) {
      router->rebind_component(request.instance, target.index);
    }

    // 6. Re-deliver the held events through the rebound routes: on the
    //    target app when the connector moved, on the source app (whose
    //    routing now picks a surviving provider) when it stayed.
    for (HeldEvent& ev : events) {
      if (auto it = moved.find(ev.connector_name); it != moved.end()) {
        if (target.app->send_event(it->second, ev.operation, ev.payload,
                                   dest, ev.headers)
                .ok()) {
          ++report.replayed_messages;
        }
      } else {
        const ConnectorId cid =
            source.app->connector_id(ev.connector_name);
        if (source.app->find_connector(cid) != nullptr &&
            source.app
                ->send_event(cid, ev.operation, ev.payload, source_node,
                             ev.headers)
                .ok()) {
          ++report.replayed_messages;
        }
      }
    }

    report.status = util::Status::success();
    report.finished_at = now;
    trace(now, "migrate_across: done");
    if (done) done(report);
    return false;  // protocol complete; unregister
  }

  bool step(SimTime now) {
    switch (phase) {
      case Phase::kScreen: return screen(now);
      case Phase::kDrain: return drain(now);
    }
    return false;
  }
};

}  // namespace

void CrossShardMigrator::start(sim::ShardSet& shards,
                               runtime::ShardRouter& router, Shard source,
                               Shard target, Request request, Done done) {
  util::require(source.app != nullptr && source.engine != nullptr &&
                    target.app != nullptr && target.engine != nullptr,
                "migration endpoints must be fully specified");
  util::require(source.index != target.index,
                "cross-shard migration needs distinct shards");
  auto state = std::make_shared<MigrationState>();
  state->shards = &shards;
  state->router = &router;
  state->source = source;
  state->target = target;
  state->request = std::move(request);
  state->done = std::move(done);
  shards.at_barrier([state](SimTime now) { return state->step(now); });
}

}  // namespace aars::reconfig
