// Cross-shard component migration.
//
// Moves a component instance from one shard's runtime stack to another's —
// the sharded analogue of the engine's geographical change.  The protocol
// is a state machine driven by sim::ShardSet barriers (coordinator thread,
// workers parked — the only moments when two shards' worlds may be touched
// together):
//
//   screen    verify the change on both sides through each shard engine's
//             configured plan verifier (kRemove on the source model, kAdd
//             on the target model), honouring off/warn/enforce; then block
//             the source channels so new traffic parks instead of racing
//             the move.
//   drain     wait (over as many windows as needed, up to drain_timeout of
//             simulated time) until nothing is in flight to the instance.
//   transfer  snapshot the component, instantiate + restore it on the
//             target shard (payloads deep-detached — COW values must not
//             share buffers across shard threads), re-home its
//             single-provider connectors, hand held *event* messages over
//             for re-delivery on the target, reject held *requests* (their
//             completion hooks are rooted in the source shard's world and
//             cannot cross; the caller sees kUnavailable and may retry
//             through the rebound route), rebind the ShardRouter, and
//             destroy the source-side instance.
//
// Limitations (by design, documented): connectors with other remaining
// providers stay on the source shard (only the departing provider is
// detached); interceptor chains do not migrate with a connector.
#pragma once

#include <string>

#include "reconfig/engine.h"
#include "runtime/application.h"
#include "runtime/shard_router.h"
#include "sim/shard_set.h"
#include "util/errors.h"
#include "util/time.h"

namespace aars::reconfig {

class CrossShardMigrator {
 public:
  /// One side of the migration: a shard index plus that shard's stack.
  struct Shard {
    std::size_t index = 0;
    runtime::Application* app = nullptr;
    ReconfigurationEngine* engine = nullptr;
  };

  struct Request {
    /// Instance to move (must exist on the source shard).
    std::string instance;
    /// Destination host name in the *target* shard's world.
    std::string target_host;
    /// Simulated-time budget for the drain phase.
    util::Duration drain_timeout = util::seconds(10);
  };

  /// Registers the migration protocol on `shards`' barriers; `done` fires
  /// from the barrier where it completes or fails (report.op is
  /// "migrate_across").  Call from the coordinator thread only.  The
  /// source and target must be distinct shards.
  static void start(sim::ShardSet& shards, runtime::ShardRouter& router,
                    Shard source, Shard target, Request request, Done done);
};

}  // namespace aars::reconfig
