#include "reconfig/adapter.h"

namespace aars::reconfig {

using util::Value;

InterfaceAdapter::InterfaceAdapter(AdapterSpec spec) : spec_(std::move(spec)) {}

connector::Interceptor::Verdict InterfaceAdapter::before(
    component::Message& request, util::Result<Value>* /*reply_out*/) {
  bool touched = false;
  auto rename = spec_.renames.find(request.operation);
  if (rename != spec_.renames.end()) {
    request.operation = rename->second;
    touched = true;
  }
  auto defaults = spec_.defaults.find(request.operation);
  if (defaults != spec_.defaults.end() && defaults->second.is_map()) {
    if (request.payload.is_null()) request.payload = Value{util::ValueMap{}};
    if (request.payload.is_map()) {
      for (const auto& [key, value] : defaults->second.as_map()) {
        if (!request.payload.contains(key)) {
          request.payload[key] = value;
          touched = true;
        }
      }
    }
  }
  if (touched) ++translated_;
  return Verdict::kPass;
}

void InterfaceAdapter::after(const component::Message& /*request*/,
                             util::Result<Value>& /*reply*/) {}

}  // namespace aars::reconfig
