#include "reconfig/baseline.h"

namespace aars::reconfig {

StopRestartReconfigurator::StopRestartReconfigurator(Application& app,
                                                     Options options)
    : app_(app), options_(options) {}

void StopRestartReconfigurator::replace_component(ComponentId old_component,
                                                  const std::string& new_type,
                                                  const std::string& new_name,
                                                  Done done) {
  ReconfigReport report;
  report.started_at = app_.loop().now();
  component::Component* old_comp = app_.find_component(old_component);
  if (old_comp == nullptr) {
    report.status = util::Error{util::ErrorCode::kNotFound, "no such component"};
    report.finished_at = app_.loop().now();
    if (done) done(report);
    return;
  }
  const Value attributes = old_comp->attributes();
  const NodeId node = app_.placement(old_component);

  // Teardown: the component stops serving instantly. No channel blocking,
  // no draining — requests racing the restart fail.
  (void)old_comp->passivate();

  app_.loop().schedule_after(options_.restart_delay, [this, old_component,
                                                      new_type, new_name,
                                                      attributes, node, report,
                                                      done]() mutable {
    Result<ComponentId> created =
        app_.instantiate(new_type, new_name, node, attributes);
    if (!created.ok()) {
      report.status = created.error();
      report.finished_at = app_.loop().now();
      if (done) done(report);
      return;
    }
    const ComponentId new_component = created.value();
    if (Status s = app_.redirect(old_component, new_component); !s.ok()) {
      report.status = s;
      report.finished_at = app_.loop().now();
      if (done) done(report);
      return;
    }
    // Retire the old instance once stragglers addressed to it finish
    // failing; this does not delay the report.
    app_.when_drained(old_component, [this, old_component] {
      (void)app_.destroy(old_component);
    });
    report.new_component = new_component;
    report.status = util::Status::success();
    report.finished_at = app_.loop().now();
    if (done) done(report);
  });
}

}  // namespace aars::reconfig
