// Stop-and-restart baseline.
//
// "Traditionally, reconfiguration takes place during maintenance or when a
// new version of the system is installed" (§1).  This baseline models that
// practice: the old component is torn down immediately — in-flight and
// newly arriving messages are lost — and the replacement starts from a
// clean state after a fixed restart outage.  Experiment E2 compares it
// against the quiescence-based engine.
#pragma once

#include <functional>
#include <string>

#include "reconfig/engine.h"
#include "runtime/application.h"

namespace aars::reconfig {

class StopRestartReconfigurator {
 public:
  struct Options {
    /// Service outage between teardown and the new instance going live.
    Duration restart_delay = util::milliseconds(50);
  };

  StopRestartReconfigurator(Application& app, Options options);
  explicit StopRestartReconfigurator(Application& app)
      : StopRestartReconfigurator(app, Options{}) {}

  /// Replaces `old_component` with a fresh instance of `new_type`.
  /// Messages arriving during the outage are dropped and counted in the
  /// report's held_messages field (they are casualties, not survivors).
  void replace_component(ComponentId old_component,
                         const std::string& new_type,
                         const std::string& new_name, Done done);

 private:
  Application& app_;
  Options options_;
};

}  // namespace aars::reconfig
