// Runtime rule set for ADL-declared `when … reconfigure` rules.
//
// The compiler emits a RuleProgram whose names are interned Symbols;
// install() binds it to a live application exactly once — every instance,
// node and connector name becomes a raw id, every metric source an enum.
// From then on:
//
//   * evaluate(now) — the steady-state path — samples each metric condition
//     through id-indexed lookups (queue depth by ConnectorId, node backlog
//     by NodeId, injector fault count) and advances the sustain/cooldown
//     hysteresis counters.  It performs no string parsing, no hashing and
//     no allocation.
//   * firing walks the rule's pre-bound action table and calls the
//     reconfiguration engine's change-class entrypoints with the
//     pre-resolved ids/Symbols.  Instances created by an earlier action of
//     the same firing resolve through a linear scan of a pre-reserved
//     scratch table (Symbol equality is pointer comparison).
//
// Event-conditioned rules don't poll: meta::Raml subscribes them to its
// FLO/C rule engine and calls fire_event_rule() when the trigger arrives.
#pragma once

#include <memory>
#include <vector>

#include "adl/ir.h"
#include "fault/injector.h"
#include "reconfig/engine.h"

namespace aars::reconfig {

class RuleSet {
 public:
  struct Stats {
    std::uint64_t evaluations = 0;  // evaluate() calls
    std::uint64_t fired = 0;        // rules whose actions were dispatched
    std::uint64_t actions = 0;      // individual engine calls issued
    std::uint64_t failed = 0;       // engine calls that reported failure
    std::uint64_t suppressed = 0;   // firings skipped by cooldown/in-flight
  };

  /// Binds `program` to the live application. Fails (kNotFound) when a rule
  /// references a declared name that does not exist in the deployment —
  /// compile-time sema guarantees this never happens for configurations
  /// deployed through the same compile, so a failure here means the program
  /// and the deployment diverged.
  static util::Result<std::shared_ptr<RuleSet>> install(
      const adl::RuleProgram& program, Application& app,
      ReconfigurationEngine& engine,
      fault::FaultInjector* injector = nullptr);

  /// Samples every metric-conditioned rule and fires those whose condition
  /// has held for its sustain window. Allocation-free while nothing fires.
  void evaluate(SimTime now);

  /// Fires event rule `index` (an index into event_rules()) unless its
  /// cooldown or an in-flight protocol suppresses it.
  void fire_event_rule(std::size_t index, SimTime now);

  /// (event name, index) pairs for Raml to subscribe.
  const std::vector<std::pair<util::Symbol, std::size_t>>& event_rules()
      const {
    return event_rules_;
  }

  std::size_t rule_count() const { return rules_.size(); }
  const Stats& stats() const { return stats_; }

 private:
  struct BoundAction {
    adl::RuleOp op = adl::RuleOp::kRemove;
    ComponentId instance;    // target (all ops but kAdd)
    ComponentId replica;     // kReroute
    NodeId node;             // kAdd / kMigrate
    ConnectorId connector;   // kRebind
    // Names the engine still needs (Symbol -> const std::string& is free).
    util::Symbol instance_name;
    util::Symbol replica_name;  // kReroute
    util::Symbol type;
    util::Symbol name;  // kAdd: new instance; kReplace: replacement name
    util::Symbol port;  // kRebind
  };

  struct BoundRule {
    util::Symbol name;
    // Condition (metric rules only; event rules dispatch via Raml).
    bool is_event = false;
    adl::MetricSource source = adl::MetricSource::kQueueDepth;
    ConnectorId metric_connector;  // kQueueDepth
    NodeId metric_node;            // kNodeBacklog
    adl::AstCompare compare = adl::AstCompare::kGt;
    double threshold = 0.0;
    int sustain_ticks = 1;
    Duration cooldown = 0;
    std::vector<BoundAction> actions;
    // Hysteresis state.
    int streak = 0;
    SimTime last_fired = -1;
    bool ever_fired = false;
    int inflight = 0;  // async protocols still running
  };

  RuleSet(Application& app, ReconfigurationEngine& engine,
          fault::FaultInjector* injector)
      : app_(app), engine_(engine), injector_(injector) {}

  /// Current value of a metric condition. Id-indexed lookups only.
  double sample(const BoundRule& rule, SimTime now) const;
  bool condition_holds(const BoundRule& rule, SimTime now) const;
  void fire(BoundRule& rule, SimTime now);
  /// Resolves a pre-bound id, else `name` against the firing-local scratch
  /// table of instances added earlier in this firing.
  ComponentId resolve(ComponentId bound, util::Symbol name) const;
  /// Rewrites every pre-bound reference to `from` (a replaced/rerouted
  /// instance) to `to`, keeping rules live across implementation swaps.
  void rebind_instance(ComponentId from, ComponentId to);

  Application& app_;
  ReconfigurationEngine& engine_;
  fault::FaultInjector* injector_;
  std::vector<BoundRule> rules_;
  std::vector<std::pair<util::Symbol, std::size_t>> event_rules_;
  /// Firing-local name -> id table for instances created by earlier actions
  /// of the same firing. Reserved at install; cleared (size 0, capacity
  /// kept) per firing.
  std::vector<std::pair<util::Symbol, ComponentId>> scratch_;
  Stats stats_;
};

}  // namespace aars::reconfig
