// Runtime rule set for ADL-declared `when … reconfigure` rules.
//
// The compiler emits a RuleProgram whose names are interned Symbols;
// install() binds it to a live application exactly once — every instance,
// node and connector name becomes a raw id, every metric source an enum.
// From then on:
//
//   * evaluate(now) — the steady-state path — samples each metric condition
//     through id-indexed lookups (queue depth by ConnectorId, node backlog
//     by NodeId, injector fault count) and advances the sustain/cooldown
//     hysteresis counters.  It performs no string parsing, no hashing and
//     no allocation.
//   * firing enacts the rule's pre-bound action table as one reconfig::Txn:
//     steps run in order, each journals its inverse, and a failed step (or
//     an expired whole-firing deadline) rolls the applied prefix back in
//     reverse, so a half-fired rule never leaves a partial topology behind
//     (TxnPolicy::transactional can downgrade this to the legacy
//     sequence-and-record behaviour).
//
// Event-conditioned rules don't poll: meta::Raml subscribes them to its
// FLO/C rule engine and calls fire_event_rule() when the trigger arrives.
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "adl/ir.h"
#include "analysis/explorer.h"
#include "fault/injector.h"
#include "reconfig/engine.h"
#include "reconfig/txn.h"

namespace aars::reconfig {

/// How RuleSet enacts a firing.
struct TxnPolicy {
  /// Atomic enactment: stop on the first failed step and roll the journal
  /// back.  false = legacy sequencer (failures recorded, nothing undone).
  bool transactional = true;
  /// Whole-firing deadline applied to rules that don't declare their own
  /// `deadline` property.  0 = unbounded.
  Duration default_deadline = 0;
};

/// Install-time configuration-space exploration gate: before a rule program
/// binds to the live application, the analysis explorer enumerates the
/// configurations its rules can reach from the current deployment and
/// checks the per-state verifier plus any ADL-declared path properties.
/// kEnforce rejects a program whose exploration finds an error; kWarn
/// counts findings (obs "rules.explore_findings") and proceeds.
struct ExploreGate {
  analysis::VerifyMode mode = analysis::VerifyMode::kOff;
  analysis::ExplorerOptions options;
};

class RuleSet : public std::enable_shared_from_this<RuleSet> {
 public:
  struct Stats {
    std::uint64_t evaluations = 0;  // evaluate() calls
    std::uint64_t fired = 0;        // rules whose actions were dispatched
    std::uint64_t actions = 0;      // individual plan steps attempted
    std::uint64_t failed = 0;       // steps (or whole firings) that failed
    std::uint64_t suppressed = 0;   // firings skipped by cooldown/in-flight
    std::uint64_t committed = 0;    // firings whose txn committed
    std::uint64_t rolled_back = 0;  // firings whose txn rolled back
  };

  /// Called after every firing settles (txn committed or rolled back), with
  /// the rule's name and the aggregated report.  Benches and tests hook
  /// this to verify the post-firing configuration.
  using FiringObserver =
      std::function<void(util::Symbol rule, const ReconfigReport& report)>;

  /// Binds `program` to the live application. Fails (kNotFound) when a rule
  /// references a declared name that does not exist in the deployment —
  /// compile-time sema guarantees this never happens for configurations
  /// deployed through the same compile, so a failure here means the program
  /// and the deployment diverged.
  static util::Result<std::shared_ptr<RuleSet>> install(
      const adl::RuleProgram& program, Application& app,
      ReconfigurationEngine& engine,
      fault::FaultInjector* injector = nullptr, TxnPolicy policy = {},
      const ExploreGate& gate = {});

  /// Samples every metric-conditioned rule and fires those whose condition
  /// has held for its sustain window. Allocation-free while nothing fires.
  void evaluate(SimTime now);

  /// Fires event rule `index` (an index into event_rules()) unless its
  /// cooldown or an in-flight firing suppresses it.
  void fire_event_rule(std::size_t index, SimTime now);

  /// (event name, index) pairs for Raml to subscribe.
  const std::vector<std::pair<util::Symbol, std::size_t>>& event_rules()
      const {
    return event_rules_;
  }

  void set_firing_observer(FiringObserver observer) {
    firing_observer_ = std::move(observer);
  }

  std::size_t rule_count() const { return rules_.size(); }
  const Stats& stats() const { return stats_; }
  const TxnPolicy& policy() const { return policy_; }

 private:
  struct BoundAction {
    adl::RuleOp op = adl::RuleOp::kRemove;
    ComponentId instance;    // target (all ops but kAdd)
    ComponentId replica;     // kReroute
    NodeId node;             // kAdd / kMigrate
    ConnectorId connector;   // kRebind
    // Names the engine still needs (Symbol -> const std::string& is free).
    util::Symbol instance_name;
    util::Symbol replica_name;  // kReroute
    util::Symbol type;
    util::Symbol name;  // kAdd: new instance; kReplace: replacement name
    util::Symbol port;  // kRebind
  };

  struct BoundRule {
    util::Symbol name;
    // Condition (metric rules only; event rules dispatch via Raml).
    bool is_event = false;
    adl::MetricSource source = adl::MetricSource::kQueueDepth;
    ConnectorId metric_connector;  // kQueueDepth
    NodeId metric_node;            // kNodeBacklog
    adl::AstCompare compare = adl::AstCompare::kGt;
    double threshold = 0.0;
    int sustain_ticks = 1;
    Duration cooldown = 0;
    /// Whole-firing txn deadline (rule `deadline` property, else the
    /// policy default). 0 = unbounded.
    Duration deadline = 0;
    std::vector<BoundAction> actions;
    // Hysteresis state.
    int streak = 0;
    SimTime last_fired = -1;
    bool ever_fired = false;
    bool inflight = false;  // a firing's txn is still running
  };

  RuleSet(Application& app, ReconfigurationEngine& engine,
          fault::FaultInjector* injector, TxnPolicy policy)
      : app_(app), engine_(engine), injector_(injector), policy_(policy) {}

  /// Current value of a metric condition. Id-indexed lookups only.
  double sample(const BoundRule& rule, SimTime now) const;
  bool condition_holds(const BoundRule& rule, SimTime now) const;
  /// Enacts rule `rule_index` as one Txn.  Takes the index, not a
  /// reference: the completion callback must survive rules_ reallocation
  /// and RuleSet teardown (it holds a weak_ptr + this stable index).
  void fire(std::size_t rule_index, SimTime now);
  /// Settles a firing: per-step accounting, action-table rebinds for
  /// committed swaps, observer notification.
  void on_firing_done(std::size_t rule_index, const ReconfigReport& report);
  /// Rewrites every pre-bound reference to `from` (a replaced/rerouted
  /// instance) to `to`, keeping rules live across implementation swaps.
  void rebind_instance(ComponentId from, ComponentId to);

  Application& app_;
  ReconfigurationEngine& engine_;
  fault::FaultInjector* injector_;
  TxnPolicy policy_;
  std::vector<BoundRule> rules_;
  std::vector<std::pair<util::Symbol, std::size_t>> event_rules_;
  Stats stats_;
  FiringObserver firing_observer_;
  /// Cached obs instruments (resolved once at install; the suppressed
  /// counter sits on the steady-state evaluate path, which must not hash
  /// metric names per tick).
  obs::Counter* obs_fired_ = nullptr;
  obs::Counter* obs_failed_ = nullptr;
  obs::Counter* obs_suppressed_ = nullptr;
};

}  // namespace aars::reconfig
