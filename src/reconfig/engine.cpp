#include "reconfig/engine.h"

#include <cctype>

#include "util/logging.h"

namespace aars::reconfig {

using component::Snapshot;
using util::Error;
using util::ErrorCode;

namespace {

/// Strips a previously generated "_r<n>" suffix so repeated repairs of the
/// same component never compound names ("a_r1_r2_r3"...) — generated names
/// feed metric labels and trace events, where unbounded suffix chains would
/// explode cardinality over long chaos runs.
std::string base_instance_name(const std::string& name) {
  const auto pos = name.rfind("_r");
  if (pos == std::string::npos || pos + 2 >= name.size()) return name;
  for (std::size_t i = pos + 2; i < name.size(); ++i) {
    if (std::isdigit(static_cast<unsigned char>(name[i])) == 0) return name;
  }
  return name.substr(0, pos);
}

}  // namespace

ReconfigurationEngine::ReconfigurationEngine(Application& app)
    : ReconfigurationEngine(app, Options{}) {}

ReconfigurationEngine::ReconfigurationEngine(Application& app, Options options)
    : app_(app), options_(options) {}

std::string ReconfigurationEngine::node_name(NodeId node) {
  for (NodeId id : app_.network().node_ids()) {
    if (id == node) return app_.network().node(id).name();
  }
  return {};
}

Status ReconfigurationEngine::verify_step(const analysis::PlanStep& step,
                                          const std::string& op) {
  if (options_.verify_mode == analysis::VerifyMode::kOff) {
    return Status::success();
  }
  analysis::VerifierOptions vopts;
  vopts.max_states = options_.verify_max_states;
  const analysis::ArchitectureModel model = analysis::model_from(app_);
  const analysis::PlanReview review = analysis::verify_plan(model, {step}, vopts);
  if (review.ok()) return Status::success();
  obs::Registry& reg = obs::Registry::global();
  const std::string verdict = review.report.first_error();
  if (options_.verify_mode == analysis::VerifyMode::kWarn) {
    reg.counter("verify.warned", {{"op", op}}).inc();
    reg.trace(app_.loop().now(), obs::TraceKind::kReconfig, op,
              "verify-warn: " + verdict);
    AARS_WARN << "plan verification (" << op << "): " << verdict
              << " (mode=warn, proceeding)";
    return Status::success();
  }
  ++verify_rejected_;
  reg.counter("verify.rejected", {{"op", op}}).inc();
  reg.trace(app_.loop().now(), obs::TraceKind::kReconfig, op,
            "verify-reject: " + verdict);
  return Error{ErrorCode::kVerificationFailed,
               "plan verification failed: " + verdict};
}

bool ReconfigurationEngine::redeploy_would_verify(ComponentId component,
                                                  NodeId destination) {
  if (options_.verify_mode == analysis::VerifyMode::kOff) return true;
  const component::Component* comp = app_.find_component(component);
  if (comp == nullptr) return false;
  analysis::PlanStep step;
  step.op = analysis::PlanOp::kRedeploy;
  step.instance = comp->instance_name();
  step.node = node_name(destination);
  analysis::VerifierOptions vopts;
  vopts.max_states = options_.verify_max_states;
  return analysis::verify_plan(analysis::model_from(app_), {step}, vopts).ok();
}

Result<ComponentId> ReconfigurationEngine::add_component(
    const std::string& type, const std::string& name, NodeId node,
    const Value& attributes) {
  analysis::PlanStep step;
  step.op = analysis::PlanOp::kAdd;
  step.instance = name;
  step.type = type;
  step.node = node_name(node);
  if (Status s = verify_step(step, "add"); !s.ok()) return s.error();
  return app_.instantiate(type, name, node, attributes);
}

Status ReconfigurationEngine::rebind(ComponentId caller,
                                     const std::string& port,
                                     ConnectorId new_connector) {
  const component::Component* comp = app_.find_component(caller);
  const connector::Connector* conn = app_.find_connector(new_connector);
  if (comp != nullptr && conn != nullptr) {
    analysis::PlanStep step;
    step.op = analysis::PlanOp::kRebind;
    step.instance = comp->instance_name();
    step.port = port;
    step.connector = conn->name();
    if (Status s = verify_step(step, "rebind"); !s.ok()) return s;
  }
  // bind() validates interface compatibility against the new connector's
  // providers before overwriting the existing binding.
  return app_.bind(caller, port, new_connector);
}

void ReconfigurationEngine::wait_quiescent(ComponentId component,
                                           SimTime deadline,
                                           std::function<void(bool)> next) {
  const component::Component* comp = app_.find_component(component);
  if (comp == nullptr) {
    next(false);
    return;
  }
  if (comp->quiescent()) {
    next(true);
    return;
  }
  if (app_.loop().now() >= deadline) {
    next(false);
    return;
  }
  app_.loop().schedule_after(options_.quiescence_poll,
                             [this, component, deadline, next] {
                               wait_quiescent(component, deadline, next);
                             });
}

void ReconfigurationEngine::record_phase(const std::string& op,
                                         const char* phase, SimTime since) {
  obs::Registry& reg = obs::Registry::global();
  const SimTime now = app_.loop().now();
  reg.histogram("reconfig.phase_us", {{"op", op}, {"phase", phase}})
      .observe(static_cast<double>(now - since));
  reg.trace(now, obs::TraceKind::kReconfig, op, phase);
}

void ReconfigurationEngine::finish(ReconfigReport report, const Done& done) {
  report.finished_at = app_.loop().now();
  if (report.ok()) ++succeeded_;
  obs::Registry& reg = obs::Registry::global();
  reg.histogram("reconfig.duration_us", {{"op", report.op}})
      .observe(static_cast<double>(report.duration()));
  reg.trace(report.finished_at, obs::TraceKind::kReconfig, report.op,
            report.ok() ? "done" : "failed: " + report.error_message());
  if (done) done(report);
}

void ReconfigurationEngine::remove_component(ComponentId component,
                                             Done done) {
  ++started_;
  ReconfigReport report;
  report.op = "remove";
  report.started_at = app_.loop().now();
  if (app_.find_component(component) == nullptr) {
    report.status = Error{ErrorCode::kNotFound, "no such component"};
    finish(std::move(report), done);
    return;
  }
  {
    analysis::PlanStep step;
    step.op = analysis::PlanOp::kRemove;
    step.instance = app_.find_component(component)->instance_name();
    if (Status s = verify_step(step, report.op); !s.ok()) {
      report.status = s;
      finish(std::move(report), done);
      return;
    }
  }
  obs::Registry::global().trace(report.started_at, obs::TraceKind::kReconfig,
                                report.op, "start");
  app_.block_channels_to(component);
  app_.when_drained(component, [this, component, report, done]() mutable {
    record_phase(report.op, "drain", report.started_at);
    const SimTime drained_at = app_.loop().now();
    const SimTime deadline = app_.loop().now() + options_.quiescence_timeout;
    wait_quiescent(component, deadline, [this, component, report, drained_at,
                                         done](bool quiescent) mutable {
      record_phase(report.op, "quiesce", drained_at);
      if (!quiescent) {
        app_.unblock_channels_to(component);
        app_.replay_held(component);
        report.status = Error{ErrorCode::kNotQuiescent,
                            "component did not reach a reconfiguration point"};
        finish(std::move(report), done);
        return;
      }
      // Held messages towards a removed component are rejected explicitly.
      for (runtime::Channel* chan : app_.channels_to(component)) {
        while (auto held = chan->take_held()) {
          chan->record_drop();
          ++report.held_messages;
        }
      }
      if (Status s = app_.destroy(component); !s.ok()) {
        report.status = s;
        finish(std::move(report), done);
        return;
      }
      report.status = Status::success();
      finish(std::move(report), done);
    });
  });
}

void ReconfigurationEngine::replace_component(ComponentId old_component,
                                              const std::string& new_type,
                                              const std::string& new_name,
                                              Done done) {
  ++started_;
  ReconfigReport report;
  report.op = "replace";
  report.started_at = app_.loop().now();
  component::Component* old_comp = app_.find_component(old_component);
  if (old_comp == nullptr) {
    report.status = Error{ErrorCode::kNotFound, "no such component"};
    finish(std::move(report), done);
    return;
  }
  {
    analysis::PlanStep step;
    step.op = analysis::PlanOp::kReplace;
    step.instance = old_comp->instance_name();
    step.type = new_type;
    if (Status s = verify_step(step, report.op); !s.ok()) {
      report.status = s;
      finish(std::move(report), done);
      return;
    }
  }
  obs::Registry::global().trace(report.started_at, obs::TraceKind::kReconfig,
                                report.op, "start");
  const std::uint64_t overflows_before =
      app_.hold_overflows_to(old_component);

  // Step 1: block channels — new traffic is held, in-transit continues.
  app_.block_channels_to(old_component);

  // Step 2: drain in-transit messages.
  app_.when_drained(old_component, [this, old_component, new_type, new_name,
                                    overflows_before, report,
                                    done]() mutable {
    record_phase(report.op, "drain", report.started_at);
    const SimTime drained_at = app_.loop().now();
    const SimTime deadline = app_.loop().now() + options_.quiescence_timeout;
    // Step 3: wait for the reconfiguration point.
    wait_quiescent(old_component, deadline, [this, old_component, new_type,
                                             new_name, overflows_before,
                                             report, drained_at,
                                             done](bool quiescent) mutable {
      record_phase(report.op, "quiesce", drained_at);
      const SimTime quiescent_at = app_.loop().now();
      auto rollback = [this, old_component, &report, &done]() {
        app_.unblock_channels_to(old_component);
        app_.replay_held(old_component);
        finish(std::move(report), done);
      };
      if (!quiescent) {
        report.status = Error{ErrorCode::kNotQuiescent,
                            "component did not reach a reconfiguration point"};
        rollback();
        return;
      }
      if (app_.hold_overflows_to(old_component) > overflows_before) {
        // The hold buffer overflowed while we were quiescing: traffic was
        // already shed, so abort cleanly rather than stretch the outage.
        report.status = Error{ErrorCode::kOverloaded,
                              "hold buffer overflowed during quiescence"};
        rollback();
        return;
      }
      component::Component* old_comp = app_.find_component(old_component);
      if (Status s = old_comp->passivate(); !s.ok()) {
        report.status = s;
        rollback();
        return;
      }
      // Step 4: encode the module context.
      const Snapshot snapshot = old_comp->snapshot();
      // Step 5: create the new module on the same node.
      Result<ComponentId> created =
          app_.instantiate(new_type, new_name, app_.placement(old_component),
                           snapshot.attributes);
      if (!created.ok()) {
        report.status = created.error();
        (void)app_.activate_component(old_component);
        rollback();
        return;
      }
      const ComponentId new_component = created.value();
      // Step 6: strong state transfer.
      if (Status s = app_.restore_component(new_component, snapshot);
          !s.ok()) {
        report.status = s;
        (void)app_.destroy(new_component);
        (void)app_.activate_component(old_component);
        rollback();
        return;
      }
      report.held_messages = app_.held_to(old_component);
      // Step 7: redirect bindings and channels (sequence state carries).
      if (Status s = app_.redirect(old_component, new_component); !s.ok()) {
        report.status = s;
        (void)app_.destroy(new_component);
        (void)app_.activate_component(old_component);
        rollback();
        return;
      }
      // Step 8: reopen and replay held traffic.
      app_.unblock_channels_to(new_component);
      report.replayed_messages = app_.replay_held(new_component);
      record_phase(report.op, "swap_replay", quiescent_at);
      // Step 9: retire the old module.
      if (Status s = app_.destroy(old_component); !s.ok()) {
        AARS_WARN << "replace: old component not removed: "
                  << s.error().message();
      }
      report.new_component = new_component;
      report.status = Status::success();
      finish(std::move(report), done);
    });
  });
}

void ReconfigurationEngine::migrate_component(ComponentId component,
                                              NodeId destination, Done done) {
  ++started_;
  ReconfigReport report;
  report.op = "migrate";
  report.started_at = app_.loop().now();
  component::Component* comp = app_.find_component(component);
  if (comp == nullptr) {
    report.status = Error{ErrorCode::kNotFound, "no such component"};
    finish(std::move(report), done);
    return;
  }
  const NodeId source = app_.placement(component);
  if (source == destination) {
    report.status = Status::success();
    finish(std::move(report), done);
    return;
  }
  {
    analysis::PlanStep step;
    step.op = analysis::PlanOp::kMigrate;
    step.instance = comp->instance_name();
    step.node = node_name(destination);
    if (Status s = verify_step(step, report.op); !s.ok()) {
      report.status = s;
      finish(std::move(report), done);
      return;
    }
  }
  obs::Registry::global().trace(report.started_at, obs::TraceKind::kReconfig,
                                report.op, "start");
  const std::uint64_t overflows_before = app_.hold_overflows_to(component);

  app_.block_channels_to(component);
  app_.when_drained(component, [this, component, source, destination,
                                overflows_before, report, done]() mutable {
    record_phase(report.op, "drain", report.started_at);
    const SimTime drained_at = app_.loop().now();
    const SimTime deadline = app_.loop().now() + options_.quiescence_timeout;
    wait_quiescent(component, deadline, [this, component, source, destination,
                                         overflows_before, report, drained_at,
                                         done](bool quiescent) mutable {
      record_phase(report.op, "quiesce", drained_at);
      if (!quiescent) {
        app_.unblock_channels_to(component);
        app_.replay_held(component);
        report.status = Error{ErrorCode::kNotQuiescent,
                            "component did not reach a reconfiguration point"};
        finish(std::move(report), done);
        return;
      }
      if (app_.hold_overflows_to(component) > overflows_before) {
        app_.unblock_channels_to(component);
        app_.replay_held(component);
        report.status = Error{ErrorCode::kOverloaded,
                              "hold buffer overflowed during quiescence"};
        finish(std::move(report), done);
        return;
      }
      component::Component* comp = app_.find_component(component);
      if (Status s = comp->passivate(); !s.ok()) {
        app_.unblock_channels_to(component);
        app_.replay_held(component);
        report.status = s;
        finish(std::move(report), done);
        return;
      }
      // Charge the state transfer to the network.
      const Snapshot snapshot = comp->snapshot();
      const std::size_t bytes = 256 + snapshot.state.byte_size() +
                                snapshot.attributes.byte_size();
      if (app_.network().route(source, destination).empty()) {
        // Unreachable destination: abort, reactivate in place.
        (void)app_.activate_component(component);
        app_.unblock_channels_to(component);
        app_.replay_held(component);
        report.status = Error{ErrorCode::kUnavailable, "destination unreachable"};
        finish(std::move(report), done);
        return;
      }
      sim::TransferOutcome transfer =
          app_.network().transfer(source, destination, bytes, app_.rng());
      if (!transfer.delivered) {
        // Reliable state transfer: a lost transfer is retransmitted, which
        // shows up as extra delay rather than failure.
        transfer.delay *= 2;
      }
      report.held_messages = app_.held_to(component);
      app_.loop().schedule_after(
          transfer.delay, [this, component, destination, report,
                           done]() mutable {
            if (Status s = app_.migrate(component, destination); !s.ok()) {
              report.status = s;
            } else {
              (void)app_.activate_component(component);
              app_.unblock_channels_to(component);
              report.replayed_messages = app_.replay_held(component);
              report.status = Status::success();
            }
            finish(std::move(report), done);
          });
    });
  });
}

void ReconfigurationEngine::redeploy_component(ComponentId failed,
                                               NodeId destination, Done done) {
  ++started_;
  ReconfigReport report;
  report.op = "redeploy";
  report.started_at = app_.loop().now();
  component::Component* comp = app_.find_component(failed);
  if (comp == nullptr) {
    report.status = Error{ErrorCode::kNotFound, "no such component"};
    finish(std::move(report), done);
    return;
  }
  if (app_.placement(failed) == destination) {
    // Nothing to repair: the component already lives on the target host.
    report.status = Status::success();
    report.new_component = failed;
    finish(std::move(report), done);
    return;
  }
  {
    analysis::PlanStep step;
    step.op = analysis::PlanOp::kRedeploy;
    step.instance = comp->instance_name();
    step.node = node_name(destination);
    if (Status s = verify_step(step, report.op); !s.ok()) {
      report.status = s;
      finish(std::move(report), done);
      return;
    }
  }
  obs::Registry::global().trace(report.started_at, obs::TraceKind::kReconfig,
                                report.op, "start");
  const std::string new_name =
      base_instance_name(comp->instance_name()) + "_r" +
      std::to_string(++redeploys_);
  const std::string type = comp->type_name();

  // Block new traffic; in-flight messages towards the dead host fail on
  // their own (no route), so the drain completes without the host.
  app_.block_channels_to(failed);
  app_.when_drained(failed, [this, failed, destination, type, new_name,
                             report, done]() mutable {
    record_phase(report.op, "drain", report.started_at);
    const SimTime drained_at = app_.loop().now();
    auto rollback = [this, failed, &report, &done]() {
      app_.unblock_channels_to(failed);
      app_.replay_held(failed);
      finish(std::move(report), done);
    };
    component::Component* comp = app_.find_component(failed);
    if (comp == nullptr) {
      report.status = Error{ErrorCode::kNotFound, "component vanished"};
      finish(std::move(report), done);
      return;
    }
    // The failed instance is not consulted again: passivate if possible so
    // the snapshot is clean, but a wedged component cannot veto its own
    // repair — the host it lived on is gone.
    (void)comp->passivate();
    const Snapshot snapshot = comp->snapshot();
    Result<ComponentId> created =
        app_.instantiate(type, new_name, destination, snapshot.attributes);
    if (!created.ok()) {
      report.status = created.error();
      (void)app_.activate_component(failed);
      rollback();
      return;
    }
    const ComponentId replacement = created.value();
    if (Status s = app_.restore_component(replacement, snapshot); !s.ok()) {
      report.status = s;
      (void)app_.destroy(replacement);
      (void)app_.activate_component(failed);
      rollback();
      return;
    }
    report.held_messages = app_.held_to(failed);
    if (Status s = app_.redirect(failed, replacement); !s.ok()) {
      report.status = s;
      (void)app_.destroy(replacement);
      (void)app_.activate_component(failed);
      rollback();
      return;
    }
    app_.unblock_channels_to(replacement);
    report.replayed_messages = app_.replay_held(replacement);
    record_phase(report.op, "redeploy_replay", drained_at);
    if (Status s = app_.destroy(failed); !s.ok()) {
      AARS_WARN << "redeploy: failed component not removed: "
                << s.error().message();
    }
    report.new_component = replacement;
    report.status = Status::success();
    finish(std::move(report), done);
  });
}

void ReconfigurationEngine::reroute_to_replica(ComponentId dead,
                                               ComponentId replica,
                                               Done done) {
  ++started_;
  ReconfigReport report;
  report.op = "reroute";
  report.started_at = app_.loop().now();
  if (app_.find_component(dead) == nullptr) {
    report.status = Error{ErrorCode::kNotFound, "no such component"};
    finish(std::move(report), done);
    return;
  }
  if (app_.find_component(replica) == nullptr) {
    report.status = Error{ErrorCode::kNotFound, "no such replica"};
    finish(std::move(report), done);
    return;
  }
  if (dead == replica) {
    report.status =
        Error{ErrorCode::kInvalidArgument, "replica is the dead component"};
    finish(std::move(report), done);
    return;
  }
  {
    analysis::PlanStep step;
    step.op = analysis::PlanOp::kReroute;
    step.instance = app_.find_component(dead)->instance_name();
    step.replica = app_.find_component(replica)->instance_name();
    if (Status s = verify_step(step, report.op); !s.ok()) {
      report.status = s;
      finish(std::move(report), done);
      return;
    }
  }
  obs::Registry::global().trace(report.started_at, obs::TraceKind::kReconfig,
                                report.op, "start");
  app_.block_channels_to(dead);
  app_.when_drained(dead, [this, dead, replica, report, done]() mutable {
    record_phase(report.op, "drain", report.started_at);
    const SimTime drained_at = app_.loop().now();
    report.held_messages = app_.held_to(dead);
    if (Status s = app_.redirect(dead, replica); !s.ok()) {
      report.status = s;
      app_.unblock_channels_to(dead);
      app_.replay_held(dead);
      finish(std::move(report), done);
      return;
    }
    app_.unblock_channels_to(replica);
    report.replayed_messages = app_.replay_held(replica);
    record_phase(report.op, "reroute_replay", drained_at);
    if (Status s = app_.destroy(dead); !s.ok()) {
      AARS_WARN << "reroute: dead component not removed: "
                << s.error().message();
    }
    report.new_component = replica;
    report.status = Status::success();
    finish(std::move(report), done);
  });
}

}  // namespace aars::reconfig
