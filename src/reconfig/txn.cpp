#include "reconfig/txn.h"

#include <algorithm>
#include <utility>

#include "fault/injector.h"
#include "sim/network.h"
#include "util/logging.h"

namespace aars::reconfig {

using util::Error;
using util::ErrorCode;

Txn::Txn(Application& app, ReconfigurationEngine& engine, std::string label,
         Options options)
    : app_(app),
      engine_(engine),
      label_(std::move(label)),
      options_(options) {}

std::shared_ptr<Txn> Txn::create(Application& app,
                                 ReconfigurationEngine& engine,
                                 std::string label, Options options) {
  return std::shared_ptr<Txn>(
      new Txn(app, engine, std::move(label), options));
}

std::shared_ptr<Txn> Txn::create(Application& app,
                                 ReconfigurationEngine& engine,
                                 std::string label) {
  return create(app, engine, std::move(label), Options{});
}

void Txn::enqueue(TxnAction action) {
  util::require(!started_, "txn already running");
  actions_.push_back(std::move(action));
}

Txn& Txn::add_component(const std::string& type, const std::string& name,
                        const std::string& node) {
  TxnAction action;
  action.op = analysis::PlanOp::kAdd;
  action.type = util::Symbol(type);
  action.name = util::Symbol(name);
  action.node_name = util::Symbol(node);
  enqueue(std::move(action));
  return *this;
}

Txn& Txn::remove_component(const std::string& instance) {
  TxnAction action;
  action.op = analysis::PlanOp::kRemove;
  action.instance_name = util::Symbol(instance);
  enqueue(std::move(action));
  return *this;
}

Txn& Txn::replace_component(const std::string& instance,
                            const std::string& type,
                            const std::string& new_name) {
  TxnAction action;
  action.op = analysis::PlanOp::kReplace;
  action.instance_name = util::Symbol(instance);
  action.type = util::Symbol(type);
  action.name =
      util::Symbol(new_name.empty() ? instance + "_new" : new_name);
  enqueue(std::move(action));
  return *this;
}

Txn& Txn::migrate_component(const std::string& instance,
                            const std::string& node) {
  TxnAction action;
  action.op = analysis::PlanOp::kMigrate;
  action.instance_name = util::Symbol(instance);
  action.node_name = util::Symbol(node);
  enqueue(std::move(action));
  return *this;
}

Txn& Txn::rebind(const std::string& instance, const std::string& port,
                 const std::string& connector) {
  TxnAction action;
  action.op = analysis::PlanOp::kRebind;
  action.instance_name = util::Symbol(instance);
  action.port = util::Symbol(port);
  action.connector = app_.connector_id(connector);
  enqueue(std::move(action));
  return *this;
}

Txn& Txn::reroute(const std::string& instance, const std::string& replica) {
  TxnAction action;
  action.op = analysis::PlanOp::kReroute;
  action.instance_name = util::Symbol(instance);
  action.replica_name = util::Symbol(replica);
  enqueue(std::move(action));
  return *this;
}

void Txn::run(Done done) {
  util::require(!started_, "txn already running");
  started_ = true;
  done_ = std::move(done);
  report_.op = "txn";
  report_.started_at = app_.loop().now();
  if (options_.deadline > 0) {
    deadline_at_ = report_.started_at + options_.deadline;
  }
  report_.steps.resize(actions_.size());
  for (std::size_t i = 0; i < actions_.size(); ++i) {
    report_.steps[i].op = actions_[i].op;
  }
  obs::Registry::global().trace(
      report_.started_at, obs::TraceKind::kTxn, label_,
      "begin steps=" + std::to_string(actions_.size()));
  step(0);
}

ComponentId Txn::resolve(ComponentId bound, util::Symbol name) const {
  if (bound.valid()) return bound;
  for (const auto& [entry, id] : scratch_) {
    if (entry == name) return id;
  }
  if (!name.str().empty()) return app_.component_id(name.str());
  return ComponentId::invalid();
}

NodeId Txn::resolve_node(NodeId bound, util::Symbol name) const {
  if (bound.valid()) return bound;
  if (!name.str().empty()) return app_.network().node_id(name.str());
  return NodeId::invalid();
}

ComponentId Txn::live(ComponentId id) const {
  // Follow the remap chain: a journal id may have been re-created more than
  // once across nested undo records.
  bool moved = true;
  while (moved) {
    moved = false;
    for (const auto& [from, to] : remap_) {
      if (from == id) {
        id = to;
        moved = true;
        break;
      }
    }
  }
  return id;
}

std::vector<std::pair<std::string, ConnectorId>> Txn::capture_bindings(
    ComponentId id) const {
  std::vector<std::pair<std::string, ConnectorId>> out;
  const component::Component* comp = app_.find_component(id);
  if (comp == nullptr) return out;
  out.reserve(comp->required().size());
  for (const component::RequiredPort& port : comp->required()) {
    out.emplace_back(port.name, app_.binding(id, port.name));
  }
  return out;
}

Txn::Resurrect Txn::capture_resurrect(ComponentId id) const {
  Resurrect r;
  const component::Component* comp = app_.find_component(id);
  if (comp == nullptr) return r;
  r.type = comp->type_name();
  r.name = comp->instance_name();
  r.node = app_.placement(id);
  // The state snapshot is taken at the step boundary; messages the
  // component processes between here and the protocol's quiescence point
  // are not re-wound on rollback (see DESIGN.md on invertibility grades).
  r.snapshot = comp->snapshot();
  for (ConnectorId conn : app_.connector_ids()) {
    const connector::Connector* c = app_.find_connector(conn);
    if (c != nullptr && c->has_provider(id)) r.provided.push_back(conn);
  }
  for (auto& [port, conn] : capture_bindings(id)) {
    if (conn.valid()) r.bindings.emplace_back(port, conn);
  }
  return r;
}

void Txn::step(std::size_t index) {
  if (deadline_at_ > 0 && app_.loop().now() >= deadline_at_ &&
      options_.atomic) {
    abort(index, Error{ErrorCode::kTimeout,
                       "txn deadline expired after step " +
                           std::to_string(index) + "/" +
                           std::to_string(actions_.size())});
    return;
  }
  if (index >= actions_.size()) {
    commit();
    return;
  }
  if (options_.injector != nullptr &&
      options_.injector->should_fail_step(index + 1, actions_.size())) {
    obs::Registry::global().counter("txn.step_faults").inc();
    fail_step(index,
              Error{ErrorCode::kUnavailable,
                    "injected fault: fail-step " + std::to_string(index + 1) +
                        " of " + std::to_string(actions_.size())});
    return;
  }

  TxnAction& action = actions_[index];
  auto self = shared_from_this();
  const Done done = [this, self, index](const ReconfigReport& sub) {
    on_step_done(index, sub);
  };

  switch (action.op) {
    case analysis::PlanOp::kAdd: {
      const NodeId node = resolve_node(action.node, action.node_name);
      if (!node.valid()) {
        fail_step(index, Error{ErrorCode::kNotFound,
                               "add: unknown node '" +
                                   action.node_name.str() + "'"});
        return;
      }
      ReconfigReport sub;
      sub.op = "add";
      sub.started_at = app_.loop().now();
      Result<ComponentId> added = engine_.add_component(
          action.type.str(), action.name.str(), node, Value{});
      if (added.ok()) {
        sub.status = Status::success();
        sub.new_component = added.value();
      } else {
        sub.status = added.error();
      }
      on_step_done(index, sub);
      return;
    }
    case analysis::PlanOp::kRemove: {
      const ComponentId target = resolve(action.instance, action.instance_name);
      if (!target.valid()) {
        fail_step(index, Error{ErrorCode::kNotFound, "remove: unknown instance"});
        return;
      }
      UndoRecord undo;
      undo.op = action.op;
      undo.target = target;
      undo.resurrect = capture_resurrect(target);
      pending_undo_ = std::move(undo);
      engine_.remove_component(target, done);
      return;
    }
    case analysis::PlanOp::kReplace: {
      const ComponentId target = resolve(action.instance, action.instance_name);
      if (!target.valid()) {
        fail_step(index,
                  Error{ErrorCode::kNotFound, "replace: unknown instance"});
        return;
      }
      UndoRecord undo;
      undo.op = action.op;
      undo.target = target;
      undo.resurrect = capture_resurrect(target);
      pending_undo_ = std::move(undo);
      engine_.replace_component(target, action.type.str(), action.name.str(),
                                done);
      return;
    }
    case analysis::PlanOp::kMigrate: {
      const ComponentId target = resolve(action.instance, action.instance_name);
      const NodeId node = resolve_node(action.node, action.node_name);
      if (!target.valid() || !node.valid()) {
        fail_step(index, Error{ErrorCode::kNotFound,
                               "migrate: unknown instance or node"});
        return;
      }
      UndoRecord undo;
      undo.op = action.op;
      undo.target = target;
      undo.prev_node = app_.placement(target);
      pending_undo_ = std::move(undo);
      engine_.migrate_component(target, node, done);
      return;
    }
    case analysis::PlanOp::kRedeploy: {
      const ComponentId target = resolve(action.instance, action.instance_name);
      const NodeId node = resolve_node(action.node, action.node_name);
      if (!target.valid() || !node.valid()) {
        fail_step(index, Error{ErrorCode::kNotFound,
                               "redeploy: unknown instance or node"});
        return;
      }
      UndoRecord undo;
      undo.op = action.op;
      undo.target = target;
      undo.resurrect = capture_resurrect(target);
      pending_undo_ = std::move(undo);
      engine_.redeploy_component(target, node, done);
      return;
    }
    case analysis::PlanOp::kRebind: {
      const ComponentId target = resolve(action.instance, action.instance_name);
      if (!target.valid() || !action.connector.valid()) {
        fail_step(index, Error{ErrorCode::kNotFound,
                               "rebind: unknown instance or connector"});
        return;
      }
      UndoRecord undo;
      undo.op = action.op;
      undo.target = target;
      undo.port = action.port.str();
      undo.prev_connector = app_.binding(target, undo.port);
      ReconfigReport sub;
      sub.op = "rebind";
      sub.started_at = app_.loop().now();
      sub.status = engine_.rebind(target, undo.port, action.connector);
      if (sub.ok()) pending_undo_ = std::move(undo);
      on_step_done(index, sub);
      return;
    }
    case analysis::PlanOp::kReroute: {
      const ComponentId target = resolve(action.instance, action.instance_name);
      const ComponentId replica = resolve(action.replica, action.replica_name);
      if (!target.valid() || !replica.valid()) {
        fail_step(index, Error{ErrorCode::kNotFound,
                               "reroute: unknown instance or replica"});
        return;
      }
      UndoRecord undo;
      undo.op = action.op;
      undo.target = target;
      undo.replica = replica;
      undo.resurrect = capture_resurrect(target);
      for (ConnectorId conn : undo.resurrect->provided) {
        const connector::Connector* c = app_.find_connector(conn);
        if (c != nullptr && c->has_provider(replica)) {
          undo.replica_already_in.push_back(conn);
        }
      }
      undo.replica_bindings = capture_bindings(replica);
      pending_undo_ = std::move(undo);
      engine_.reroute_to_replica(target, replica, done);
      return;
    }
  }
  fail_step(index, Error{ErrorCode::kInternal, "unknown plan op"});
}

void Txn::on_step_done(std::size_t index, const ReconfigReport& sub) {
  StepOutcome& out = report_.steps[index];
  out.attempted = true;
  out.status = sub.status;
  report_.held_messages += sub.held_messages;
  report_.replayed_messages += sub.replayed_messages;

  if (!sub.ok()) {
    pending_undo_.reset();
    fail_step(index, sub.status);
    return;
  }

  // Step applied: complete and journal its inverse.
  const TxnAction& action = actions_[index];
  if (pending_undo_.has_value()) {
    if (action.op == analysis::PlanOp::kReplace ||
        action.op == analysis::PlanOp::kRedeploy) {
      pending_undo_->created = sub.new_component;
    }
    journal_.push_back(std::move(*pending_undo_));
    pending_undo_.reset();
  } else if (action.op == analysis::PlanOp::kAdd) {
    UndoRecord undo;
    undo.op = action.op;
    undo.created = sub.new_component;
    journal_.push_back(std::move(undo));
    scratch_.emplace_back(action.name, sub.new_component);
  }
  if (action.op == analysis::PlanOp::kReplace ||
      action.op == analysis::PlanOp::kRedeploy) {
    out.swapped_from = journal_.back().target;
    out.swapped_to = sub.new_component;
  } else if (action.op == analysis::PlanOp::kReroute) {
    out.swapped_from = journal_.back().target;
    out.swapped_to = journal_.back().replica;
  }
  step(index + 1);
}

void Txn::fail_step(std::size_t index, Status why) {
  StepOutcome& out = report_.steps[index];
  out.attempted = true;
  out.status = why;
  if (options_.atomic) {
    abort(index, std::move(why));
    return;
  }
  // Sequencer mode: record the failure and keep going.
  if (abort_status_.ok()) abort_status_ = why;
  step(index + 1);
}

void Txn::commit() {
  if (options_.atomic) {
    report_.verdict = TxnVerdict::kCommitted;
    report_.status = Status::success();
  } else {
    // Sequencer mode never rolls back; surface the first failure, if any.
    report_.status = abort_status_;
  }
  finish();
}

void Txn::abort(std::size_t failed_index, Status why) {
  report_.verdict = TxnVerdict::kRolledBack;
  report_.status = std::move(why);
  obs::Registry::global().trace(
      app_.loop().now(), obs::TraceKind::kTxn, label_,
      "abort at step " + std::to_string(failed_index + 1) + "/" +
          std::to_string(actions_.size()) + ": " + report_.error_message());
  rollback_cursor_ = journal_.size();
  rollback_next();
}

void Txn::rollback_next() {
  if (rollback_cursor_ == 0) {
    finish();
    return;
  }
  const UndoRecord& record = journal_[--rollback_cursor_];
  ++report_.rollback_steps;
  auto self = shared_from_this();
  apply_undo(record, [this, self] { rollback_next(); });
}

void Txn::destroy_when_drained(ComponentId id, std::function<void()> next) {
  auto self = shared_from_this();
  auto fired = std::make_shared<bool>(false);
  auto attempt = [this, self, id, next = std::move(next), fired] {
    if (*fired) return;
    *fired = true;
    if (app_.find_component(id) != nullptr) {
      if (Status s = app_.destroy(id); !s.ok()) {
        ++report_.rollback_failures;
        AARS_WARN << "txn rollback: could not destroy '" << id.raw()
                  << "': " << s.error().message();
      }
    }
    next();
  };
  // Whichever comes first: the drain, or the quiescence budget — a wedged
  // in-flight message must not wedge the rollback walk.
  app_.when_drained(id, attempt);
  app_.loop().schedule_after(engine_.options().quiescence_timeout, attempt);
}

void Txn::apply_undo(const UndoRecord& record, std::function<void()> next) {
  switch (record.op) {
    case analysis::PlanOp::kAdd: {
      // Inverse of add: detach from every connector (no new traffic), then
      // destroy once in-flight messages drained.
      const ComponentId id = live(record.created);
      if (app_.find_component(id) == nullptr) {
        ++report_.rollback_failures;
        next();
        return;
      }
      for (ConnectorId conn : app_.connector_ids()) {
        connector::Connector* c = app_.find_connector(conn);
        if (c != nullptr && c->has_provider(id)) {
          (void)app_.remove_provider(conn, id);
        }
      }
      destroy_when_drained(id, std::move(next));
      return;
    }
    case analysis::PlanOp::kRemove: {
      // Inverse of remove: resurrect from the boundary snapshot and
      // re-attach. Traffic the forward protocol dropped stays dropped.
      const Resurrect& r = *record.resurrect;
      Result<ComponentId> created =
          app_.instantiate(r.type, r.name, r.node, r.snapshot.attributes);
      if (!created.ok()) {
        ++report_.rollback_failures;
        next();
        return;
      }
      const ComponentId id = created.value();
      if (!app_.restore_component(id, r.snapshot).ok()) {
        ++report_.rollback_failures;
      }
      for (ConnectorId conn : r.provided) {
        if (!app_.add_provider(conn, id).ok()) ++report_.rollback_failures;
      }
      for (const auto& [port, conn] : r.bindings) {
        if (!app_.bind(id, port, conn).ok()) ++report_.rollback_failures;
      }
      remap_.emplace_back(record.target, id);
      next();
      return;
    }
    case analysis::PlanOp::kReplace:
    case analysis::PlanOp::kRedeploy: {
      // Inverse of replace: resurrect the old implementation, point the
      // world back at it, retire the replacement.
      const ComponentId new_id = live(record.created);
      const Resurrect& r = *record.resurrect;
      Result<ComponentId> created =
          app_.instantiate(r.type, r.name, r.node, r.snapshot.attributes);
      if (!created.ok()) {
        ++report_.rollback_failures;
        next();
        return;
      }
      const ComponentId old2 = created.value();
      if (!app_.restore_component(old2, r.snapshot).ok()) {
        ++report_.rollback_failures;
      }
      remap_.emplace_back(record.target, old2);
      if (app_.find_component(new_id) == nullptr) {
        ++report_.rollback_failures;
        next();
        return;
      }
      if (!app_.redirect(new_id, old2).ok()) ++report_.rollback_failures;
      destroy_when_drained(new_id, std::move(next));
      return;
    }
    case analysis::PlanOp::kMigrate: {
      const ComponentId id = live(record.target);
      if (!app_.migrate(id, record.prev_node).ok()) {
        ++report_.rollback_failures;
      }
      next();
      return;
    }
    case analysis::PlanOp::kRebind: {
      const ComponentId id = live(record.target);
      const Status s =
          record.prev_connector.valid()
              ? app_.bind(id, record.port, record.prev_connector)
              : app_.unbind(id, record.port);
      if (!s.ok()) ++report_.rollback_failures;
      next();
      return;
    }
    case analysis::PlanOp::kReroute: {
      // Inverse of reroute: resurrect the retired instance, re-register it
      // on its connectors, and withdraw the replica from connectors it only
      // joined through the reroute.
      const Resurrect& r = *record.resurrect;
      Result<ComponentId> created =
          app_.instantiate(r.type, r.name, r.node, r.snapshot.attributes);
      if (!created.ok()) {
        ++report_.rollback_failures;
        next();
        return;
      }
      const ComponentId id = created.value();
      if (!app_.restore_component(id, r.snapshot).ok()) {
        ++report_.rollback_failures;
      }
      remap_.emplace_back(record.target, id);
      for (ConnectorId conn : r.provided) {
        if (!app_.add_provider(conn, id).ok()) ++report_.rollback_failures;
      }
      const ComponentId rep = live(record.replica);
      for (ConnectorId conn : r.provided) {
        const bool was_member =
            std::find(record.replica_already_in.begin(),
                      record.replica_already_in.end(),
                      conn) != record.replica_already_in.end();
        if (was_member) continue;
        connector::Connector* c = app_.find_connector(conn);
        if (c != nullptr && c->has_provider(rep)) {
          (void)app_.remove_provider(conn, rep);
        }
      }
      for (const auto& [port, conn] : r.bindings) {
        if (!app_.bind(id, port, conn).ok()) ++report_.rollback_failures;
      }
      // The forward redirect moved the dead instance's bindings onto the
      // replica; restore the replica's own pre-step binding state.
      for (const auto& [port, conn] : record.replica_bindings) {
        const Status s = conn.valid() ? app_.bind(rep, port, conn)
                                      : app_.unbind(rep, port);
        if (!s.ok()) ++report_.rollback_failures;
      }
      next();
      return;
    }
  }
  next();
}

void Txn::finish() {
  finished_ = true;
  report_.finished_at = app_.loop().now();
  obs::Registry& reg = obs::Registry::global();
  const char* verdict = to_string(report_.verdict);
  reg.histogram("txn.duration_us", {{"verdict", verdict}})
      .observe(static_cast<double>(report_.duration()));
  if (report_.verdict == TxnVerdict::kCommitted) {
    reg.counter("txn.committed").inc();
    reg.trace(report_.finished_at, obs::TraceKind::kTxn, label_,
              "committed steps=" + std::to_string(actions_.size()));
  } else if (report_.verdict == TxnVerdict::kRolledBack) {
    reg.counter("txn.rolled_back").inc();
    if (report_.rollback_steps > 0) {
      reg.counter("txn.rollback_steps").inc(report_.rollback_steps);
    }
    if (report_.rollback_failures > 0) {
      reg.counter("txn.rollback_failures").inc(report_.rollback_failures);
    }
    reg.trace(report_.finished_at, obs::TraceKind::kTxn, label_,
              "rolled_back undo=" + std::to_string(report_.rollback_steps) +
                  " failures=" + std::to_string(report_.rollback_failures) +
                  ": " + report_.error_message());
  } else {
    reg.trace(report_.finished_at, obs::TraceKind::kTxn, label_,
              report_.ok() ? "sequenced" : "sequenced with failures");
  }
  if (done_) {
    // Move out first: the callback may drop the last owning reference.
    Done done = std::move(done_);
    done_ = nullptr;
    done(report_);
  }
}

}  // namespace aars::reconfig
