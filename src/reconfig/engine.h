// Dynamic reconfiguration engine.
//
// Implements the paper's reconfiguration sequence (§1, after Polylith):
// "waiting to reach a reconfiguration point; and blocking communication
// channels (to manage the messages in transit) while the module context is
// encoded and a new module is created", with strong state transfer
// ("initializing new components with adequate internal state variables,
// contexts, program counters") and the four change classes:
//
//   * structural   — add_component / remove_component / rebind
//   * geographical — migrate_component (load balancing, §1)
//   * interface    — install_interface_adapter (see adapter.h)
//   * implementation — replace_component / update_implementation
//
// Every multi-step change runs as an asynchronous protocol on the event
// loop and reports a ReconfigReport; failures roll the application back to
// the previous configuration (global-consistency requirement, §1).
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "analysis/plan.h"
#include "obs/metrics.h"
#include "runtime/application.h"
#include "util/errors.h"
#include "util/time.h"

namespace aars::reconfig {

using runtime::Application;
using util::ComponentId;
using util::ConnectorId;
using util::Duration;
using util::NodeId;
using util::Result;
using util::SimTime;
using util::Status;
using util::Value;

/// Transactional verdict of a multi-step enactment (reconfig::Txn).
/// Single-op protocols driven directly through the engine stay kNone.
enum class TxnVerdict {
  kNone,        // not enacted transactionally
  kCommitted,   // every step applied
  kRolledBack,  // a step failed (or the deadline expired); undone in reverse
};

constexpr const char* to_string(TxnVerdict v) {
  switch (v) {
    case TxnVerdict::kNone: return "none";
    case TxnVerdict::kCommitted: return "committed";
    case TxnVerdict::kRolledBack: return "rolled_back";
  }
  return "?";
}

/// Per-step outcome inside a transactional enactment.
struct StepOutcome {
  analysis::PlanOp op = analysis::PlanOp::kAdd;
  /// Step status; defaults to "not attempted" so steps skipped after an
  /// abort read as such rather than as silent successes.
  Status status =
      util::Error{util::ErrorCode::kInternal, "step not attempted"};
  bool attempted = false;
  /// Set when the step was applied and then reverted during rollback.
  bool undone = false;
  /// For replace/reroute steps that retire one instance in favour of
  /// another: the swap the caller must mirror (e.g. RuleSet rebinding its
  /// action tables) — only meaningful once the txn committed.
  ComponentId swapped_from;
  ComponentId swapped_to;
};

/// Outcome of one reconfiguration protocol run.
struct ReconfigReport {
  /// Why the protocol failed (code + message); success() when it worked.
  /// Reports start "unfinished" so a dropped protocol never reads as ok.
  Status status =
      util::Error{util::ErrorCode::kInternal, "protocol did not complete"};
  bool ok() const { return status.ok(); }
  /// Empty on success, the failure message otherwise.
  std::string error_message() const {
    return status.ok() ? std::string{} : status.error().message();
  }
  /// Which change class ran: "remove", "replace", "migrate", "redeploy" or
  /// "reroute".
  std::string op;
  SimTime started_at = 0;
  SimTime finished_at = 0;
  /// Wall time of the whole protocol (quiesce + swap + replay).
  Duration duration() const { return finished_at - started_at; }
  /// Messages held while channels were blocked, then replayed.
  std::size_t held_messages = 0;
  std::size_t replayed_messages = 0;
  /// New component (for replace/update flows).
  ComponentId new_component;
  /// Transactional enactment (reconfig::Txn) only: committed/rolled-back
  /// verdict, per-step outcomes and rollback accounting. Engine-level
  /// single-op protocols leave these at their defaults.
  TxnVerdict verdict = TxnVerdict::kNone;
  std::vector<StepOutcome> steps;
  /// Undo records applied (and how many of those failed) while rolling back.
  std::size_t rollback_steps = 0;
  std::size_t rollback_failures = 0;
};

using Done = std::function<void(const ReconfigReport&)>;

class ReconfigurationEngine {
 public:
  struct Options {
    /// Poll period while waiting for quiescence.
    Duration quiescence_poll = util::microseconds(100);
    /// Give up waiting for quiescence after this long.
    Duration quiescence_timeout = util::seconds(10);
    /// Static plan verification before every mutation: off (skip), warn
    /// (verify, log findings, proceed) or enforce (reject failing plans
    /// with kVerificationFailed and count them in "verify.rejected").
    analysis::VerifyMode verify_mode = analysis::VerifyMode::kOff;
    /// Joint-state bound passed through to protocol composition checks.
    std::size_t verify_max_states = 100000;
  };

  explicit ReconfigurationEngine(Application& app);
  ReconfigurationEngine(Application& app, Options options);

  // --- structural changes -----------------------------------------------------
  /// Adds and activates a component (thin wrapper kept for symmetry).
  Result<ComponentId> add_component(const std::string& type,
                                    const std::string& name, NodeId node,
                                    const Value& attributes);
  /// Quiesces, drains and removes a component. Asynchronous.
  void remove_component(ComponentId component, Done done);
  /// Atomically re-points a caller port to another connector.
  Status rebind(ComponentId caller, const std::string& port,
                ConnectorId new_connector);

  // --- implementation changes ----------------------------------------------------
  /// Strong replacement: block -> drain -> passivate -> snapshot -> create
  /// new -> restore -> redirect -> unblock -> replay -> remove old.
  void replace_component(ComponentId old_component,
                         const std::string& new_type,
                         const std::string& new_name, Done done);

  // --- geographical changes ----------------------------------------------------
  /// Moves a component to `destination`; the state transfer is charged to
  /// the network (snapshot bytes over the route's links).
  void migrate_component(ComponentId component, NodeId destination, Done done);

  // --- failure-triggered changes ---------------------------------------------
  /// Repairs a component stranded on a failed host: block -> drain (in-
  /// flight messages towards the dead host fail on their own) -> snapshot
  /// the surviving state -> instantiate the same type on `destination`
  /// under a generated "<name>_r<n>" instance name -> restore -> redirect
  /// -> replay.  Used by RAML repair rules reacting to fault signals.
  void redeploy_component(ComponentId failed, NodeId destination, Done done);
  /// Instant failover: re-points every channel and binding from `dead` to
  /// an already-running replica, replays held traffic, retires `dead`.
  void reroute_to_replica(ComponentId dead, ComponentId replica, Done done);

  /// Dry-run: would a redeploy of `component` to `destination` pass the
  /// configured plan verifier?  Always true with verification off; never
  /// counts towards verify.rejected.  RAML repair rules use this to
  /// pre-screen candidate hosts before committing to one.
  bool redeploy_would_verify(ComponentId component, NodeId destination);

  /// Screens an externally-driven plan step through the configured
  /// verifier under this engine's policy (off/warn/enforce), against a
  /// snapshot of the live architecture.  Cross-shard migration
  /// (reconfig::CrossShardMigrator) runs its protocol outside this engine
  /// but submits its steps here so one verification policy governs every
  /// mutation of the shard's world.
  Status screen_step(const analysis::PlanStep& step, const std::string& op) {
    return verify_step(step, op);
  }

  const Options& options() const { return options_; }

  /// Number of protocol runs started / completed successfully.
  std::uint64_t started() const { return started_; }
  std::uint64_t succeeded() const { return succeeded_; }
  /// Plans rejected by enforce-mode verification.
  std::uint64_t verify_rejected() const { return verify_rejected_; }

 private:
  /// Verifies a single-step plan against a snapshot of the live
  /// architecture, honouring Options::verify_mode.  Success means
  /// "proceed"; failure carries kVerificationFailed (enforce mode only).
  Status verify_step(const analysis::PlanStep& step, const std::string& op);
  /// Node name for plan steps; empty when the id is unknown.
  std::string node_name(NodeId node);
  /// Polls until `component` is quiescent, then calls `next(ok)`.
  void wait_quiescent(ComponentId component, SimTime deadline,
                      std::function<void(bool)> next);
  void finish(ReconfigReport report, const Done& done);
  /// Records the end of a protocol phase that started at `since`: a trace
  /// event plus a "reconfig.phase_us"{op,phase} duration sample.
  void record_phase(const std::string& op, const char* phase, SimTime since);

  Application& app_;
  Options options_;
  std::uint64_t started_ = 0;
  std::uint64_t succeeded_ = 0;
  std::uint64_t verify_rejected_ = 0;
  std::uint64_t redeploys_ = 0;  // suffix for generated instance names
};

}  // namespace aars::reconfig
