// Labelled transition systems and protocol compatibility.
//
// The paper's vision section: "each participating component can be
// represented by a label transition system (LTS) model ... composition
// correctness analysis may then be based on information provided by RAML
// using reflection" (§3), building on Wright's formal connector framework
// (§1).  This module provides:
//   * Lts          — finite LTS with input/output/internal labels,
//   * compose()    — CSP-style parallel composition synchronising on shared
//                    action names with opposite directions,
//   * check_compatibility() — deadlock-freedom of the composition, with a
//                    counterexample trace when incompatible.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "util/errors.h"

namespace aars::lts {

using StateId = std::size_t;

enum class Direction { kInput, kOutput, kInternal };

constexpr const char* to_string(Direction d) {
  switch (d) {
    case Direction::kInput: return "?";
    case Direction::kOutput: return "!";
    case Direction::kInternal: return "tau";
  }
  return "?";
}

/// A transition label: action name + direction. `a!` synchronises with `a?`.
struct Label {
  std::string action;
  Direction direction = Direction::kInternal;

  std::string to_string() const;
  friend bool operator==(const Label& x, const Label& y) {
    return x.action == y.action && x.direction == y.direction;
  }
};

Label in(std::string action);
Label out(std::string action);
Label tau();

struct Transition {
  StateId from;
  Label label;
  StateId to;
};

/// A finite labelled transition system. States are dense indices; state 0 is
/// created implicitly as the initial state by the constructor.
class Lts {
 public:
  explicit Lts(std::string name = "lts");

  const std::string& name() const { return name_; }

  /// Adds a state; returns its id. Optionally mark it final (a state where
  /// the collaboration may legally stop).
  StateId add_state(bool final_state = false);
  void set_final(StateId state, bool final_state = true);
  bool is_final(StateId state) const;

  void add_transition(StateId from, Label label, StateId to);

  StateId initial() const { return 0; }
  std::size_t state_count() const { return final_.size(); }
  std::size_t transition_count() const { return transitions_.size(); }
  const std::vector<Transition>& transitions() const { return transitions_; }

  /// Transitions leaving `state`.
  std::vector<const Transition*> outgoing(StateId state) const;

  /// The set of action names used with input/output direction.
  std::vector<std::string> alphabet() const;

  /// States reachable from the initial state.
  std::vector<StateId> reachable() const;

  /// True when no reachable non-final state lacks outgoing transitions.
  bool deadlock_free() const;

 private:
  std::string name_;
  std::vector<bool> final_;
  std::vector<Transition> transitions_;
  // Adjacency index: state -> indices into transitions_.
  std::vector<std::vector<std::size_t>> adjacency_;
};

/// Parallel composition of two LTSs.  Actions present in both alphabets
/// synchronise (an output in one must meet the matching input in the other
/// and becomes internal); all other actions interleave.
Lts compose(const Lts& a, const Lts& b);

/// Result of a compatibility check.
struct CompatibilityReport {
  bool compatible = true;
  /// Size of the explored product automaton (for scaling experiments).
  std::size_t product_states = 0;
  /// When incompatible: the labels leading to the deadlock state.
  std::vector<std::string> counterexample;
  std::string diagnosis;
};

/// Wright-style check: the composition must be deadlock-free (every
/// reachable state either allows progress or is final in both roles).
CompatibilityReport check_compatibility(const Lts& a, const Lts& b);

/// Result of a bounded n-way composition check.
struct CompositionReport {
  /// No reachable joint state (within the bound) deadlocks.
  bool deadlock_free = true;
  /// The state bound was hit before full exploration; `deadlock_free` then
  /// only covers the explored prefix of the product.
  bool truncated = false;
  /// Joint states explored (for scaling experiments and lint stats).
  std::size_t states_explored = 0;
  /// When a deadlock was found: the labels leading to it.
  std::vector<std::string> counterexample;
  /// Human-readable verdict; names the stuck roles on deadlock.
  std::string diagnosis;
};

/// N-way CSP-style composition check with bounded state-space exploration.
/// Actions appearing in more than one alphabet synchronise pairwise (an
/// output must meet a matching input in another role); actions private to
/// one role and internal moves interleave.  A reachable joint state with no
/// move where some role is non-final is a deadlock.  Exploration stops after
/// `max_states` joint states; the report is then marked truncated.
CompositionReport check_composition(const std::vector<const Lts*>& parts,
                                    std::size_t max_states = 100000);

/// Convenience protocol builders used by connectors and tests.
/// A client that repeatedly emits `request!` then waits for `reply?`.
Lts request_reply_client(std::size_t pipeline_depth = 1);
/// A server that accepts `request?` then emits `reply!`.
Lts request_reply_server();
/// A one-way event source emitting `event!` forever.
Lts event_source();
/// A one-way event sink accepting `event?` forever.
Lts event_sink();
/// A chain protocol of n sequential actions a0!..a(n-1)! (for scaling
/// experiments).
Lts sequential_emitter(std::size_t n, const std::string& prefix);
Lts sequential_acceptor(std::size_t n, const std::string& prefix);

}  // namespace aars::lts
