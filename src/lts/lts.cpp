#include "lts/lts.h"

#include <algorithm>
#include <deque>
#include <set>

namespace aars::lts {

std::string Label::to_string() const {
  if (direction == Direction::kInternal) return "tau";
  return action + lts::to_string(direction);
}

Label in(std::string action) {
  return Label{std::move(action), Direction::kInput};
}
Label out(std::string action) {
  return Label{std::move(action), Direction::kOutput};
}
Label tau() { return Label{"", Direction::kInternal}; }

Lts::Lts(std::string name) : name_(std::move(name)) {
  add_state();  // state 0: initial
}

StateId Lts::add_state(bool final_state) {
  final_.push_back(final_state);
  adjacency_.emplace_back();
  return final_.size() - 1;
}

void Lts::set_final(StateId state, bool final_state) {
  util::require(state < final_.size(), "unknown state");
  final_[state] = final_state;
}

bool Lts::is_final(StateId state) const {
  util::require(state < final_.size(), "unknown state");
  return final_[state];
}

void Lts::add_transition(StateId from, Label label, StateId to) {
  util::require(from < final_.size() && to < final_.size(),
                "transition endpoints must exist");
  adjacency_[from].push_back(transitions_.size());
  transitions_.push_back(Transition{from, std::move(label), to});
}

std::vector<const Transition*> Lts::outgoing(StateId state) const {
  util::require(state < adjacency_.size(), "unknown state");
  std::vector<const Transition*> out;
  out.reserve(adjacency_[state].size());
  for (std::size_t idx : adjacency_[state]) out.push_back(&transitions_[idx]);
  return out;
}

std::vector<std::string> Lts::alphabet() const {
  std::set<std::string> names;
  for (const Transition& t : transitions_) {
    if (t.label.direction != Direction::kInternal) names.insert(t.label.action);
  }
  return {names.begin(), names.end()};
}

std::vector<StateId> Lts::reachable() const {
  std::vector<bool> seen(state_count(), false);
  std::deque<StateId> frontier{initial()};
  seen[initial()] = true;
  std::vector<StateId> out;
  while (!frontier.empty()) {
    const StateId s = frontier.front();
    frontier.pop_front();
    out.push_back(s);
    for (std::size_t idx : adjacency_[s]) {
      const StateId next = transitions_[idx].to;
      if (!seen[next]) {
        seen[next] = true;
        frontier.push_back(next);
      }
    }
  }
  return out;
}

bool Lts::deadlock_free() const {
  for (StateId s : reachable()) {
    if (adjacency_[s].empty() && !final_[s]) return false;
  }
  return true;
}

namespace {

/// Pair-state bookkeeping for the product construction.
struct PairHash {
  std::size_t operator()(const std::pair<StateId, StateId>& p) const {
    return p.first * 1000003u + p.second;
  }
};

bool is_shared(const std::string& action,
               const std::set<std::string>& shared) {
  return shared.count(action) > 0;
}

}  // namespace

Lts compose(const Lts& a, const Lts& b) {
  const auto alpha_a = a.alphabet();
  const auto alpha_b = b.alphabet();
  std::set<std::string> shared;
  {
    std::set<std::string> sa(alpha_a.begin(), alpha_a.end());
    for (const std::string& x : alpha_b) {
      if (sa.count(x)) shared.insert(x);
    }
  }

  Lts product(a.name() + "||" + b.name());
  std::map<std::pair<StateId, StateId>, StateId> index;
  std::deque<std::pair<StateId, StateId>> frontier;

  const auto intern = [&](StateId sa, StateId sb) -> StateId {
    const auto key = std::make_pair(sa, sb);
    auto it = index.find(key);
    if (it != index.end()) return it->second;
    StateId id;
    if (index.empty()) {
      id = product.initial();  // state 0 exists already
    } else {
      id = product.add_state();
    }
    product.set_final(id, a.is_final(sa) && b.is_final(sb));
    index.emplace(key, id);
    frontier.emplace_back(sa, sb);
    return id;
  };

  intern(a.initial(), b.initial());
  while (!frontier.empty()) {
    const auto [sa, sb] = frontier.front();
    frontier.pop_front();
    const StateId from = index.at({sa, sb});

    // Synchronised moves on shared actions with opposite directions.
    for (const Transition* ta : a.outgoing(sa)) {
      if (ta->label.direction == Direction::kInternal ||
          !is_shared(ta->label.action, shared)) {
        continue;
      }
      for (const Transition* tb : b.outgoing(sb)) {
        if (tb->label.action != ta->label.action) continue;
        const bool opposite =
            (ta->label.direction == Direction::kOutput &&
             tb->label.direction == Direction::kInput) ||
            (ta->label.direction == Direction::kInput &&
             tb->label.direction == Direction::kOutput);
        if (!opposite) continue;
        const StateId to = intern(ta->to, tb->to);
        product.add_transition(from,
                               Label{ta->label.action, Direction::kInternal},
                               to);
      }
    }
    // Interleaved moves: internal labels and non-shared actions.
    for (const Transition* ta : a.outgoing(sa)) {
      if (ta->label.direction != Direction::kInternal &&
          is_shared(ta->label.action, shared)) {
        continue;
      }
      const StateId to = intern(ta->to, sb);
      product.add_transition(from, ta->label, to);
    }
    for (const Transition* tb : b.outgoing(sb)) {
      if (tb->label.direction != Direction::kInternal &&
          is_shared(tb->label.action, shared)) {
        continue;
      }
      const StateId to = intern(sa, tb->to);
      product.add_transition(from, tb->label, to);
    }
  }
  return product;
}

CompatibilityReport check_compatibility(const Lts& a, const Lts& b) {
  CompatibilityReport report;
  const Lts product = compose(a, b);
  report.product_states = product.state_count();

  // BFS from the initial state remembering the path.
  std::vector<int> parent(product.state_count(), -1);
  std::vector<std::string> via(product.state_count());
  std::vector<bool> seen(product.state_count(), false);
  std::deque<StateId> frontier{product.initial()};
  seen[product.initial()] = true;

  while (!frontier.empty()) {
    const StateId s = frontier.front();
    frontier.pop_front();
    const auto out = product.outgoing(s);
    if (out.empty() && !product.is_final(s)) {
      report.compatible = false;
      report.diagnosis = "deadlock: no joint transition and not a final state";
      // Reconstruct the trace.
      std::vector<std::string> trace;
      for (StateId at = s; parent[at] >= 0;
           at = static_cast<StateId>(parent[at])) {
        trace.push_back(via[at]);
      }
      std::reverse(trace.begin(), trace.end());
      report.counterexample = std::move(trace);
      return report;
    }
    for (const Transition* t : out) {
      if (!seen[t->to]) {
        seen[t->to] = true;
        parent[t->to] = static_cast<int>(s);
        via[t->to] = t->label.to_string();
        frontier.push_back(t->to);
      }
    }
  }
  return report;
}

CompositionReport check_composition(const std::vector<const Lts*>& parts,
                                    std::size_t max_states) {
  CompositionReport report;
  if (parts.empty()) return report;
  for (const Lts* part : parts) util::require(part != nullptr, "null role");

  // How many roles use each action: shared actions must synchronise,
  // private ones interleave (mirrors the binary compose() semantics).
  std::map<std::string, int> roles_using;
  for (const Lts* part : parts) {
    for (const std::string& action : part->alphabet()) ++roles_using[action];
  }

  using Tuple = std::vector<StateId>;
  std::map<Tuple, std::size_t> index;
  std::vector<Tuple> states;
  std::vector<int> parent;
  std::vector<std::string> via;
  std::deque<std::size_t> frontier;

  const auto intern = [&](const Tuple& tuple, std::size_t from,
                          std::string label) -> bool {
    if (index.count(tuple)) return true;
    if (states.size() >= max_states) {
      report.truncated = true;
      return false;
    }
    index.emplace(tuple, states.size());
    states.push_back(tuple);
    parent.push_back(states.size() == 1 ? -1 : static_cast<int>(from));
    via.push_back(std::move(label));
    frontier.push_back(states.size() - 1);
    return true;
  };

  Tuple initial(parts.size());
  for (std::size_t i = 0; i < parts.size(); ++i) initial[i] = parts[i]->initial();
  intern(initial, 0, {});

  while (!frontier.empty()) {
    const std::size_t at = frontier.front();
    frontier.pop_front();
    const Tuple tuple = states[at];

    bool any_move = false;
    for (std::size_t i = 0; i < parts.size(); ++i) {
      for (const Transition* t : parts[i]->outgoing(tuple[i])) {
        const bool shared = t->label.direction != Direction::kInternal &&
                            roles_using[t->label.action] > 1;
        if (!shared) {
          // Interleaved move: internal or private action.
          any_move = true;
          Tuple next = tuple;
          next[i] = t->to;
          intern(next, at, t->label.to_string());
          continue;
        }
        // Synchronised move, initiated from the output side so each
        // rendezvous is generated once.
        if (t->label.direction != Direction::kOutput) continue;
        for (std::size_t j = 0; j < parts.size(); ++j) {
          if (j == i) continue;
          for (const Transition* u : parts[j]->outgoing(tuple[j])) {
            if (u->label.direction != Direction::kInput ||
                u->label.action != t->label.action) {
              continue;
            }
            any_move = true;
            Tuple next = tuple;
            next[i] = t->to;
            next[j] = u->to;
            intern(next, at, t->label.action);
          }
        }
      }
    }
    // An input waiting on a partner does not count as progress by itself;
    // any_move already reflects that (only realised rendezvous count).
    if (!any_move) {
      bool all_final = true;
      std::string stuck;
      for (std::size_t i = 0; i < parts.size(); ++i) {
        if (!parts[i]->is_final(tuple[i])) {
          all_final = false;
          if (!stuck.empty()) stuck += ", ";
          stuck += parts[i]->name();
        }
      }
      if (!all_final) {
        report.deadlock_free = false;
        report.diagnosis =
            "deadlock: no joint move and non-final role(s): " + stuck;
        std::vector<std::string> trace;
        for (std::size_t s = at; parent[s] >= 0;
             s = static_cast<std::size_t>(parent[s])) {
          trace.push_back(via[s]);
        }
        std::reverse(trace.begin(), trace.end());
        report.counterexample = std::move(trace);
        report.states_explored = states.size();
        return report;
      }
    }
  }
  report.states_explored = states.size();
  if (report.truncated) {
    report.diagnosis = "exploration truncated at " +
                       std::to_string(max_states) +
                       " joint states; no deadlock in the explored prefix";
  }
  return report;
}

Lts request_reply_client(std::size_t pipeline_depth) {
  util::require(pipeline_depth >= 1, "pipeline depth must be >= 1");
  Lts lts("rr-client");
  // States 0..depth: i requests in flight. Initial state is final (idle).
  lts.set_final(lts.initial(), true);
  std::vector<StateId> states{lts.initial()};
  for (std::size_t i = 1; i <= pipeline_depth; ++i) {
    states.push_back(lts.add_state());
  }
  for (std::size_t i = 0; i < pipeline_depth; ++i) {
    lts.add_transition(states[i], out("request"), states[i + 1]);
    lts.add_transition(states[i + 1], in("reply"), states[i]);
  }
  return lts;
}

Lts request_reply_server() {
  Lts lts("rr-server");
  lts.set_final(lts.initial(), true);
  const StateId busy = lts.add_state();
  lts.add_transition(lts.initial(), in("request"), busy);
  lts.add_transition(busy, out("reply"), lts.initial());
  return lts;
}

Lts event_source() {
  Lts lts("event-source");
  lts.set_final(lts.initial(), true);
  lts.add_transition(lts.initial(), out("event"), lts.initial());
  return lts;
}

Lts event_sink() {
  Lts lts("event-sink");
  lts.set_final(lts.initial(), true);
  lts.add_transition(lts.initial(), in("event"), lts.initial());
  return lts;
}

Lts sequential_emitter(std::size_t n, const std::string& prefix) {
  util::require(n >= 1, "need at least one action");
  Lts lts("seq-emitter");
  StateId prev = lts.initial();
  for (std::size_t i = 0; i < n; ++i) {
    const StateId next = (i + 1 == n) ? lts.initial()
                                      : lts.add_state();
    lts.add_transition(prev, out(prefix + std::to_string(i)), next);
    prev = next;
  }
  lts.set_final(lts.initial(), true);
  return lts;
}

Lts sequential_acceptor(std::size_t n, const std::string& prefix) {
  util::require(n >= 1, "need at least one action");
  Lts lts("seq-acceptor");
  StateId prev = lts.initial();
  for (std::size_t i = 0; i < n; ++i) {
    const StateId next = (i + 1 == n) ? lts.initial()
                                      : lts.add_state();
    lts.add_transition(prev, in(prefix + std::to_string(i)), next);
    prev = next;
  }
  lts.set_final(lts.initial(), true);
  return lts;
}

}  // namespace aars::lts
