// Adaptive component interfaces: the AJ-style meta-protocol.
//
// "Adaptive component interfaces using dedicated programming languages can
// be used, for example, to modify structures and components, and to
// generate adaptive components. ... the programming language AJ introduces
// a meta-level protocol to observe and modify base level executions" (§2,
// [Kast02]).  [Kast02] separates *introspection* (absorption/metaification:
// observing a component) from *intercession* (changing it).
//
// MetaComponent absorbs an existing component: it exposes a reflective
// description, installs execution observers, and can refine (wrap) or
// replace individual operation handlers at run time — with an undo stack so
// refinements compose and retract cleanly.
#pragma once

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "component/component.h"
#include "util/errors.h"

namespace aars::adapt {

class MetaComponent {
 public:
  using Refiner = std::function<util::Result<util::Value>(
      const util::Value& args,
      const component::Component::OperationHandler& base)>;
  using TraceHook = std::function<void(const std::string& operation, bool ok)>;

  /// Absorbs (metaifies) `base`. The base component keeps running.
  explicit MetaComponent(component::Component& base);

  // --- introspection -----------------------------------------------------------
  /// Reflective description: type, lifecycle, operations, attributes,
  /// counters — the observation half of the meta-protocol.
  util::Value describe() const;
  /// Installs an execution observer on the base component.
  void trace(TraceHook hook);
  std::uint64_t observed() const { return observed_; }

  // --- intercession -----------------------------------------------------------
  /// Wraps the current handler of `operation`: the refiner receives the
  /// arguments and the previous handler ("proceed").
  util::Status refine_operation(const std::string& operation, Refiner refiner,
                                double work_cost);
  /// Pops the most recent refinement of `operation`.
  util::Status undo_refinement(const std::string& operation);
  /// Depth of the refinement stack for `operation`.
  std::size_t refinement_depth(const std::string& operation) const;

 private:
  component::Component& base_;
  std::uint64_t observed_ = 0;
  struct Saved {
    component::Component::OperationHandler handler;
    double work_cost;
  };
  std::map<std::string, std::vector<Saved>> undo_;
};

}  // namespace aars::adapt
