// Interaction patterns: composable meta-object chains.
//
// "Interaction patterns are used to chain meta-objects so that
// meta-controllers can be composed. This requires specification of the
// partially ordered relations among meta-objects (priority, order of the
// declaration). Runtime composition needs detailed knowledge of ... the
// important properties of the wrappers (conditional, mandatory, exclusive,
// modificatory)" (§2, [Pawl99]).  [Blay02] adds "more control structures so
// that composition of calls can be managed in any order" — provided here by
// ChainController.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "component/message.h"
#include "util/errors.h"

namespace aars::adapt {

using component::Message;
using util::Result;
using util::Status;
using util::Value;

/// Wrapper properties declared per meta-object.
enum class WrapperKind {
  kConditional,   // may be skipped when its condition is false
  kMandatory,     // must appear in every composed chain
  kExclusive,     // at most one per exclusion group
  kModificatory,  // rewrites the message (affects ordering constraints)
};

constexpr const char* to_string(WrapperKind k) {
  switch (k) {
    case WrapperKind::kConditional: return "conditional";
    case WrapperKind::kMandatory: return "mandatory";
    case WrapperKind::kExclusive: return "exclusive";
    case WrapperKind::kModificatory: return "modificatory";
  }
  return "?";
}

/// A meta-object: one link of the chain-of-responsibility.
class MetaObject {
 public:
  /// Invokes the rest of the chain.
  using Next = std::function<Result<Value>(Message&)>;

  MetaObject(std::string name, WrapperKind kind, int priority);
  virtual ~MetaObject() = default;

  const std::string& name() const { return name_; }
  WrapperKind kind() const { return kind_; }
  int priority() const { return priority_; }
  /// Exclusion group (only meaningful for kExclusive).
  const std::string& group() const { return group_; }
  void set_group(std::string group) { group_ = std::move(group); }
  /// Condition for kConditional wrappers; default: always applies.
  virtual bool applies(const Message& message) const {
    (void)message;
    return true;
  }
  /// The wrapper body; must call `next` (possibly after rewriting) unless
  /// it decides to answer directly.
  virtual Result<Value> invoke(Message& message, const Next& next) = 0;

 private:
  std::string name_;
  WrapperKind kind_;
  int priority_;
  std::string group_;
};

/// Functional meta-object for in-place definitions.
class LambdaMetaObject final : public MetaObject {
 public:
  using Body = std::function<Result<Value>(Message&, const MetaObject::Next&)>;
  LambdaMetaObject(std::string name, WrapperKind kind, int priority,
                   Body body);
  Result<Value> invoke(Message& message, const Next& next) override;

 private:
  Body body_;
};

/// A validated, ordered chain of meta-objects around a terminal handler.
class MetaObjectChain {
 public:
  using Terminal = std::function<Result<Value>(Message&)>;

  /// Declares that `earlier` must run before `later` (a partial-order
  /// constraint in addition to priorities).
  struct OrderConstraint {
    std::string earlier;
    std::string later;
  };

  /// Composes and validates:
  ///  * duplicate names are rejected,
  ///  * two kExclusive objects sharing a group are rejected,
  ///  * ordering = priority, then declaration order, then constraints;
  ///    contradictory constraints (a cycle) are rejected with
  ///    kCycleDetected.
  static util::Result<MetaObjectChain> compose(
      std::vector<std::shared_ptr<MetaObject>> objects,
      std::vector<OrderConstraint> constraints, Terminal terminal);

  /// Runs the message through the chain (conditional wrappers whose
  /// condition fails are skipped) down to the terminal handler.
  Result<Value> invoke(Message& message) const;

  std::vector<std::string> order() const;
  std::size_t size() const { return ordered_.size(); }

 private:
  MetaObjectChain(std::vector<std::shared_ptr<MetaObject>> ordered,
                  Terminal terminal);

  std::vector<std::shared_ptr<MetaObject>> ordered_;
  Terminal terminal_;
};

/// Blay02-style controller: explicit control structures over meta-object
/// invocations, freeing composition from the fixed chain order.
class ChainController {
 public:
  using Step = std::function<Result<Value>(Message&)>;

  /// Runs steps in sequence; the last step's result wins. Any error stops
  /// the sequence.
  static Step sequence(std::vector<Step> steps);
  /// Chooses a branch by predicate.
  static Step branch(std::function<bool(const Message&)> predicate,
                     Step when_true, Step when_false);
  /// Retries `step` up to `attempts` times while it returns an error.
  static Step retry(Step step, std::size_t attempts);
  /// Lifts a meta-object (with terminal `next`) into a Step.
  static Step lift(std::shared_ptr<MetaObject> object, Step next);
};

}  // namespace aars::adapt
