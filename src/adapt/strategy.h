// The Strategy pattern with run-time switching.
//
// "The Strategy pattern is commonly used to implement dynamically changing
// algorithms ... This pattern separates alternative algorithms that are to
// be changed from the adaptation mechanism that implements the change" (§2).
// StrategyRegistry holds the alternatives; switching is O(1) and fires
// observer hooks so the meta-level can audit adaptations.
#pragma once

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "util/errors.h"

namespace aars::adapt {

template <typename Signature>
class StrategyRegistry;

template <typename R, typename... Args>
class StrategyRegistry<R(Args...)> {
 public:
  using Strategy = std::function<R(Args...)>;
  using SwitchHook =
      std::function<void(const std::string& from, const std::string& to)>;

  /// Registers an alternative; the first registration becomes active.
  util::Status register_strategy(const std::string& name, Strategy strategy) {
    util::require(static_cast<bool>(strategy), "strategy must be callable");
    if (strategies_.count(name)) {
      return util::Error{util::ErrorCode::kAlreadyExists,
                         "strategy '" + name + "' already registered"};
    }
    strategies_.emplace(name, std::move(strategy));
    if (active_.empty()) active_ = name;
    return util::Status::success();
  }

  /// Switches the active algorithm; hooks observe the change.
  util::Status select(const std::string& name) {
    auto it = strategies_.find(name);
    if (it == strategies_.end()) {
      return util::Error{util::ErrorCode::kNotFound,
                         "no strategy '" + name + "'"};
    }
    if (name != active_) {
      const std::string previous = active_;
      active_ = name;
      ++switches_;
      for (const SwitchHook& hook : hooks_) hook(previous, name);
    }
    return util::Status::success();
  }

  const std::string& active() const { return active_; }
  std::size_t size() const { return strategies_.size(); }
  std::uint64_t switches() const { return switches_; }

  std::vector<std::string> names() const {
    std::vector<std::string> out;
    out.reserve(strategies_.size());
    for (const auto& [name, s] : strategies_) out.push_back(name);
    return out;
  }

  void on_switch(SwitchHook hook) { hooks_.push_back(std::move(hook)); }

  /// Invokes the active strategy. Precondition: at least one registered.
  R invoke(Args... args) {
    auto it = strategies_.find(active_);
    util::require(it != strategies_.end(), "no active strategy");
    return it->second(std::forward<Args>(args)...);
  }

 private:
  std::map<std::string, Strategy> strategies_;
  std::string active_;
  std::uint64_t switches_ = 0;
  std::vector<SwitchHook> hooks_;
};

}  // namespace aars::adapt
