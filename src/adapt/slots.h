// Composition framework with pluggable slots.
//
// "Composition Frameworks, with pluggable components is similar to
// electronic cards in a cabinet, where each slot is reserved to a component
// of a predefined family with compliant specifications ... Composition
// Frameworks allows interchanging components and aspects dynamically" (§2,
// [Cons01]).
//
// A slot declares the interface family it accepts; plugging checks
// compliance and rewires the slot's connector to the new component, so
// callers bound to the slot observe the interchange transparently.  Aspect
// slots do the same for interceptors on a connector.
#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "component/interface.h"
#include "runtime/application.h"

namespace aars::adapt {

class CompositionFramework {
 public:
  explicit CompositionFramework(runtime::Application& app);

  /// Declares a component slot accepting implementations of `family`.
  /// Creates the slot's direct connector; callers bind to it once.
  util::Status add_slot(const std::string& slot,
                        component::InterfaceDescription family);
  /// Plugs a component into a slot: compliance-checked interchange.
  util::Status plug(const std::string& slot, util::ComponentId component);
  /// Empties the slot (callers get kUnavailable until re-plugged).
  util::Status unplug(const std::string& slot);
  /// Currently plugged component (invalid id when empty).
  util::ComponentId plugged(const std::string& slot) const;
  /// The connector callers bind against.
  util::ConnectorId slot_connector(const std::string& slot) const;
  std::vector<std::string> slots() const;

  /// Declares an aspect slot on a connector: a named interception point
  /// whose occupant can be swapped dynamically.
  util::Status add_aspect_slot(const std::string& slot,
                               util::ConnectorId connector);
  util::Status plug_aspect(const std::string& slot,
                           std::shared_ptr<connector::Interceptor> aspect);
  util::Status unplug_aspect(const std::string& slot);
  std::vector<std::string> aspect_slots() const;

 private:
  struct ComponentSlot {
    component::InterfaceDescription family;
    util::ConnectorId connector;
    util::ComponentId occupant;
  };
  struct AspectSlot {
    util::ConnectorId connector;
    std::string occupant_name;  // empty when unplugged
  };

  runtime::Application& app_;
  std::map<std::string, ComponentSlot> component_slots_;
  std::map<std::string, AspectSlot> aspect_slots_;
};

}  // namespace aars::adapt
