#include "adapt/aspects.h"

#include "util/strings.h"

namespace aars::adapt {

using util::Error;
using util::ErrorCode;

Pointcut Pointcut::any() {
  return Pointcut{[](const Message&) { return true; }};
}

Pointcut Pointcut::operation(std::string name) {
  return Pointcut{[name = std::move(name)](const Message& m) {
    return m.operation == name;
  }};
}

Pointcut Pointcut::operation_prefix(std::string prefix) {
  return Pointcut{[prefix = std::move(prefix)](const Message& m) {
    return util::starts_with(m.operation.str(), prefix);
  }};
}

Pointcut Pointcut::header(std::string key) {
  return Pointcut{[key = std::move(key)](const Message& m) {
    return m.headers.contains(key);
  }};
}

Pointcut Pointcut::operator&&(const Pointcut& other) const {
  auto lhs = matches;
  auto rhs = other.matches;
  return Pointcut{[lhs, rhs](const Message& m) { return lhs(m) && rhs(m); }};
}

AspectInterceptor::AspectInterceptor(Aspect aspect)
    : aspect_(std::move(aspect)) {
  util::require(static_cast<bool>(aspect_.pointcut.matches),
                "aspect pointcut required");
}

connector::Interceptor::Verdict AspectInterceptor::before(
    Message& request, Result<Value>* reply_out) {
  if (!aspect_.pointcut.matches(request)) return Verdict::kPass;
  ++matched_;
  if (aspect_.advice.before) aspect_.advice.before(request);
  if (aspect_.advice.around) {
    if (std::optional<Result<Value>> reply = aspect_.advice.around(request)) {
      if (reply_out != nullptr) *reply_out = std::move(*reply);
      return Verdict::kHandled;
    }
  }
  return Verdict::kPass;
}

void AspectInterceptor::after(const Message& request, Result<Value>& reply) {
  if (!aspect_.pointcut.matches(request)) return;
  if (aspect_.advice.after) aspect_.advice.after(request, reply);
}

AspectWeaver::AspectWeaver(runtime::Application& app) : app_(app) {}

Status AspectWeaver::weave(util::ConnectorId connector, Aspect aspect) {
  connector::Connector* conn = app_.find_connector(connector);
  if (conn == nullptr) return Error{ErrorCode::kNotFound, "no such connector"};
  const std::string name = aspect.name;
  if (Status s = conn->attach_interceptor(
          std::make_shared<AspectInterceptor>(std::move(aspect)),
          /*priority=*/0);
      !s.ok()) {
    return s;
  }
  woven_.emplace_back(connector, name);
  return Status::success();
}

Status AspectWeaver::unweave(util::ConnectorId connector,
                             const std::string& aspect_name) {
  connector::Connector* conn = app_.find_connector(connector);
  if (conn == nullptr) return Error{ErrorCode::kNotFound, "no such connector"};
  if (Status s = conn->detach_interceptor(aspect_name); !s.ok()) return s;
  for (auto it = woven_.begin(); it != woven_.end(); ++it) {
    if (it->first == connector && it->second == aspect_name) {
      woven_.erase(it);
      break;
    }
  }
  return Status::success();
}

Status AspectWeaver::weave_everywhere(const Aspect& aspect) {
  for (util::ConnectorId id : app_.connector_ids()) {
    if (Status s = weave(id, aspect); !s.ok()) return s;
  }
  return Status::success();
}

std::vector<std::string> AspectWeaver::woven(
    util::ConnectorId connector) const {
  std::vector<std::string> out;
  for (const auto& [conn, name] : woven_) {
    if (conn == connector) out.push_back(name);
  }
  return out;
}

}  // namespace aars::adapt
