// Standard aspect families for the connector factory.
//
// The connector factory generates connectors "according to the description
// of elementary services and aspects that are selected" (§3); this library
// registers the stock aspects an operator can name in a ConnectorSpec or in
// the ADL's `aspects [...]` list.
//
// Available aspect names:
//   logging     — capture message log
//   metrics     — per-operation call counters
//   tracing     — middleware tracing service
//   checksum    — payload integrity
//   encryption  — confidentiality marker
//   compression — bandwidth reduction
#pragma once

#include "connector/factory.h"

namespace aars::adapt {

/// A metrics interceptor counting calls and failures per operation.
class MetricsAspect final : public connector::Interceptor {
 public:
  MetricsAspect();
  Verdict before(component::Message& request,
                 util::Result<util::Value>* reply_out) override;
  void after(const component::Message& request,
             util::Result<util::Value>& reply) override;
  std::string name() const override { return "metrics"; }

  std::uint64_t calls(const std::string& operation) const;
  std::uint64_t failures(const std::string& operation) const;
  std::uint64_t total_calls() const { return total_; }

 private:
  std::map<std::string, std::uint64_t> calls_;
  std::map<std::string, std::uint64_t> failures_;
  std::uint64_t total_ = 0;
};

/// Registers the standard aspect families on a factory.
void register_standard_aspects(connector::ConnectorFactory& factory);

}  // namespace aars::adapt
