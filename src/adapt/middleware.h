// Adaptive middleware.
//
// "Adaptive middleware is based on underlying components and network
// services and used to implement adaptive behavior, for example, to deal
// with performance fluctuations, security needs, hardware failures, network
// outages ... reflection is used to gather contextual information so that
// the middleware services can be adapted according to the context of
// execution" (§2, [Fitz98][Kuhn98][Beck01]).
//
// AdaptiveMiddleware manages a stack of pluggable protocol services
// (compression, encryption, checksum, tracing) on one connector and
// reconfigures the stack from a reflected ExecutionContext.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "connector/connector.h"
#include "runtime/application.h"

namespace aars::adapt {

/// Context gathered by reflection over the platform.
struct ExecutionContext {
  double bandwidth_fraction = 1.0;  // available / nominal, in [0,1]
  double cpu_load = 0.0;            // serving node utilisation, in [0,1]
  bool secure_link = true;          // false => traffic needs encryption
  double loss_rate = 0.0;           // observed network loss, in [0,1]
};

/// Base class for middleware protocol services. Services mark the message
/// with a header on the request path and validate/strip on the reply path.
class MiddlewareService : public connector::Interceptor {
 public:
  explicit MiddlewareService(std::string name) : name_(std::move(name)) {}
  std::string name() const override { return name_; }
  std::uint64_t applied() const { return applied_; }

 protected:
  void count() { ++applied_; }

 private:
  std::string name_;
  std::uint64_t applied_ = 0;
};

/// Shrinks the payload (replaces it with a compact envelope) to save
/// bandwidth at the price of CPU work on both ends.
class CompressionService final : public MiddlewareService {
 public:
  /// ratio in (0,1]: compressed size = original * ratio.
  explicit CompressionService(double ratio = 0.4);
  Verdict before(component::Message& request,
                 util::Result<util::Value>* reply_out) override;
  void after(const component::Message& request,
             util::Result<util::Value>& reply) override;

 private:
  double ratio_;
};

/// Marks traffic as encrypted; providers can require the marker.
class EncryptionService final : public MiddlewareService {
 public:
  EncryptionService();
  Verdict before(component::Message& request,
                 util::Result<util::Value>* reply_out) override;
  void after(const component::Message& request,
             util::Result<util::Value>& reply) override;
};

/// Adds an integrity checksum over the payload rendering.
class ChecksumService final : public MiddlewareService {
 public:
  ChecksumService();
  Verdict before(component::Message& request,
                 util::Result<util::Value>* reply_out) override;
  void after(const component::Message& request,
             util::Result<util::Value>& reply) override;
  std::uint64_t verified() const { return verified_; }

 private:
  std::uint64_t verified_ = 0;
};

/// Records operation names for observability.
class TracingService final : public MiddlewareService {
 public:
  TracingService();
  Verdict before(component::Message& request,
                 util::Result<util::Value>* reply_out) override;
  void after(const component::Message& request,
             util::Result<util::Value>& reply) override;
  const std::vector<std::string>& trace() const { return trace_; }

 private:
  std::vector<std::string> trace_;
};

/// The adaptive stack manager.
class AdaptiveMiddleware {
 public:
  AdaptiveMiddleware(runtime::Application& app, util::ConnectorId connector);

  /// Reflects over the platform: reads node utilisation and link loss for
  /// the connector's first provider.
  ExecutionContext reflect_context();

  /// Policy: low bandwidth -> compression on (unless CPU saturated);
  /// insecure link -> encryption on; lossy network -> checksums on.
  /// Returns the number of stack changes applied.
  std::size_t adapt(const ExecutionContext& context);

  /// Convenience: reflect then adapt.
  std::size_t adapt_to_platform() { return adapt(reflect_context()); }

  std::vector<std::string> stack();
  std::uint64_t adaptations() const { return adaptations_; }

  // Thresholds (public so experiments can sweep them).
  double compression_bandwidth_threshold = 0.5;
  double compression_cpu_ceiling = 0.9;
  double checksum_loss_threshold = 0.01;

 private:
  bool has(const std::string& service);
  std::size_t set_enabled(const std::string& service, bool enabled);
  std::shared_ptr<connector::Interceptor> make(const std::string& service);

  runtime::Application& app_;
  util::ConnectorId connector_;
  std::uint64_t adaptations_ = 0;
};

}  // namespace aars::adapt
