#include "adapt/metaobjects.h"

#include <algorithm>
#include <map>
#include <set>

namespace aars::adapt {

using util::Error;
using util::ErrorCode;

MetaObject::MetaObject(std::string name, WrapperKind kind, int priority)
    : name_(std::move(name)), kind_(kind), priority_(priority) {}

LambdaMetaObject::LambdaMetaObject(std::string name, WrapperKind kind,
                                   int priority, Body body)
    : MetaObject(std::move(name), kind, priority), body_(std::move(body)) {
  util::require(static_cast<bool>(body_), "meta-object body required");
}

Result<Value> LambdaMetaObject::invoke(Message& message, const Next& next) {
  return body_(message, next);
}

MetaObjectChain::MetaObjectChain(
    std::vector<std::shared_ptr<MetaObject>> ordered, Terminal terminal)
    : ordered_(std::move(ordered)), terminal_(std::move(terminal)) {}

util::Result<MetaObjectChain> MetaObjectChain::compose(
    std::vector<std::shared_ptr<MetaObject>> objects,
    std::vector<OrderConstraint> constraints, Terminal terminal) {
  util::require(static_cast<bool>(terminal), "terminal handler required");
  // Validate names and exclusivity.
  std::set<std::string> names;
  std::map<std::string, std::string> exclusive_groups;  // group -> holder
  for (const auto& obj : objects) {
    util::require(obj != nullptr, "null meta-object");
    if (!names.insert(obj->name()).second) {
      return Error{ErrorCode::kAlreadyExists,
                   "duplicate meta-object '" + obj->name() + "'"};
    }
    if (obj->kind() == WrapperKind::kExclusive) {
      const std::string group =
          obj->group().empty() ? "<default>" : obj->group();
      auto [it, inserted] = exclusive_groups.emplace(group, obj->name());
      if (!inserted) {
        return Error{ErrorCode::kIncompatible,
                     "exclusive meta-objects '" + it->second + "' and '" +
                         obj->name() + "' share group '" + group + "'"};
      }
    }
  }
  for (const OrderConstraint& c : constraints) {
    if (!names.count(c.earlier) || !names.count(c.later)) {
      return Error{ErrorCode::kNotFound,
                   "constraint references unknown meta-object ('" +
                       c.earlier + "' before '" + c.later + "')"};
    }
  }

  // Base order: priority, then declaration order (stable).
  std::vector<std::shared_ptr<MetaObject>> base = objects;
  std::stable_sort(base.begin(), base.end(),
                   [](const auto& a, const auto& b) {
                     return a->priority() < b->priority();
                   });

  // Apply explicit constraints with a topological sort seeded by the base
  // order (Kahn's algorithm; ties resolved by base position).
  std::map<std::string, std::size_t> base_pos;
  for (std::size_t i = 0; i < base.size(); ++i) {
    base_pos[base[i]->name()] = i;
  }
  std::map<std::string, std::set<std::string>> successors;
  std::map<std::string, std::size_t> indegree;
  for (const auto& obj : base) indegree[obj->name()] = 0;
  for (const OrderConstraint& c : constraints) {
    if (successors[c.earlier].insert(c.later).second) {
      ++indegree[c.later];
    }
  }
  std::vector<std::shared_ptr<MetaObject>> ordered;
  std::set<std::pair<std::size_t, std::string>> ready;
  for (const auto& obj : base) {
    if (indegree[obj->name()] == 0) {
      ready.emplace(base_pos[obj->name()], obj->name());
    }
  }
  std::map<std::string, std::shared_ptr<MetaObject>> by_name;
  for (const auto& obj : base) by_name[obj->name()] = obj;
  while (!ready.empty()) {
    const auto [pos, name] = *ready.begin();
    ready.erase(ready.begin());
    ordered.push_back(by_name[name]);
    for (const std::string& next : successors[name]) {
      if (--indegree[next] == 0) {
        ready.emplace(base_pos[next], next);
      }
    }
  }
  if (ordered.size() != base.size()) {
    return Error{ErrorCode::kCycleDetected,
                 "ordering constraints contain a cycle"};
  }
  return MetaObjectChain(std::move(ordered), std::move(terminal));
}

Result<Value> MetaObjectChain::invoke(Message& message) const {
  // Build the chain-of-responsibility from the tail up.
  std::function<Result<Value>(Message&, std::size_t)> run =
      [this, &run](Message& msg, std::size_t index) -> Result<Value> {
    if (index >= ordered_.size()) return terminal_(msg);
    const auto& object = ordered_[index];
    if (object->kind() == WrapperKind::kConditional &&
        !object->applies(msg)) {
      return run(msg, index + 1);
    }
    return object->invoke(
        msg, [&run, index](Message& inner) { return run(inner, index + 1); });
  };
  return run(message, 0);
}

std::vector<std::string> MetaObjectChain::order() const {
  std::vector<std::string> out;
  out.reserve(ordered_.size());
  for (const auto& obj : ordered_) out.push_back(obj->name());
  return out;
}

ChainController::Step ChainController::sequence(std::vector<Step> steps) {
  util::require(!steps.empty(), "sequence needs at least one step");
  return [steps = std::move(steps)](Message& message) -> Result<Value> {
    Result<Value> last = Value{};
    for (const Step& step : steps) {
      last = step(message);
      if (!last.ok()) return last;
    }
    return last;
  };
}

ChainController::Step ChainController::branch(
    std::function<bool(const Message&)> predicate, Step when_true,
    Step when_false) {
  util::require(static_cast<bool>(predicate), "predicate required");
  return [predicate = std::move(predicate), when_true = std::move(when_true),
          when_false = std::move(when_false)](Message& message) {
    return predicate(message) ? when_true(message) : when_false(message);
  };
}

ChainController::Step ChainController::retry(Step step, std::size_t attempts) {
  util::require(attempts >= 1, "retry needs at least one attempt");
  return [step = std::move(step), attempts](Message& message) {
    Result<Value> last = Error{ErrorCode::kInternal, "unreached"};
    for (std::size_t i = 0; i < attempts; ++i) {
      last = step(message);
      if (last.ok()) return last;
    }
    return last;
  };
}

ChainController::Step ChainController::lift(std::shared_ptr<MetaObject> object,
                                            Step next) {
  util::require(object != nullptr, "meta-object required");
  return [object = std::move(object), next = std::move(next)](
             Message& message) {
    return object->invoke(message,
                          [&next](Message& inner) { return next(inner); });
  };
}

}  // namespace aars::adapt
