#include "adapt/paths.h"

namespace aars::adapt {

using util::Error;
using util::ErrorCode;
using util::Result;
using util::Status;
using util::Value;

CompositionPath::CompositionPath(runtime::Application& app, std::string name)
    : app_(app), name_(std::move(name)) {}

Status CompositionPath::add_stage(const std::string& stage) {
  if (frozen_) {
    return Error{ErrorCode::kInvalidArgument,
                 name_ + ": path is frozen; stages cannot be added"};
  }
  if (find_stage(stage) != nullptr) {
    return Error{ErrorCode::kAlreadyExists,
                 name_ + ": stage '" + stage + "' exists"};
  }
  stages_.push_back(Stage{stage, {}, ""});
  return Status::success();
}

std::vector<std::string> CompositionPath::stages() const {
  std::vector<std::string> out;
  out.reserve(stages_.size());
  for (const Stage& s : stages_) out.push_back(s.name);
  return out;
}

CompositionPath::Stage* CompositionPath::find_stage(const std::string& name) {
  for (Stage& s : stages_) {
    if (s.name == name) return &s;
  }
  return nullptr;
}

const CompositionPath::Stage* CompositionPath::find_stage(
    const std::string& name) const {
  for (const Stage& s : stages_) {
    if (s.name == name) return &s;
  }
  return nullptr;
}

Status CompositionPath::add_alternative(const std::string& stage,
                                        const std::string& alt_name,
                                        Alternative alt) {
  Stage* s = find_stage(stage);
  if (s == nullptr) {
    return Error{ErrorCode::kNotFound, name_ + ": no stage '" + stage + "'"};
  }
  if (s->alternatives.count(alt_name)) {
    return Error{ErrorCode::kAlreadyExists,
                 name_ + ": alternative '" + alt_name + "' exists"};
  }
  s->alternatives.emplace(alt_name, alt);
  if (s->active.empty()) s->active = alt_name;
  return Status::success();
}

Status CompositionPath::select(const std::string& stage,
                               const std::string& alt_name) {
  Stage* s = find_stage(stage);
  if (s == nullptr) {
    return Error{ErrorCode::kNotFound, name_ + ": no stage '" + stage + "'"};
  }
  if (!s->alternatives.count(alt_name)) {
    return Error{ErrorCode::kNotFound,
                 name_ + ": no alternative '" + alt_name + "' in stage '" +
                     stage + "'"};
  }
  s->active = alt_name;
  return Status::success();
}

Result<std::string> CompositionPath::selected(const std::string& stage) const {
  const Stage* s = find_stage(stage);
  if (s == nullptr) {
    return Error{ErrorCode::kNotFound, name_ + ": no stage '" + stage + "'"};
  }
  if (s->active.empty()) {
    return Error{ErrorCode::kUnavailable,
                 name_ + ": stage '" + stage + "' has no alternative"};
  }
  return s->active;
}

Result<Value> CompositionPath::execute(const Value& input,
                                       util::NodeId origin) {
  if (stages_.empty()) {
    return Error{ErrorCode::kInvalidArgument, name_ + ": path has no stages"};
  }
  ++executions_;
  Value data = input;
  for (const Stage& stage : stages_) {
    if (stage.active.empty()) {
      return Error{ErrorCode::kUnavailable,
                   name_ + ": stage '" + stage.name + "' unselected"};
    }
    const Alternative& alt = stage.alternatives.at(stage.active);
    runtime::Application::CallOutcome outcome = app_.invoke_sync(
        alt.connector, alt.operation, Value::object({{"data", data}}),
        origin);
    if (!outcome.result.ok()) {
      return Error{outcome.result.error().code(),
                   name_ + ": stage '" + stage.name + "' failed: " +
                       outcome.result.error().message()};
    }
    data = std::move(outcome.result).value();
  }
  return data;
}

}  // namespace aars::adapt
