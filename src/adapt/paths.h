// Composition paths.
//
// "Composition paths are used to select the elementary services that are
// incorporated within the families of services. The selection is specified
// according to a predefined path (extraction, coding and transferring
// infrastructure for video service) ... The stages of composition paths,
// however, are frozen and there is no way to consider new steps
// dynamically" (§2, [Hong01]).
//
// A CompositionPath is an ordered sequence of stages; each stage has a set
// of interchangeable alternatives (connector + operation).  Alternatives
// can be added and selected at any time, but once the path is frozen the
// *stage structure* cannot change — attempting to add a stage returns an
// error, deliberately mirroring the limitation the paper calls out.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "runtime/application.h"

namespace aars::adapt {

class CompositionPath {
 public:
  struct Alternative {
    util::ConnectorId connector;
    std::string operation;
  };

  CompositionPath(runtime::Application& app, std::string name);

  const std::string& name() const { return name_; }

  /// Adds a stage; only valid before freeze().
  util::Status add_stage(const std::string& stage);
  /// Freezes the stage structure.
  void freeze() { frozen_ = true; }
  bool frozen() const { return frozen_; }
  std::vector<std::string> stages() const;

  /// Registers an alternative for a stage (allowed after freeze: only the
  /// stage list is frozen, not the service selection).
  util::Status add_alternative(const std::string& stage,
                               const std::string& alt_name, Alternative alt);
  /// Selects which alternative serves a stage.
  util::Status select(const std::string& stage, const std::string& alt_name);
  util::Result<std::string> selected(const std::string& stage) const;

  /// Runs the pipeline: stage k receives {"data": <output of k-1>}; the
  /// initial stage receives {"data": input}. Fails on the first stage
  /// error.
  util::Result<util::Value> execute(const util::Value& input,
                                    util::NodeId origin);

  std::uint64_t executions() const { return executions_; }

 private:
  struct Stage {
    std::string name;
    std::map<std::string, Alternative> alternatives;
    std::string active;
  };

  Stage* find_stage(const std::string& name);
  const Stage* find_stage(const std::string& name) const;

  runtime::Application& app_;
  std::string name_;
  bool frozen_ = false;
  std::vector<Stage> stages_;
  std::uint64_t executions_ = 0;
};

}  // namespace aars::adapt
