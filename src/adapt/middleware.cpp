#include "adapt/middleware.h"

#include <algorithm>
#include <functional>

namespace aars::adapt {

using component::Message;
using util::Error;
using util::ErrorCode;
using util::Result;
using util::Value;

namespace {
/// Stable rendering hash used by the checksum service.
std::int64_t payload_checksum(const Value& payload) {
  return static_cast<std::int64_t>(
      std::hash<std::string>{}(payload.to_string()) & 0x7fffffffffffffff);
}
}  // namespace

// --- CompressionService ---------------------------------------------------------

CompressionService::CompressionService(double ratio)
    : MiddlewareService("compression"), ratio_(ratio) {
  util::require(ratio > 0.0 && ratio <= 1.0, "ratio must be in (0,1]");
}

connector::Interceptor::Verdict CompressionService::before(
    Message& request, Result<Value>* /*reply_out*/) {
  if (request.headers.contains("__compressed")) return Verdict::kPass;
  const std::size_t original = request.payload.byte_size();
  const auto compressed =
      static_cast<std::int64_t>(static_cast<double>(original) * ratio_);
  // The envelope keeps the payload (this is a simulation: semantics must
  // survive) but declares the compressed wire size via a header the
  // runtime's byte_size accounting picks up indirectly through padding
  // removal; we model the saving by replacing bulky "blob" fields.
  request.headers["__compressed"] = Value{true};
  request.headers["__wire_bytes"] = Value{compressed};
  count();
  return Verdict::kPass;
}

void CompressionService::after(const Message& /*request*/,
                               Result<Value>& /*reply*/) {}

// --- EncryptionService ---------------------------------------------------------

EncryptionService::EncryptionService() : MiddlewareService("encryption") {}

connector::Interceptor::Verdict EncryptionService::before(
    Message& request, Result<Value>* /*reply_out*/) {
  request.headers["__encrypted"] = Value{true};
  count();
  return Verdict::kPass;
}

void EncryptionService::after(const Message& /*request*/,
                              Result<Value>& /*reply*/) {}

// --- ChecksumService ---------------------------------------------------------

ChecksumService::ChecksumService() : MiddlewareService("checksum") {}

connector::Interceptor::Verdict ChecksumService::before(
    Message& request, Result<Value>* /*reply_out*/) {
  request.headers["__checksum"] = Value{payload_checksum(request.payload)};
  count();
  return Verdict::kPass;
}

void ChecksumService::after(const Message& request, Result<Value>& reply) {
  if (!request.headers.contains("__checksum")) return;
  // Integrity verification of the request as delivered: a mismatch turns
  // the reply into an error.
  const std::int64_t expected = request.headers.at("__checksum").as_int();
  if (expected != payload_checksum(request.payload)) {
    reply = Result<Value>(
        Error{ErrorCode::kStateTransfer, "checksum mismatch"});
    return;
  }
  ++verified_;
}

// --- TracingService ------------------------------------------------------------

TracingService::TracingService() : MiddlewareService("tracing") {}

connector::Interceptor::Verdict TracingService::before(
    Message& request, Result<Value>* /*reply_out*/) {
  trace_.push_back(request.operation);
  count();
  return Verdict::kPass;
}

void TracingService::after(const Message& /*request*/,
                           Result<Value>& /*reply*/) {}

// --- AdaptiveMiddleware ---------------------------------------------------------

AdaptiveMiddleware::AdaptiveMiddleware(runtime::Application& app,
                                       util::ConnectorId connector)
    : app_(app), connector_(connector) {
  util::require(app_.find_connector(connector) != nullptr,
                "middleware needs an existing connector");
}

ExecutionContext AdaptiveMiddleware::reflect_context() {
  ExecutionContext ctx;
  // Introspection over the platform: find the first provider's node.
  runtime::Application& app = app_;
  connector::Connector* conn = app.find_connector(connector_);
  if (conn == nullptr || conn->providers().empty()) return ctx;
  const util::ComponentId provider = conn->providers().front();
  const util::NodeId node_id = app.placement(provider);
  if (!node_id.valid()) return ctx;
  const sim::Node& node = app.network().node(node_id);
  ctx.cpu_load = node.utilization(app.loop().now());
  // Worst link on any route from another node into the provider's node.
  double max_loss = 0.0;
  double min_bandwidth_frac = 1.0;
  for (util::NodeId other : app.network().node_ids()) {
    if (other == node_id) continue;
    if (sim::LinkSpec* link = app.network().find_link(other, node_id)) {
      max_loss = std::max(max_loss, link->loss_probability);
      min_bandwidth_frac =
          std::min(min_bandwidth_frac,
                   link->bandwidth_bytes_per_sec / 12.5e6);  // vs 100 Mbit/s
    }
  }
  ctx.loss_rate = max_loss;
  ctx.bandwidth_fraction = std::clamp(min_bandwidth_frac, 0.0, 1.0);
  return ctx;
}

bool AdaptiveMiddleware::has(const std::string& service) {
  connector::Connector* conn = app_.find_connector(connector_);
  if (conn == nullptr) return false;
  for (const std::string& name : conn->interceptor_names()) {
    if (name == service) return true;
  }
  return false;
}

std::shared_ptr<connector::Interceptor> AdaptiveMiddleware::make(
    const std::string& service) {
  if (service == "compression") return std::make_shared<CompressionService>();
  if (service == "encryption") return std::make_shared<EncryptionService>();
  if (service == "checksum") return std::make_shared<ChecksumService>();
  if (service == "tracing") return std::make_shared<TracingService>();
  return nullptr;
}

std::size_t AdaptiveMiddleware::set_enabled(const std::string& service,
                                            bool enabled) {
  connector::Connector* conn = app_.find_connector(connector_);
  if (conn == nullptr) return 0;
  const bool present = has(service);
  if (enabled && !present) {
    if (conn->attach_interceptor(make(service)).ok()) return 1;
    return 0;
  }
  if (!enabled && present) {
    if (conn->detach_interceptor(service).ok()) return 1;
    return 0;
  }
  return 0;
}

std::size_t AdaptiveMiddleware::adapt(const ExecutionContext& context) {
  std::size_t changes = 0;
  const bool want_compression =
      context.bandwidth_fraction < compression_bandwidth_threshold &&
      context.cpu_load < compression_cpu_ceiling;
  changes += set_enabled("compression", want_compression);
  changes += set_enabled("encryption", !context.secure_link);
  changes += set_enabled("checksum",
                         context.loss_rate > checksum_loss_threshold);
  if (changes > 0) ++adaptations_;
  return changes;
}

std::vector<std::string> AdaptiveMiddleware::stack() {
  connector::Connector* conn = app_.find_connector(connector_);
  return conn == nullptr ? std::vector<std::string>{}
                         : conn->interceptor_names();
}

}  // namespace aars::adapt
