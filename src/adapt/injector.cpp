#include "adapt/injector.h"

#include "util/errors.h"

namespace aars::adapt {

using component::Message;
using util::Error;
using util::ErrorCode;
using util::Result;
using util::Value;

Injector::Injector(std::string name) : name_(std::move(name)) {}

Injector& Injector::scope_to(std::set<util::ComponentId> components) {
  scope_ = std::move(components);
  return *this;
}

Injector& Injector::redirect_to(util::ComponentId target) {
  redirect_target_ = target;
  return *this;
}

Injector& Injector::transform(Transform transform) {
  transform_ = std::move(transform);
  return *this;
}

Injector& Injector::drop_when(
    std::function<bool(const Message&)> predicate) {
  drop_predicate_ = std::move(predicate);
  return *this;
}

bool Injector::in_scope(const Message& message) const {
  if (scope_.empty()) return true;
  return scope_.count(message.sender) > 0 || scope_.count(message.target) > 0;
}

connector::Interceptor::Verdict Injector::before(Message& request,
                                                 Result<Value>* reply_out) {
  if (!in_scope(request)) return Verdict::kPass;
  if (drop_predicate_ && drop_predicate_(request)) {
    ++dropped_;
    if (reply_out != nullptr) {
      *reply_out = Result<Value>(
          Error{ErrorCode::kRejected, name_ + ": dropped by injector"});
    }
    return Verdict::kBlock;
  }
  bool acted = false;
  if (transform_) {
    transform_(request);
    acted = true;
  }
  if (redirect_target_.valid()) {
    request.headers["__route_to"] =
        Value{static_cast<std::int64_t>(redirect_target_.raw())};
    acted = true;
  }
  if (acted) ++injected_;
  return Verdict::kPass;
}

void Injector::after(const Message& /*request*/, Result<Value>& /*reply*/) {}

}  // namespace aars::adapt
