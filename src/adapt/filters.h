// Composition filters.
//
// "Filters intercept messages that are sent and received by components.
// Filters can be applied to all input and output messages or filters can
// select particular messages. ... In case of run-time implementation,
// filters can be dynamically attached to or removed from the components"
// (§2, [Berg01]).  A FilterChain is a connector interceptor hosting an
// ordered list of declarative message manipulators.
#pragma once

#include <deque>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "connector/connector.h"
#include "util/time.h"

namespace aars::adapt {

using component::Message;
using util::Result;
using util::Status;
using util::Value;

/// One declarative message manipulator.
class Filter {
 public:
  virtual ~Filter() = default;

  enum class Outcome {
    kPass,     // message continues (possibly modified)
    kBlock,    // message rejected
    kRespond,  // filter answers on behalf of the provider
  };

  virtual std::string name() const = 0;
  /// Selective filters override this; default: applies to every message.
  virtual bool matches(const Message& message) const {
    (void)message;
    return true;
  }
  /// Request-path hook; may mutate the message. When returning kRespond,
  /// fill `*reply`.
  virtual Outcome on_request(Message& message, Result<Value>* reply) = 0;
  /// Reply-path hook (runs in reverse order for filters that matched).
  virtual void on_reply(const Message& message, Result<Value>& reply) {
    (void)message;
    (void)reply;
  }
};

/// Ordered filter chain, attachable to any connector.
class FilterChain final : public connector::Interceptor {
 public:
  explicit FilterChain(std::string name);

  /// Appends (or inserts at `position`) a filter. Names must be unique.
  Status attach(std::shared_ptr<Filter> filter, std::size_t position = kEnd);
  Status detach(const std::string& filter_name);
  std::vector<std::string> filter_names() const;
  std::size_t size() const { return filters_.size(); }

  Verdict before(Message& request, Result<Value>* reply_out) override;
  void after(const Message& request, Result<Value>& reply) override;
  std::string name() const override { return name_; }

  static constexpr std::size_t kEnd = ~std::size_t{0};

 private:
  std::string name_;
  std::vector<std::shared_ptr<Filter>> filters_;
};

// --- concrete filter family ---------------------------------------------------

/// Captures matching messages for introspection; never alters them.
class LoggingFilter final : public Filter {
 public:
  explicit LoggingFilter(std::string name = "logging");
  std::string name() const override { return name_; }
  Outcome on_request(Message& message, Result<Value>* reply) override;
  const std::vector<std::string>& entries() const { return entries_; }
  void clear() { entries_.clear(); }

 private:
  std::string name_;
  std::vector<std::string> entries_;
};

/// Applies a user transformation to matching request payloads.
class TransformFilter final : public Filter {
 public:
  using Transform = std::function<void(Value&)>;
  TransformFilter(std::string name, Transform transform);
  std::string name() const override { return name_; }
  Outcome on_request(Message& message, Result<Value>* reply) override;

 private:
  std::string name_;
  Transform transform_;
};

/// Blocks messages failing a predicate (an input guard).
class GuardFilter final : public Filter {
 public:
  using Predicate = std::function<bool(const Message&)>;
  GuardFilter(std::string name, Predicate allow);
  std::string name() const override { return name_; }
  Outcome on_request(Message& message, Result<Value>* reply) override;
  std::uint64_t blocked() const { return blocked_; }

 private:
  std::string name_;
  Predicate allow_;
  std::uint64_t blocked_ = 0;
};

/// Selective wrapper: applies an inner filter only to chosen operations.
class SelectiveFilter final : public Filter {
 public:
  SelectiveFilter(std::vector<std::string> operations,
                  std::shared_ptr<Filter> inner);
  std::string name() const override;
  bool matches(const Message& message) const override;
  Outcome on_request(Message& message, Result<Value>* reply) override;
  void on_reply(const Message& message, Result<Value>& reply) override;

 private:
  std::vector<std::string> operations_;
  std::shared_ptr<Filter> inner_;
};

/// Token-bucket rate limiter on the simulated clock.
class RateLimitFilter final : public Filter {
 public:
  using Clock = std::function<util::SimTime()>;
  RateLimitFilter(std::string name, double messages_per_second, double burst,
                  Clock clock);
  std::string name() const override { return name_; }
  Outcome on_request(Message& message, Result<Value>* reply) override;
  std::uint64_t throttled() const { return throttled_; }

 private:
  std::string name_;
  double rate_;
  double burst_;
  Clock clock_;
  double tokens_;
  util::SimTime last_ = 0;
  std::uint64_t throttled_ = 0;
};

/// Verifies per-channel sequence monotonicity; counts reorderings
/// ("sequencing filters may require specific order", §2).
class SequencingFilter final : public Filter {
 public:
  explicit SequencingFilter(std::string name = "sequencing");
  std::string name() const override { return name_; }
  Outcome on_request(Message& message, Result<Value>* reply) override;
  std::uint64_t reordered() const { return reordered_; }

 private:
  std::string name_;
  std::uint64_t last_sequence_ = 0;
  std::uint64_t reordered_ = 0;
};

/// Stamps a header on the request and strips it from replies (a minimal
/// "meta" filter used to verify reply-path traversal).
class TagFilter final : public Filter {
 public:
  TagFilter(std::string name, std::string key, Value value);
  std::string name() const override { return name_; }
  Outcome on_request(Message& message, Result<Value>* reply) override;
  void on_reply(const Message& message, Result<Value>& reply) override;
  std::uint64_t tagged() const { return tagged_; }

 private:
  std::string name_;
  std::string key_;
  Value value_;
  std::uint64_t tagged_ = 0;
};

}  // namespace aars::adapt
