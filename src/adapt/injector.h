// Injectors.
//
// "Injectors intercept communications so that new behavior can be inserted,
// for example for changing routing, or for transforming and filtering
// messages. Each injection should affect a limited set of specific
// components" (§2, [Film01]).  An Injector is a connector interceptor with
// an explicit component scope; it can transform payloads and re-route
// messages to a different serving component via the "__route_to" header the
// runtime honours.
#pragma once

#include <functional>
#include <set>
#include <string>

#include "connector/connector.h"
#include "util/ids.h"

namespace aars::adapt {

class Injector final : public connector::Interceptor {
 public:
  using Transform = std::function<void(component::Message&)>;

  explicit Injector(std::string name);

  /// Limits the injection to messages targeting/sent by these components.
  /// An empty scope (default) means the injector applies to all traffic —
  /// callers are expected to scope injections narrowly.
  Injector& scope_to(std::set<util::ComponentId> components);
  /// Re-routes matching messages to `target`.
  Injector& redirect_to(util::ComponentId target);
  /// Applies a payload/header transformation.
  Injector& transform(Transform transform);
  /// Drops matching messages matching `predicate` (filtering behaviour).
  Injector& drop_when(
      std::function<bool(const component::Message&)> predicate);

  Verdict before(component::Message& request,
                 util::Result<util::Value>* reply_out) override;
  void after(const component::Message& request,
             util::Result<util::Value>& reply) override;
  std::string name() const override { return name_; }

  std::uint64_t injected() const { return injected_; }
  std::uint64_t dropped() const { return dropped_; }

 private:
  bool in_scope(const component::Message& message) const;

  std::string name_;
  std::set<util::ComponentId> scope_;
  util::ComponentId redirect_target_;
  Transform transform_;
  std::function<bool(const component::Message&)> drop_predicate_;
  std::uint64_t injected_ = 0;
  std::uint64_t dropped_ = 0;
};

}  // namespace aars::adapt
