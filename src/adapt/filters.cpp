#include "adapt/filters.h"

#include <algorithm>

#include "util/errors.h"
#include "util/strings.h"

namespace aars::adapt {

using util::Error;
using util::ErrorCode;

FilterChain::FilterChain(std::string name) : name_(std::move(name)) {}

Status FilterChain::attach(std::shared_ptr<Filter> filter,
                           std::size_t position) {
  util::require(filter != nullptr, "filter required");
  for (const auto& existing : filters_) {
    if (existing->name() == filter->name()) {
      return Error{ErrorCode::kAlreadyExists,
                   name_ + ": filter '" + filter->name() + "' present"};
    }
  }
  if (position >= filters_.size()) {
    filters_.push_back(std::move(filter));
  } else {
    filters_.insert(filters_.begin() + static_cast<std::ptrdiff_t>(position),
                    std::move(filter));
  }
  return Status::success();
}

Status FilterChain::detach(const std::string& filter_name) {
  for (auto it = filters_.begin(); it != filters_.end(); ++it) {
    if ((*it)->name() == filter_name) {
      filters_.erase(it);
      return Status::success();
    }
  }
  return Error{ErrorCode::kNotFound,
               name_ + ": filter '" + filter_name + "' not attached"};
}

std::vector<std::string> FilterChain::filter_names() const {
  std::vector<std::string> out;
  out.reserve(filters_.size());
  for (const auto& f : filters_) out.push_back(f->name());
  return out;
}

connector::Interceptor::Verdict FilterChain::before(Message& request,
                                                    Result<Value>* reply_out) {
  for (const auto& filter : filters_) {
    if (!filter->matches(request)) continue;
    const Filter::Outcome outcome = filter->on_request(request, reply_out);
    if (outcome == Filter::Outcome::kBlock) return Verdict::kBlock;
    if (outcome == Filter::Outcome::kRespond) return Verdict::kHandled;
  }
  return Verdict::kPass;
}

void FilterChain::after(const Message& request, Result<Value>& reply) {
  for (auto it = filters_.rbegin(); it != filters_.rend(); ++it) {
    if ((*it)->matches(request)) (*it)->on_reply(request, reply);
  }
}

// --- LoggingFilter ------------------------------------------------------------

LoggingFilter::LoggingFilter(std::string name) : name_(std::move(name)) {}

Filter::Outcome LoggingFilter::on_request(Message& message,
                                          Result<Value>* /*reply*/) {
  entries_.push_back(util::format("%s seq=%llu", message.operation.c_str(),
                                  static_cast<unsigned long long>(
                                      message.sequence)));
  return Outcome::kPass;
}

// --- TransformFilter ----------------------------------------------------------

TransformFilter::TransformFilter(std::string name, Transform transform)
    : name_(std::move(name)), transform_(std::move(transform)) {
  util::require(static_cast<bool>(transform_), "transform required");
}

Filter::Outcome TransformFilter::on_request(Message& message,
                                            Result<Value>* /*reply*/) {
  transform_(message.payload);
  return Outcome::kPass;
}

// --- GuardFilter ----------------------------------------------------------------

GuardFilter::GuardFilter(std::string name, Predicate allow)
    : name_(std::move(name)), allow_(std::move(allow)) {
  util::require(static_cast<bool>(allow_), "predicate required");
}

Filter::Outcome GuardFilter::on_request(Message& message,
                                        Result<Value>* reply) {
  if (allow_(message)) return Outcome::kPass;
  ++blocked_;
  if (reply != nullptr) {
    *reply = Result<Value>(Error{ErrorCode::kRejected,
                                 name_ + ": message rejected by guard"});
  }
  return Outcome::kBlock;
}

// --- SelectiveFilter ---------------------------------------------------------

SelectiveFilter::SelectiveFilter(std::vector<std::string> operations,
                                 std::shared_ptr<Filter> inner)
    : operations_(std::move(operations)), inner_(std::move(inner)) {
  util::require(inner_ != nullptr, "inner filter required");
}

std::string SelectiveFilter::name() const {
  return "selective(" + inner_->name() + ")";
}

bool SelectiveFilter::matches(const Message& message) const {
  return std::find(operations_.begin(), operations_.end(),
                   message.operation) != operations_.end() &&
         inner_->matches(message);
}

Filter::Outcome SelectiveFilter::on_request(Message& message,
                                            Result<Value>* reply) {
  return inner_->on_request(message, reply);
}

void SelectiveFilter::on_reply(const Message& message, Result<Value>& reply) {
  inner_->on_reply(message, reply);
}

// --- RateLimitFilter ---------------------------------------------------------

RateLimitFilter::RateLimitFilter(std::string name, double messages_per_second,
                                 double burst, Clock clock)
    : name_(std::move(name)),
      rate_(messages_per_second),
      burst_(burst),
      clock_(std::move(clock)),
      tokens_(burst) {
  util::require(rate_ > 0.0 && burst_ >= 1.0, "invalid rate limiter config");
  util::require(static_cast<bool>(clock_), "clock required");
  last_ = clock_();
}

Filter::Outcome RateLimitFilter::on_request(Message& /*message*/,
                                            Result<Value>* reply) {
  const util::SimTime now = clock_();
  tokens_ = std::min(
      burst_, tokens_ + rate_ * util::to_seconds(now - last_));
  last_ = now;
  if (tokens_ >= 1.0) {
    tokens_ -= 1.0;
    return Outcome::kPass;
  }
  ++throttled_;
  if (reply != nullptr) {
    *reply = Result<Value>(
        Error{ErrorCode::kResourceExhausted, name_ + ": rate limit"});
  }
  return Outcome::kBlock;
}

// --- SequencingFilter --------------------------------------------------------

SequencingFilter::SequencingFilter(std::string name)
    : name_(std::move(name)) {}

Filter::Outcome SequencingFilter::on_request(Message& message,
                                             Result<Value>* /*reply*/) {
  if (message.sequence != 0 && message.sequence < last_sequence_) {
    ++reordered_;
  }
  last_sequence_ = std::max(last_sequence_, message.sequence);
  return Outcome::kPass;
}

// --- TagFilter ------------------------------------------------------------------

TagFilter::TagFilter(std::string name, std::string key, Value value)
    : name_(std::move(name)), key_(std::move(key)), value_(std::move(value)) {}

Filter::Outcome TagFilter::on_request(Message& message,
                                      Result<Value>* /*reply*/) {
  message.headers[key_] = value_;
  ++tagged_;
  return Outcome::kPass;
}

void TagFilter::on_reply(const Message& /*message*/, Result<Value>& reply) {
  if (reply.ok() && reply.value().is_map()) {
    reply.value().as_map().erase(key_);
  }
}

}  // namespace aars::adapt
