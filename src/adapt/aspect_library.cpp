#include "adapt/aspect_library.h"

#include "adapt/filters.h"
#include "adapt/middleware.h"

namespace aars::adapt {

using util::Result;
using util::Value;

MetricsAspect::MetricsAspect() = default;

connector::Interceptor::Verdict MetricsAspect::before(
    component::Message& request, Result<Value>* /*reply_out*/) {
  ++calls_[request.operation];
  ++total_;
  return Verdict::kPass;
}

void MetricsAspect::after(const component::Message& request,
                          Result<Value>& reply) {
  if (!reply.ok()) ++failures_[request.operation];
}

std::uint64_t MetricsAspect::calls(const std::string& operation) const {
  auto it = calls_.find(operation);
  return it == calls_.end() ? 0 : it->second;
}

std::uint64_t MetricsAspect::failures(const std::string& operation) const {
  auto it = failures_.find(operation);
  return it == failures_.end() ? 0 : it->second;
}

void register_standard_aspects(connector::ConnectorFactory& factory) {
  factory.add_aspect_provider(
      [](const std::string& aspect)
          -> std::shared_ptr<connector::Interceptor> {
        if (aspect == "logging") {
          auto chain = std::make_shared<FilterChain>("logging");
          (void)chain->attach(std::make_shared<LoggingFilter>());
          return chain;
        }
        if (aspect == "metrics") return std::make_shared<MetricsAspect>();
        if (aspect == "tracing") return std::make_shared<TracingService>();
        if (aspect == "checksum") return std::make_shared<ChecksumService>();
        if (aspect == "encryption") {
          return std::make_shared<EncryptionService>();
        }
        if (aspect == "compression") {
          return std::make_shared<CompressionService>();
        }
        return nullptr;
      });
}

}  // namespace aars::adapt
