#include "adapt/slots.h"

namespace aars::adapt {

using connector::ConnectorSpec;
using connector::RoutingPolicy;
using util::ComponentId;
using util::ConnectorId;
using util::Error;
using util::ErrorCode;
using util::Status;

CompositionFramework::CompositionFramework(runtime::Application& app)
    : app_(app) {}

Status CompositionFramework::add_slot(
    const std::string& slot, component::InterfaceDescription family) {
  if (component_slots_.count(slot)) {
    return Error{ErrorCode::kAlreadyExists, "slot '" + slot + "' exists"};
  }
  ConnectorSpec spec;
  spec.name = "slot_" + slot;
  spec.routing = RoutingPolicy::kDirect;
  util::Result<ConnectorId> created = app_.create_connector(spec);
  if (!created.ok()) return created.error();
  component_slots_.emplace(
      slot, ComponentSlot{std::move(family), created.value(),
                          ComponentId::invalid()});
  return Status::success();
}

Status CompositionFramework::plug(const std::string& slot,
                                  ComponentId component) {
  auto it = component_slots_.find(slot);
  if (it == component_slots_.end()) {
    return Error{ErrorCode::kNotFound, "no slot '" + slot + "'"};
  }
  const component::Component* comp = app_.find_component(component);
  if (comp == nullptr) {
    return Error{ErrorCode::kNotFound, "no such component"};
  }
  // Family compliance: the electronic-card shape check.
  if (Status s = comp->provided().satisfies(it->second.family); !s.ok()) {
    return Error{ErrorCode::kIncompatible,
                 "slot '" + slot + "': " + s.error().message()};
  }
  if (it->second.occupant.valid()) {
    if (Status s = app_.remove_provider(it->second.connector,
                                        it->second.occupant);
        !s.ok()) {
      return s;
    }
  }
  if (Status s = app_.add_provider(it->second.connector, component); !s.ok()) {
    // Restore the previous occupant on failure.
    if (it->second.occupant.valid()) {
      (void)app_.add_provider(it->second.connector, it->second.occupant);
    }
    return s;
  }
  it->second.occupant = component;
  return Status::success();
}

Status CompositionFramework::unplug(const std::string& slot) {
  auto it = component_slots_.find(slot);
  if (it == component_slots_.end()) {
    return Error{ErrorCode::kNotFound, "no slot '" + slot + "'"};
  }
  if (!it->second.occupant.valid()) {
    return Error{ErrorCode::kUnavailable, "slot '" + slot + "' is empty"};
  }
  if (Status s =
          app_.remove_provider(it->second.connector, it->second.occupant);
      !s.ok()) {
    return s;
  }
  it->second.occupant = ComponentId::invalid();
  return Status::success();
}

ComponentId CompositionFramework::plugged(const std::string& slot) const {
  auto it = component_slots_.find(slot);
  return it == component_slots_.end() ? ComponentId::invalid()
                                      : it->second.occupant;
}

ConnectorId CompositionFramework::slot_connector(
    const std::string& slot) const {
  auto it = component_slots_.find(slot);
  return it == component_slots_.end() ? ConnectorId::invalid()
                                      : it->second.connector;
}

std::vector<std::string> CompositionFramework::slots() const {
  std::vector<std::string> out;
  out.reserve(component_slots_.size());
  for (const auto& [name, slot] : component_slots_) out.push_back(name);
  return out;
}

Status CompositionFramework::add_aspect_slot(const std::string& slot,
                                             ConnectorId connector) {
  if (aspect_slots_.count(slot)) {
    return Error{ErrorCode::kAlreadyExists,
                 "aspect slot '" + slot + "' exists"};
  }
  if (app_.find_connector(connector) == nullptr) {
    return Error{ErrorCode::kNotFound, "no such connector"};
  }
  aspect_slots_.emplace(slot, AspectSlot{connector, ""});
  return Status::success();
}

Status CompositionFramework::plug_aspect(
    const std::string& slot, std::shared_ptr<connector::Interceptor> aspect) {
  auto it = aspect_slots_.find(slot);
  if (it == aspect_slots_.end()) {
    return Error{ErrorCode::kNotFound, "no aspect slot '" + slot + "'"};
  }
  connector::Connector* conn = app_.find_connector(it->second.connector);
  if (conn == nullptr) {
    return Error{ErrorCode::kNotFound, "slot connector removed"};
  }
  util::require(aspect != nullptr, "aspect required");
  const std::string name = aspect->name();
  if (!it->second.occupant_name.empty()) {
    if (Status s = conn->detach_interceptor(it->second.occupant_name);
        !s.ok()) {
      return s;
    }
  }
  if (Status s = conn->attach_interceptor(std::move(aspect)); !s.ok()) {
    return s;
  }
  it->second.occupant_name = name;
  return Status::success();
}

Status CompositionFramework::unplug_aspect(const std::string& slot) {
  auto it = aspect_slots_.find(slot);
  if (it == aspect_slots_.end()) {
    return Error{ErrorCode::kNotFound, "no aspect slot '" + slot + "'"};
  }
  if (it->second.occupant_name.empty()) {
    return Error{ErrorCode::kUnavailable, "aspect slot '" + slot + "' empty"};
  }
  connector::Connector* conn = app_.find_connector(it->second.connector);
  if (conn == nullptr) {
    return Error{ErrorCode::kNotFound, "slot connector removed"};
  }
  if (Status s = conn->detach_interceptor(it->second.occupant_name); !s.ok()) {
    return s;
  }
  it->second.occupant_name.clear();
  return Status::success();
}

std::vector<std::string> CompositionFramework::aspect_slots() const {
  std::vector<std::string> out;
  out.reserve(aspect_slots_.size());
  for (const auto& [name, slot] : aspect_slots_) out.push_back(name);
  return out;
}

}  // namespace aars::adapt
