// Run-time aspect weaving.
//
// AspectJ weaves "statically ... into the source code" and interchanges
// aspects through dynamic dispatch (§2); the paper argues composition
// operators "should not be limited to compile-time ... but also provided at
// deployment-time and run-time" (§3).  This module provides the run-time
// variant: an Aspect = pointcut + advice, woven into connectors as an
// interceptor, attachable and removable while traffic flows.
#pragma once

#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "connector/connector.h"
#include "runtime/application.h"

namespace aars::adapt {

using component::Message;
using util::Result;
using util::Status;
using util::Value;

/// Message predicate selecting join points.
struct Pointcut {
  std::function<bool(const Message&)> matches;

  static Pointcut any();
  static Pointcut operation(std::string name);
  static Pointcut operation_prefix(std::string prefix);
  static Pointcut header(std::string key);
  /// Conjunction of two pointcuts.
  Pointcut operator&&(const Pointcut& other) const;
};

/// Advice bodies; any subset may be set.
struct Advice {
  std::function<void(Message&)> before;
  std::function<void(const Message&, Result<Value>&)> after;
  /// Around advice may short-circuit by returning a reply.
  std::function<std::optional<Result<Value>>(Message&)> around;
};

struct Aspect {
  std::string name;
  Pointcut pointcut;
  Advice advice;
  int priority = 0;
};

/// One woven aspect as a connector interceptor.
class AspectInterceptor final : public connector::Interceptor {
 public:
  explicit AspectInterceptor(Aspect aspect);
  Verdict before(Message& request, Result<Value>* reply_out) override;
  void after(const Message& request, Result<Value>& reply) override;
  std::string name() const override { return aspect_.name; }
  std::uint64_t matched() const { return matched_; }

 private:
  Aspect aspect_;
  std::uint64_t matched_ = 0;
};

/// Weaves aspects into connectors of a running application and tracks what
/// was woven where, so aspects can be removed or re-woven after a connector
/// swap.
class AspectWeaver {
 public:
  explicit AspectWeaver(runtime::Application& app);

  Status weave(util::ConnectorId connector, Aspect aspect);
  Status unweave(util::ConnectorId connector, const std::string& aspect_name);
  /// Weaves into every current connector of the application (a crosscutting
  /// deployment).
  Status weave_everywhere(const Aspect& aspect);
  std::vector<std::string> woven(util::ConnectorId connector) const;

 private:
  runtime::Application& app_;
  std::vector<std::pair<util::ConnectorId, std::string>> woven_;
};

}  // namespace aars::adapt
