#include "adapt/adaptive_interface.h"

namespace aars::adapt {

using component::Component;
using util::Error;
using util::ErrorCode;
using util::Result;
using util::Status;
using util::Value;

MetaComponent::MetaComponent(Component& base) : base_(base) {
  base_.observe([this](const component::Message&, const Result<Value>&) {
    ++observed_;
  });
}

Value MetaComponent::describe() const {
  Value ops{util::ValueList{}};
  for (const std::string& op : base_.operations()) {
    ops.as_list().push_back(Value::object(
        {{"name", op}, {"work_cost", base_.work_cost(op)}}));
  }
  Value required{util::ValueList{}};
  for (const component::RequiredPort& port : base_.required()) {
    required.as_list().push_back(Value::object(
        {{"port", port.name}, {"interface", port.interface.name()}}));
  }
  return Value::object({
      {"type", base_.type_name()},
      {"instance", base_.instance_name()},
      {"lifecycle", std::string(component::to_string(base_.lifecycle()))},
      {"provided", base_.provided().name()},
      {"provided_version",
       static_cast<std::int64_t>(base_.provided().version())},
      {"operations", ops},
      {"required", required},
      {"attributes", base_.attributes()},
      {"handled", static_cast<std::int64_t>(base_.handled_count())},
      {"quiescent", base_.quiescent()},
  });
}

void MetaComponent::trace(TraceHook hook) {
  util::require(static_cast<bool>(hook), "trace hook required");
  base_.observe([hook = std::move(hook)](const component::Message& message,
                                         const Result<Value>& result) {
    hook(message.operation, result.ok());
  });
}

Status MetaComponent::refine_operation(const std::string& operation,
                                       Refiner refiner, double work_cost) {
  util::require(static_cast<bool>(refiner), "refiner required");
  Component::OperationHandler base = base_.operation_handler(operation);
  if (!base) {
    return Error{ErrorCode::kNotFound,
                 base_.instance_name() + ": no operation '" + operation +
                     "'"};
  }
  undo_[operation].push_back(Saved{base, base_.work_cost(operation)});
  return base_.replace_operation(
      operation,
      [refiner = std::move(refiner), base](const Value& args) {
        return refiner(args, base);
      },
      work_cost);
}

Status MetaComponent::undo_refinement(const std::string& operation) {
  auto it = undo_.find(operation);
  if (it == undo_.end() || it->second.empty()) {
    return Error{ErrorCode::kNotFound,
                 "no refinement to undo for '" + operation + "'"};
  }
  Saved saved = std::move(it->second.back());
  it->second.pop_back();
  return base_.replace_operation(operation, std::move(saved.handler),
                                 saved.work_cost);
}

std::size_t MetaComponent::refinement_depth(
    const std::string& operation) const {
  auto it = undo_.find(operation);
  return it == undo_.end() ? 0 : it->second.size();
}

}  // namespace aars::adapt
