// PID controller — the classical-control reference point the paper cites
// from [Dutt97][Kuo95] before arguing for soft-computing controllers.
#pragma once

#include "control/controller.h"

namespace aars::control {

class PidController final : public Controller {
 public:
  struct Gains {
    double kp = 1.0;
    double ki = 0.0;
    double kd = 0.0;
  };

  /// `output_min/max` clamp the output; the integrator is clamped to the
  /// same range scaled by 1/ki (conditional anti-windup).
  PidController(Gains gains, double output_min, double output_max);

  double update(double error, double dt_seconds) override;
  void reset() override;
  std::string name() const override { return "pid"; }

  const Gains& gains() const { return gains_; }
  void set_gains(Gains gains) { gains_ = gains; }
  double integral() const { return integral_; }

 private:
  Gains gains_;
  double output_min_;
  double output_max_;
  double integral_ = 0.0;
  double previous_error_ = 0.0;
  bool primed_ = false;
};

}  // namespace aars::control
