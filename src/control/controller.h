// Feedback-controller interface.
//
// "Among promising approaches, feedback control systems present advantages
// to control dynamic adaptive and reconfigurable systems" (§3).  All
// controllers share one shape: given the tracking error (setpoint minus
// measurement) and the elapsed time, produce a corrective output.  The
// QoS control loops in experiments E6/E10 plug any of these behind the same
// actuator.
#pragma once

#include <string>

namespace aars::control {

class Controller {
 public:
  virtual ~Controller() = default;
  /// One control step. `error` = setpoint - measurement; `dt_seconds` > 0.
  virtual double update(double error, double dt_seconds) = 0;
  virtual void reset() = 0;
  virtual std::string name() const = 0;
};

/// The no-control baseline: output is always zero (the system never
/// corrects itself).
class NullController final : public Controller {
 public:
  double update(double /*error*/, double /*dt_seconds*/) override {
    return 0.0;
  }
  void reset() override {}
  std::string name() const override { return "none"; }
};

}  // namespace aars::control
