// Fuzzy-logic controller.
//
// "By intelligent controller, we mean the application of soft computing
// techniques to the design of control systems ... currently, computational
// intelligence techniques are based on fuzzy-logic, neural-networks and
// genetic algorithms" (§3, footnote 3).  This is a two-input (error,
// error-derivative) Mamdani controller with triangular membership
// functions and centroid defuzzification.
#pragma once

#include <string>
#include <vector>

#include "control/controller.h"
#include "util/errors.h"

namespace aars::control {

/// Triangular membership function over [a, c] peaking at b. Shoulder sets
/// (a == b or b == c) saturate at the open end.
struct TriangularSet {
  std::string label;
  double a = 0.0;
  double b = 0.0;
  double c = 0.0;

  double membership(double x) const;
  double centroid() const { return b; }
};

/// A linguistic variable: a named family of fuzzy sets.
class FuzzyVariable {
 public:
  explicit FuzzyVariable(std::string name);

  FuzzyVariable& add_set(TriangularSet set);
  const TriangularSet* find(const std::string& label) const;
  const std::vector<TriangularSet>& sets() const { return sets_; }
  const std::string& name() const { return name_; }

  /// Degree of membership of `x` in set `label` (0 when unknown).
  double membership(const std::string& label, double x) const;

  /// Builds the standard 5-set partition NB/NS/ZE/PS/PB over
  /// [-range, range].
  static FuzzyVariable standard5(std::string name, double range);

 private:
  std::string name_;
  std::vector<TriangularSet> sets_;
};

/// IF error IS <e> AND derror IS <de> THEN output IS <out>.
/// Empty antecedent labels mean "any".
struct FuzzyRule {
  std::string error_label;
  std::string derror_label;
  std::string output_label;
};

class FuzzyController final : public Controller {
 public:
  FuzzyController(FuzzyVariable error, FuzzyVariable derror,
                  FuzzyVariable output, std::vector<FuzzyRule> rules);

  double update(double error, double dt_seconds) override;
  void reset() override;
  std::string name() const override { return "fuzzy"; }

  std::size_t rule_count() const { return rules_.size(); }

  /// The canonical 5x5 PD-style rule base over standard5 partitions:
  /// output pushes against error and damps against its derivative.
  static FuzzyController make_standard(double error_range,
                                       double derror_range,
                                       double output_range);

 private:
  FuzzyVariable error_;
  FuzzyVariable derror_;
  FuzzyVariable output_;
  std::vector<FuzzyRule> rules_;
  double previous_error_ = 0.0;
  bool primed_ = false;
};

}  // namespace aars::control
