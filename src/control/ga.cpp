#include "control/ga.h"

#include <algorithm>

#include "util/errors.h"

namespace aars::control {

GaTuner::GaTuner(Options options) : options_(options) {
  util::require(options_.population >= 4, "population too small");
  util::require(options_.elites < options_.population,
                "elites must be < population");
  util::require(options_.tournament >= 1, "tournament size must be >= 1");
}

GaTuner::Outcome GaTuner::tune(const std::vector<double>& lower,
                               const std::vector<double>& upper,
                               const Fitness& fitness) {
  util::require(!lower.empty() && lower.size() == upper.size(),
                "bounds must be non-empty and congruent");
  for (std::size_t i = 0; i < lower.size(); ++i) {
    util::require(lower[i] < upper[i], "lower bound must be < upper bound");
  }
  util::require(static_cast<bool>(fitness), "fitness function required");

  util::Rng rng(options_.seed);
  const std::size_t genes = lower.size();

  struct Individual {
    std::vector<double> genome;
    double fitness = 0.0;
  };

  Outcome outcome;
  const auto evaluate = [&](Individual& ind) {
    ind.fitness = fitness(ind.genome);
    ++outcome.evaluations;
  };

  // Initial population: uniform random within bounds.
  std::vector<Individual> population(options_.population);
  for (Individual& ind : population) {
    ind.genome.resize(genes);
    for (std::size_t g = 0; g < genes; ++g) {
      ind.genome[g] = rng.uniform(lower[g], upper[g]);
    }
    evaluate(ind);
  }

  const auto by_fitness = [](const Individual& a, const Individual& b) {
    return a.fitness < b.fitness;
  };

  const auto tournament_pick = [&]() -> const Individual& {
    const Individual* best = nullptr;
    for (std::size_t i = 0; i < options_.tournament; ++i) {
      const auto idx = static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(population.size()) - 1));
      if (best == nullptr || population[idx].fitness < best->fitness) {
        best = &population[idx];
      }
    }
    return *best;
  };

  for (std::size_t gen = 0; gen < options_.generations; ++gen) {
    std::sort(population.begin(), population.end(), by_fitness);
    outcome.history.push_back(population.front().fitness);

    std::vector<Individual> next;
    next.reserve(population.size());
    for (std::size_t e = 0; e < options_.elites; ++e) {
      next.push_back(population[e]);
    }
    while (next.size() < population.size()) {
      const Individual& a = tournament_pick();
      const Individual& b = tournament_pick();
      Individual child;
      child.genome.resize(genes);
      // Blend (BLX-style) crossover gene-wise, else copy the fitter parent.
      const bool cross = rng.chance(options_.crossover_rate);
      for (std::size_t g = 0; g < genes; ++g) {
        if (cross) {
          const double mix = rng.uniform();
          child.genome[g] = mix * a.genome[g] + (1.0 - mix) * b.genome[g];
        } else {
          child.genome[g] =
              (a.fitness <= b.fitness ? a : b).genome[g];
        }
        if (rng.chance(options_.mutation_rate)) {
          const double sigma =
              options_.mutation_sigma * (upper[g] - lower[g]);
          child.genome[g] += rng.normal(0.0, sigma);
        }
        child.genome[g] = std::clamp(child.genome[g], lower[g], upper[g]);
      }
      evaluate(child);
      next.push_back(std::move(child));
    }
    population = std::move(next);
  }
  std::sort(population.begin(), population.end(), by_fitness);
  outcome.history.push_back(population.front().fitness);
  outcome.best_genome = population.front().genome;
  outcome.best_fitness = population.front().fitness;
  return outcome;
}

}  // namespace aars::control
