// Genetic-algorithm parameter tuner.
//
// The soft-computing third leg (§3 footnote: "fuzzy-logic, neural-networks
// and genetic algorithms").  GaTuner minimises a fitness function (e.g. the
// ITAE of a candidate controller on a recorded load trace) over a bounded
// real-valued genome — used in E6 to tune PID gains automatically.
#pragma once

#include <functional>
#include <vector>

#include "util/rng.h"

namespace aars::control {

class GaTuner {
 public:
  struct Options {
    std::size_t population = 24;
    std::size_t generations = 30;
    std::size_t tournament = 3;
    double crossover_rate = 0.9;
    double mutation_rate = 0.2;
    /// Gaussian mutation stddev as a fraction of each gene's range.
    double mutation_sigma = 0.1;
    std::size_t elites = 2;
    std::uint64_t seed = 1234;
  };

  /// Lower fitness is better.
  using Fitness = std::function<double(const std::vector<double>&)>;

  struct Outcome {
    std::vector<double> best_genome;
    double best_fitness = 0.0;
    /// Best fitness after each generation (for convergence plots).
    std::vector<double> history;
    std::size_t evaluations = 0;
  };

  GaTuner(Options options);
  GaTuner() : GaTuner(Options{}) {}

  /// Minimises `fitness` over genomes bounded by [lower[i], upper[i]].
  Outcome tune(const std::vector<double>& lower,
               const std::vector<double>& upper, const Fitness& fitness);

 private:
  Options options_;
};

}  // namespace aars::control
