#include "control/fuzzy.h"

#include <algorithm>
#include <cmath>

namespace aars::control {

double TriangularSet::membership(double x) const {
  if (a == b && x <= b) return 1.0;  // left shoulder
  if (b == c && x >= b) return 1.0;  // right shoulder
  if (x <= a || x >= c) return 0.0;
  if (x == b) return 1.0;
  if (x < b) return (x - a) / (b - a);
  return (c - x) / (c - b);
}

FuzzyVariable::FuzzyVariable(std::string name) : name_(std::move(name)) {}

FuzzyVariable& FuzzyVariable::add_set(TriangularSet set) {
  util::require(set.a <= set.b && set.b <= set.c,
                "triangular set requires a <= b <= c");
  sets_.push_back(std::move(set));
  return *this;
}

const TriangularSet* FuzzyVariable::find(const std::string& label) const {
  for (const TriangularSet& s : sets_) {
    if (s.label == label) return &s;
  }
  return nullptr;
}

double FuzzyVariable::membership(const std::string& label, double x) const {
  const TriangularSet* set = find(label);
  return set == nullptr ? 0.0 : set->membership(x);
}

FuzzyVariable FuzzyVariable::standard5(std::string name, double range) {
  util::require(range > 0.0, "range must be positive");
  FuzzyVariable var(std::move(name));
  const double r = range;
  var.add_set({"NB", -r, -r, -r / 2});
  var.add_set({"NS", -r, -r / 2, 0});
  var.add_set({"ZE", -r / 2, 0, r / 2});
  var.add_set({"PS", 0, r / 2, r});
  var.add_set({"PB", r / 2, r, r});
  return var;
}

FuzzyController::FuzzyController(FuzzyVariable error, FuzzyVariable derror,
                                 FuzzyVariable output,
                                 std::vector<FuzzyRule> rules)
    : error_(std::move(error)),
      derror_(std::move(derror)),
      output_(std::move(output)),
      rules_(std::move(rules)) {
  util::require(!rules_.empty(), "fuzzy controller needs rules");
  for (const FuzzyRule& rule : rules_) {
    util::require(output_.find(rule.output_label) != nullptr,
                  "rule references unknown output set");
    util::require(rule.error_label.empty() ||
                      error_.find(rule.error_label) != nullptr,
                  "rule references unknown error set");
    util::require(rule.derror_label.empty() ||
                      derror_.find(rule.derror_label) != nullptr,
                  "rule references unknown derror set");
  }
}

double FuzzyController::update(double error, double dt_seconds) {
  util::require(dt_seconds > 0.0, "dt must be positive");
  const double derror =
      primed_ ? (error - previous_error_) / dt_seconds : 0.0;
  previous_error_ = error;
  primed_ = true;

  // Mamdani inference: rule strength = min of antecedent memberships;
  // aggregate per output set by max.
  std::vector<double> strength(output_.sets().size(), 0.0);
  for (const FuzzyRule& rule : rules_) {
    double mu = 1.0;
    if (!rule.error_label.empty()) {
      mu = std::min(mu, error_.membership(rule.error_label, error));
    }
    if (!rule.derror_label.empty()) {
      mu = std::min(mu, derror_.membership(rule.derror_label, derror));
    }
    if (mu <= 0.0) continue;
    for (std::size_t i = 0; i < output_.sets().size(); ++i) {
      if (output_.sets()[i].label == rule.output_label) {
        strength[i] = std::max(strength[i], mu);
      }
    }
  }
  // Centroid defuzzification over set centroids (height method).
  double numerator = 0.0;
  double denominator = 0.0;
  for (std::size_t i = 0; i < strength.size(); ++i) {
    numerator += strength[i] * output_.sets()[i].centroid();
    denominator += strength[i];
  }
  return denominator > 0.0 ? numerator / denominator : 0.0;
}

void FuzzyController::reset() {
  previous_error_ = 0.0;
  primed_ = false;
}

FuzzyController FuzzyController::make_standard(double error_range,
                                               double derror_range,
                                               double output_range) {
  FuzzyVariable error = FuzzyVariable::standard5("error", error_range);
  FuzzyVariable derror = FuzzyVariable::standard5("derror", derror_range);
  FuzzyVariable output = FuzzyVariable::standard5("output", output_range);
  // The classic anti-diagonal PD table: large positive error and falling
  // derivative -> strong positive output, etc.
  const char* labels[5] = {"NB", "NS", "ZE", "PS", "PB"};
  // table[e][de] with indices NB..PB; output index clamped sum.
  std::vector<FuzzyRule> rules;
  for (int e = 0; e < 5; ++e) {
    for (int de = 0; de < 5; ++de) {
      // e and de measured as (index - 2) in [-2, 2]; control action is
      // proportional to the combined deviation, inverted for damping.
      const int combined = std::clamp((e - 2) + (de - 2), -2, 2) + 2;
      rules.push_back(FuzzyRule{labels[e], labels[de], labels[combined]});
    }
  }
  return FuzzyController(std::move(error), std::move(derror),
                         std::move(output), std::move(rules));
}

}  // namespace aars::control
