#include "control/pid.h"

#include <algorithm>

#include "util/errors.h"

namespace aars::control {

PidController::PidController(Gains gains, double output_min,
                             double output_max)
    : gains_(gains), output_min_(output_min), output_max_(output_max) {
  util::require(output_min < output_max, "invalid output range");
}

double PidController::update(double error, double dt_seconds) {
  util::require(dt_seconds > 0.0, "dt must be positive");
  const double p = gains_.kp * error;
  double i = 0.0;
  if (gains_.ki != 0.0) {
    integral_ += error * dt_seconds;
    // Anti-windup: keep the integral contribution within the output range.
    const double i_max = std::max(std::abs(output_min_), std::abs(output_max_)) /
                         std::abs(gains_.ki);
    integral_ = std::clamp(integral_, -i_max, i_max);
    i = gains_.ki * integral_;
  }
  double d = 0.0;
  if (gains_.kd != 0.0 && primed_) {
    d = gains_.kd * (error - previous_error_) / dt_seconds;
  }
  previous_error_ = error;
  primed_ = true;
  return std::clamp(p + i + d, output_min_, output_max_);
}

void PidController::reset() {
  integral_ = 0.0;
  previous_error_ = 0.0;
  primed_ = false;
}

}  // namespace aars::control
