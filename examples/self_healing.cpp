// Self-healing: Durra-style event-triggered error recovery.
//
// A flaky component starts failing; a FLO/C rule ("failure_detected
// implies replace") drives the reconfiguration engine to replace it with a
// fresh instance, preserving the accumulated state. A permittedIf rule
// gates reconfiguration during a maintenance freeze.
//
//   $ ./self_healing
#include <cstdio>
#include <functional>
#include <memory>

#include "api/runtime.h"
#include "component/component.h"
#include "meta/rules.h"
#include "obs/metrics.h"
#include "reconfig/engine.h"
#include "util/rng.h"

using namespace aars;

namespace {

// A worker that degrades: after `break_after` requests it starts failing.
class FlakyWorker : public component::Component {
 public:
  explicit FlakyWorker(const std::string& instance_name)
      : component::Component("FlakyWorker", instance_name) {
    component::InterfaceDescription iface("Work", 1);
    iface.add_service(component::ServiceSignature{
        "work", {}, util::ValueType::kInt});
    set_provided(iface);
    register_operation("work", 1.0,
                       [this](const util::Value&)
                           -> util::Result<util::Value> {
                         ++handled_total_;
                         ++served_by_this_instance_;
                         if (broken_) {
                           return util::Error{util::ErrorCode::kInternal,
                                              "hardware fault"};
                         }
                         // Each *instance* wears out after ~40 requests —
                         // an instance fault, not application state.
                         if (served_by_this_instance_ > 40) broken_ = true;
                         return util::Value{handled_total_};
                       });
  }

 protected:
  void save_state(util::Value& state) const override {
    state["handled_total"] = handled_total_;
    // Note: `broken_` is deliberately NOT part of the logical state — the
    // fault is in the hardware/instance, not the application state.
  }
  util::Status load_state(const util::Value& state) override {
    if (state.contains("handled_total")) {
      handled_total_ = state.at("handled_total").as_int();
    }
    return util::Status::success();
  }

 private:
  std::int64_t handled_total_ = 0;
  std::int64_t served_by_this_instance_ = 0;
  bool broken_ = false;
};

}  // namespace

int main() {
  sim::LinkSpec link;
  link.latency = util::milliseconds(1);
  connector::ConnectorSpec spec;
  spec.name = "svc";
  auto rt = Runtime::builder()
                .metrics()
                .host("host", 10000)
                .host("client", 10000)
                .link("host", "client", link)
                .component_class<FlakyWorker>("FlakyWorker")
                .deploy("FlakyWorker", "worker", "host")
                .connect(spec, {"worker"})
                .build()
                .value();
  auto& app = rt->app();
  auto& loop = rt->loop();
  const auto client = rt->host("client");
  auto worker = rt->component("worker");
  const auto conn = rt->connector("svc");

  reconfig::ReconfigurationEngine& engine = rt->engine();
  meta::RuleEngine rules(loop);

  // Gate: reconfiguration is only permitted outside the maintenance freeze
  // (permittedIf, §1 FLO/C operators).
  bool frozen = false;
  meta::Rule gate;
  gate.name = "freeze_gate";
  gate.trigger_event = "failure_detected";
  gate.op = meta::RuleOperator::kPermittedIf;
  gate.guard = [&frozen](const meta::Event&) { return !frozen; };
  (void)rules.add_rule(std::move(gate));

  // Recovery rule: failure_detected implies replace (Durra-style
  // event-triggered reconfiguration for error recovery, §1).
  int generation = 1;
  meta::Rule recover;
  recover.name = "recover";
  recover.trigger_event = "failure_detected";
  recover.op = meta::RuleOperator::kImplies;
  recover.action = [&](const meta::Event&) {
    const std::string next = "worker_v" + std::to_string(++generation);
    std::printf("[t=%.2fs] rule 'recover' fires -> replacing with %s\n",
                util::to_seconds(loop.now()), next.c_str());
    engine.replace_component(
        worker, "FlakyWorker", next,
        [&](const reconfig::ReconfigReport& report) {
          if (report.ok()) {
            worker = report.new_component;
            std::printf("[t=%.2fs] healed in %lld us (state preserved)\n",
                        util::to_seconds(loop.now()),
                        static_cast<long long>(report.duration()));
          } else {
            std::printf("[t=%.2fs] recovery FAILED: %s\n",
                        util::to_seconds(loop.now()),
                        report.error_message().c_str());
          }
        });
  };
  (void)rules.add_rule(std::move(recover));

  // Failure detector: three consecutive errors emit failure_detected.
  int consecutive_failures = 0;
  app.add_call_listener([&](const runtime::CallRecord& record) {
    if (record.ok) {
      consecutive_failures = 0;
      return;
    }
    if (++consecutive_failures == 3) {
      consecutive_failures = 0;
      rules.emit("failure_detected",
                 util::Value::object(
                     {{"component",
                       static_cast<std::int64_t>(record.provider.raw())}}));
    }
  });

  // Client load.
  util::Rng rng(5);
  int ok = 0;
  int failed = 0;
  std::function<void()> pump = [&] {
    if (loop.now() > util::seconds(5)) return;
    app.invoke_async(conn, "work", util::Value{}, client,
                     [&](util::Result<util::Value> r, util::Duration) {
                       r.ok() ? ++ok : ++failed;
                     });
    loop.schedule_after(rng.poisson_gap(50), pump);
  };
  loop.schedule_after(0, pump);

  // A short maintenance freeze to show the permittedIf gate.
  loop.schedule_at(util::milliseconds(500), [&] {
    frozen = true;
    std::printf("[t=0.50s] maintenance freeze ON\n");
  });
  loop.schedule_at(util::milliseconds(1200), [&] {
    frozen = false;
    std::printf("[t=1.20s] maintenance freeze OFF\n");
  });

  loop.run();

  std::printf(
      "\n%d calls ok, %d failed; %llu rule firings, %llu gated; healed %d "
      "time(s)\n",
      ok, failed, static_cast<unsigned long long>(rules.fired()),
      static_cast<unsigned long long>(rules.rejected()), generation - 1);

  // Reconfiguration timings as the observability layer captured them, plus
  // the trace timeline of phases and repairs.
  obs::Registry& reg = obs::Registry::global();
  const obs::HistogramMetric& durations =
      reg.histogram("reconfig.duration_us", {{"op", "replace"}});
  if (durations.count() > 0) {
    std::printf("obs: %zu replacement(s), p50 %.0f us, max %.0f us\n",
                durations.count(), durations.samples().percentile(0.5),
                durations.samples().max());
  }
  std::printf("obs: %llu trace event(s) on the timeline\n",
              static_cast<unsigned long long>(reg.trace_buffer().recorded()));
  return 0;
}
