// Telecom adaptation: the paper's motivating scenario end to end.
//
// A multimedia service faces a rush-hour surge. A fuzzy feedback
// controller (RAML acting through the session manager) degrades the
// quality ladder during the peak instead of letting latency blow up, then
// recovers as the surge passes. Adaptive middleware reacts to a degraded
// access link by switching compression on.
//
//   $ ./telecom_adaptation
#include <cstdio>
#include <functional>
#include <memory>

#include "adapt/middleware.h"
#include "api/runtime.h"
#include "control/fuzzy.h"
#include "qos/monitor.h"
#include "sim/workload.h"
#include "telecom/media.h"
#include "telecom/session.h"
#include "util/rng.h"

using namespace aars;

int main() {
  sim::LinkSpec link;
  link.latency = util::milliseconds(3);
  connector::ConnectorSpec spec;
  spec.name = "media";
  auto rt = Runtime::builder()
                .host("media_server", 400)
                .host("access", 100000)
                .link("media_server", "access", link)
                .install_types(telecom::register_media_components)
                .deploy("MediaServer", "media", "media_server")
                .connect(spec, {"media"})
                .build()
                .value();
  auto& app = rt->app();
  auto& loop = rt->loop();
  auto& network = rt->network();
  const auto server = rt->host("media_server");
  const auto access = rt->host("access");
  const auto conn = rt->connector("media");

  telecom::SessionManager::Options options;
  options.service = conn;
  options.fps = 5.0;
  telecom::SessionManager sessions(app, options);

  qos::QosContract contract;
  contract.name = "media";
  contract.max_mean_latency = util::milliseconds(50);
  qos::QosMonitor monitor(loop, contract, util::milliseconds(500));
  sessions.on_frame([&](util::SessionId, util::Duration latency, bool ok,
                        int) { monitor.record_call(latency, ok); });

  // Fuzzy feedback loop on the quality ladder.
  control::FuzzyController fuzzy =
      control::FuzzyController::make_standard(2.0, 8.0, 1.5);
  double quality = telecom::QualityLadder::kMax;
  std::function<void()> control_tick = [&] {
    if (loop.now() > util::seconds(60)) return;
    const double bound = static_cast<double>(contract.max_mean_latency);
    const double error = (bound - monitor.mean_latency()) / bound;
    quality = std::clamp(quality + fuzzy.update(error, 0.25), 0.0, 4.0);
    sessions.set_global_quality(static_cast<int>(quality + 0.5));
    loop.schedule_after(util::milliseconds(250), control_tick);
  };
  loop.schedule_after(util::milliseconds(250), control_tick);

  // Rush-hour call arrivals.
  util::Rng rng(7);
  sim::TraceArrivals trace =
      sim::rush_hour_trace(0.4, 3.0, util::seconds(60));
  std::function<void()> arrivals = [&] {
    if (loop.now() > util::seconds(60)) return;
    const auto length = static_cast<util::Duration>(
        rng.exponential(static_cast<double>(util::seconds(15))));
    (void)sessions.start_session(
        telecom::QualityLadder::kMax, access,
        loop.now() + std::max<util::Duration>(length, 500000));
    loop.schedule_after(trace.next_gap(loop.now(), rng), arrivals);
  };
  loop.schedule_after(0, arrivals);

  // Adaptive middleware watches the access link.
  adapt::AdaptiveMiddleware middleware(app, conn);
  loop.schedule_at(util::seconds(20), [&] {
    std::printf("[t=20s] access link degrades (bandwidth -70%%)\n");
    if (sim::LinkSpec* l = network.find_link(access, server)) {
      l->bandwidth_bytes_per_sec *= 0.3;
    }
    const std::size_t changes = middleware.adapt_to_platform();
    std::printf("[t=20s] middleware adapted (%zu change(s)); stack now:",
                changes);
    for (const std::string& s : middleware.stack()) {
      std::printf(" %s", s.c_str());
    }
    std::printf("\n");
  });

  // Progress report every 10 simulated seconds.
  std::function<void()> report = [&] {
    std::printf(
        "[t=%2.0fs] sessions=%2zu quality=%d mean_latency=%5.1f ms "
        "frames ok/failed = %llu/%llu\n",
        util::to_seconds(loop.now()), sessions.active_count(),
        sessions.global_quality(), monitor.mean_latency() / 1000.0,
        static_cast<unsigned long long>(sessions.frames_ok()),
        static_cast<unsigned long long>(sessions.frames_failed()));
    if (loop.now() < util::seconds(60)) {
      loop.schedule_after(util::seconds(10), report);
    }
  };
  loop.schedule_after(util::seconds(10), report);

  rt->run();

  std::printf(
      "\nrush hour survived: %llu frames delivered, utility %.1f, "
      "final quality level %d\n",
      static_cast<unsigned long long>(sessions.frames_ok()),
      sessions.delivered_utility(), sessions.global_quality());
  return 0;
}
