// Load balancing through geographic reconfiguration.
//
// Three replicas behind a least-backlog connector; RAML watches node
// backlogs and migrates replicas away from a node that loses capacity.
//
//   $ ./load_balancing
#include <cstdio>
#include <functional>
#include <memory>

#include "api/runtime.h"
#include "component/component.h"
#include "meta/raml.h"
#include "reconfig/engine.h"
#include "util/rng.h"
#include "util/stats.h"

using namespace aars;

namespace {

class Worker : public component::Component {
 public:
  explicit Worker(const std::string& instance_name)
      : component::Component("Worker", instance_name) {
    component::InterfaceDescription iface("Work", 1);
    iface.add_service(component::ServiceSignature{
        "crunch", {component::ParamSpec{"n", util::ValueType::kInt, false}},
        util::ValueType::kInt});
    set_provided(iface);
    register_operation("crunch", 3.0,
                       [](const util::Value& args)
                           -> util::Result<util::Value> {
                         return util::Value{args.at("n").as_int() * 2};
                       });
  }
};

}  // namespace

int main() {
  // Three replicas, one per rack, behind a round-robin connector. Round
  // robin cannot steer around a slow rack — that is RAML's job here: the
  // *geographic* reconfiguration moves the replica instead.
  sim::LinkSpec link;
  link.latency = util::milliseconds(1);
  connector::ConnectorSpec spec;
  spec.name = "lb";
  spec.routing = connector::RoutingPolicy::kRoundRobin;
  auto rt = Runtime::builder()
                .host("rack0", 6000)
                .host("rack1", 6000)
                .host("rack2", 6000)
                .host("clients", 100000)
                .link_all(link)
                .component_class<Worker>("Worker")
                .deploy("Worker", "w0", "rack0")
                .deploy("Worker", "w1", "rack1")
                .deploy("Worker", "w2", "rack2")
                .connect(spec, {"w0", "w1", "w2"})
                .with_raml(util::milliseconds(100))
                .build()
                .value();
  auto& app = rt->app();
  auto& loop = rt->loop();
  auto& network = rt->network();
  std::vector<util::NodeId> nodes;
  std::vector<util::ComponentId> replicas;
  for (int i = 0; i < 3; ++i) {
    nodes.push_back(rt->host("rack" + std::to_string(i)));
    replicas.push_back(rt->component("w" + std::to_string(i)));
  }
  const auto clients = rt->host("clients");
  const auto lb = rt->connector("lb");

  // RAML policy: if a rack's backlog dwarfs the calmest rack, move its
  // replica there.
  meta::Raml& raml = rt->raml();
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    raml.add_sensor("backlog" + std::to_string(i), [&network, &loop,
                                                    node = nodes[i]] {
      return static_cast<double>(network.node(node).backlog(loop.now()));
    });
  }
  raml.add_policy(meta::Policy{
      "rebalance",
      [](const meta::MetricSample& s) {
        double max_b = 0;
        double min_b = 1e18;
        for (int i = 0; i < 3; ++i) {
          const double b = s.get("backlog" + std::to_string(i));
          max_b = std::max(max_b, b);
          min_b = std::min(min_b, b);
        }
        return max_b > 50000 && max_b > 4 * (min_b + 1000);
      },
      [&](meta::Raml& r) {
        // Pick the hottest and calmest rack by backlog.
        util::NodeId hot = nodes[0];
        util::NodeId calm = nodes[0];
        for (util::NodeId node : nodes) {
          const auto backlog = network.node(node).backlog(loop.now());
          if (backlog > network.node(hot).backlog(loop.now())) hot = node;
          if (backlog < network.node(calm).backlog(loop.now())) calm = node;
        }
        for (util::ComponentId replica : replicas) {
          if (app.placement(replica) == hot) {
            std::printf("[t=%.1fs] RAML migrates a replica %s -> %s\n",
                        util::to_seconds(loop.now()),
                        network.node(hot).name().c_str(),
                        network.node(calm).name().c_str());
            r.engine().migrate_component(
                replica, calm, [](const reconfig::ReconfigReport&) {});
            break;
          }
        }
      },
      util::milliseconds(500)});
  raml.start();
  // The periodic MAPE tick would keep the event loop alive forever; end
  // the management session with the workload.
  loop.schedule_at(util::seconds(10), [&] { raml.stop(); });

  // Client load.
  util::Rng rng(3);
  util::Histogram latencies;
  std::function<void()> pump = [&] {
    if (loop.now() > util::seconds(10)) return;
    app.invoke_async(lb, "crunch", util::Value::object({{"n", 21}}),
                     clients,
                     [&](util::Result<util::Value> r, util::Duration l) {
                       if (r.ok()) latencies.add(static_cast<double>(l));
                     });
    loop.schedule_after(rng.poisson_gap(1500), pump);
  };
  loop.schedule_after(0, pump);

  // Fault: rack0 loses most of its capacity at t=3s (e.g. co-located
  // tenant) — the paper's "fluctuation of available resources".
  loop.schedule_at(util::seconds(3), [&] {
    std::printf("[t=3.0s] rack0 capacity drops 6000 -> 800\n");
    network.node(nodes[0]).set_capacity(800);
  });

  rt->run();

  std::printf("\nserved %zu calls: mean %.0f us, p99 %.0f us\n",
              latencies.count(), latencies.mean(), latencies.p99());
  for (std::size_t i = 0; i < replicas.size(); ++i) {
    std::printf("replica w%zu ended on %s\n", i,
                network.node(app.placement(replicas[i])).name().c_str());
  }
  return 0;
}
