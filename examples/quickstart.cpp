// Quickstart: declare an application in the configuration language, deploy
// it, serve traffic, then hot-swap the server implementation while calls
// keep flowing.
//
//   $ ./quickstart
#include <cstdio>
#include <memory>

#include "component/component.h"
#include "obs/metrics.h"
#include "reconfig/engine.h"
#include "runtime/deployer.h"

using namespace aars;

namespace {

// A component implementation, registered under the type name the
// configuration refers to.
class Greeter : public component::Component {
 public:
  explicit Greeter(const std::string& instance_name,
                   std::string style = "plain")
      : component::Component("Greeter", instance_name),
        style_(std::move(style)) {
    component::InterfaceDescription iface("Greeting", 1);
    iface.add_service(component::ServiceSignature{
        "greet",
        {component::ParamSpec{"name", util::ValueType::kString, false}},
        util::ValueType::kString});
    set_provided(iface);
    register_operation("greet", 1.0,
                       [this](const util::Value& args)
                           -> util::Result<util::Value> {
                         ++served_;
                         const std::string& name =
                             args.at("name").as_string();
                         return util::Value{
                             style_ == "loud" ? "HELLO, " + name + "!!!"
                                              : "hello, " + name};
                       });
  }

 protected:
  void save_state(util::Value& state) const override {
    state["served"] = served_;
  }
  util::Status load_state(const util::Value& state) override {
    if (state.contains("served")) served_ = state.at("served").as_int();
    return util::Status::success();
  }

 private:
  std::string style_;
  std::int64_t served_ = 0;
};

constexpr const char* kConfig = R"(
  interface Greeting {
    service greet(name: string) -> string;
  }
  component Greeter provides Greeting;
  node edge { capacity 5000; }
  node core { capacity 20000; }
  link edge <-> core { latency 2ms; bandwidth 100mbps; }
  instance greeter: Greeter on core;
  connector front { routing direct; delivery sync; }
)";

}  // namespace

int main() {
  // 0. Turn on the observability registry so the runtime's hot paths
  //    (event loop, connectors, channels, reconfiguration) record metrics.
  obs::Registry::global().set_enabled(true);

  // 1. Build the world: event loop, network, component registry.
  sim::EventLoop loop;
  sim::Network network;
  component::ComponentRegistry registry;
  registry.register_type("Greeter", [](const std::string& name) {
    return std::make_unique<Greeter>(name);
  });
  runtime::Application app(loop, network, registry);

  // 2. Deploy the declared architecture.
  auto deployment = runtime::deploy_source(kConfig, app);
  if (!deployment.ok()) {
    std::fprintf(stderr, "deploy failed: %s\n",
                 deployment.error().message().c_str());
    return 1;
  }
  const auto front = deployment.value().connectors.at("front");
  const auto greeter = deployment.value().instances.at("greeter");
  (void)app.add_provider(front, greeter);
  const auto edge = deployment.value().nodes.at("edge");
  std::printf("deployed %zu instance(s) on %zu node(s)\n",
              deployment.value().instances.size(),
              deployment.value().nodes.size());

  // 3. Serve a call.
  auto hello = app.invoke_sync(front, "greet",
                               util::Value::object({{"name", "world"}}),
                               edge);
  std::printf("call 1 -> %s  (latency %lld us)\n",
              hello.result.value().as_string().c_str(),
              static_cast<long long>(hello.latency));

  // 4. Hot-swap the implementation (strong reconfiguration): register a
  //    louder Greeter and replace the running instance. State (the served
  //    counter) transfers; callers never rebind.
  registry.register_type("Greeter", [](const std::string& name) {
    return std::make_unique<Greeter>(name, "loud");
  });
  reconfig::ReconfigurationEngine engine(app);
  engine.replace_component(
      greeter, "Greeter", "greeter_v2",
      [&](const reconfig::ReconfigReport& report) {
        std::printf("hot swap %s in %lld us (held %zu, replayed %zu)\n",
                    report.success ? "succeeded" : "FAILED",
                    static_cast<long long>(report.duration()),
                    report.held_messages, report.replayed_messages);
      });
  loop.run();

  // 5. The same connector now serves the new implementation.
  auto loud = app.invoke_sync(front, "greet",
                              util::Value::object({{"name", "world"}}),
                              edge);
  std::printf("call 2 -> %s\n", loud.result.value().as_string().c_str());

  // 6. What the observability layer saw: the relays and the
  //    reconfiguration phases landed in the global registry.
  obs::Registry& reg = obs::Registry::global();
  std::printf(
      "metrics: %llu calls relayed, %zu reconfig phase sample(s), "
      "%zu trace event(s)\n",
      static_cast<unsigned long long>(
          reg.counter("connector.relayed", {{"policy", "direct"}}).value()),
      reg.histogram("reconfig.phase_us",
                    {{"op", "replace"}, {"phase", "drain"}})
          .count(),
      reg.trace_buffer().size());
  return 0;
}
