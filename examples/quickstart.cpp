// Quickstart: declare an application in the configuration language, deploy
// it, serve traffic, then hot-swap the server implementation while calls
// keep flowing.
//
//   $ ./quickstart
#include <cstdio>
#include <memory>

#include "api/runtime.h"
#include "component/component.h"
#include "obs/metrics.h"
#include "reconfig/engine.h"

using namespace aars;

namespace {

// A component implementation, registered under the type name the
// configuration refers to.
class Greeter : public component::Component {
 public:
  explicit Greeter(const std::string& instance_name,
                   std::string style = "plain")
      : component::Component("Greeter", instance_name),
        style_(std::move(style)) {
    component::InterfaceDescription iface("Greeting", 1);
    iface.add_service(component::ServiceSignature{
        "greet",
        {component::ParamSpec{"name", util::ValueType::kString, false}},
        util::ValueType::kString});
    set_provided(iface);
    register_operation("greet", 1.0,
                       [this](const util::Value& args)
                           -> util::Result<util::Value> {
                         ++served_;
                         const std::string& name =
                             args.at("name").as_string();
                         return util::Value{
                             style_ == "loud" ? "HELLO, " + name + "!!!"
                                              : "hello, " + name};
                       });
  }

 protected:
  void save_state(util::Value& state) const override {
    state["served"] = served_;
  }
  util::Status load_state(const util::Value& state) override {
    if (state.contains("served")) served_ = state.at("served").as_int();
    return util::Status::success();
  }

 private:
  std::string style_;
  std::int64_t served_ = 0;
};

constexpr const char* kConfig = R"(
  interface Greeting {
    service greet(name: string) -> string;
  }
  component Greeter provides Greeting;
  node edge { capacity 5000; }
  node core { capacity 20000; }
  link edge <-> core { latency 2ms; bandwidth 100mbps; }
  instance greeter: Greeter on core;
  connector front { routing direct; delivery sync; }
)";

}  // namespace

int main() {
  // 1. Declare the world through the Runtime builder: metrics on, the
  //    Greeter implementation registered, the architecture deployed from
  //    the configuration language. build() validates the whole declaration
  //    and returns an error instead of half-constructing.
  auto built = Runtime::builder()
                   .metrics()
                   .component_class<Greeter>("Greeter")
                   .adl(kConfig)
                   .build();
  if (!built.ok()) {
    std::fprintf(stderr, "deploy failed: %s\n",
                 built.error().message().c_str());
    return 1;
  }
  auto rt = std::move(built).value();
  auto& app = rt->app();

  // 2. Look up the deployed pieces by their configured names.
  const auto front = rt->connector("front");
  const auto greeter = rt->component("greeter");
  (void)app.add_provider(front, greeter);
  const auto edge = rt->host("edge");
  std::printf("deployed %zu instance(s) on %zu node(s)\n",
              app.component_ids().size(),
              rt->network().node_ids().size());

  // 3. Serve a call.
  auto hello = app.invoke_sync(front, "greet",
                               util::Value::object({{"name", "world"}}),
                               edge);
  std::printf("call 1 -> %s  (latency %lld us)\n",
              hello.result.value().as_string().c_str(),
              static_cast<long long>(hello.latency));

  // 4. Hot-swap the implementation (strong reconfiguration): register a
  //    louder Greeter and replace the running instance. State (the served
  //    counter) transfers; callers never rebind.
  rt->types().register_type("Greeter", [](const std::string& name) {
    return std::make_unique<Greeter>(name, "loud");
  });
  rt->engine().replace_component(
      greeter, "Greeter", "greeter_v2",
      [&](const reconfig::ReconfigReport& report) {
        std::printf("hot swap %s in %lld us (held %zu, replayed %zu)\n",
                    report.ok() ? "succeeded" : "FAILED",
                    static_cast<long long>(report.duration()),
                    report.held_messages, report.replayed_messages);
      });
  rt->run();

  // 5. The same connector now serves the new implementation.
  auto loud = app.invoke_sync(front, "greet",
                              util::Value::object({{"name", "world"}}),
                              edge);
  std::printf("call 2 -> %s\n", loud.result.value().as_string().c_str());

  // 6. What the observability layer saw: the relays and the
  //    reconfiguration phases landed in the global registry.
  obs::Registry& reg = obs::Registry::global();
  std::printf(
      "metrics: %llu calls relayed, %zu reconfig phase sample(s), "
      "%zu trace event(s)\n",
      static_cast<unsigned long long>(
          reg.counter("connector.relayed", {{"policy", "direct"}}).value()),
      reg.histogram("reconfig.phase_us",
                    {{"op", "replace"}, {"phase", "drain"}})
          .count(),
      reg.trace_buffer().size());
  return 0;
}
